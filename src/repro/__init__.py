"""repro -- a full reproduction of Kulkarni & Arora,
"Low-cost Fault-tolerance in Barrier Synchronizations" (ICPP 1998).

The package provides:

* :mod:`repro.gc` -- a guarded-command program kernel (the paper's
  SIEFAST environment rebuilt): domains, actions, daemons including
  maximal-parallel semantics, timed execution, fault environments, traces,
  property checkers and a small explicit-state model checker.
* :mod:`repro.barrier` -- the paper's programs: the coarse-grain barrier
  CB (Section 3), the multitolerant token ring T1-T5 and the ring-refined
  barrier RB (Section 4.1), tree refinements (Section 4.2), the
  message-passing refinement MB (Section 5), a fault-intolerant baseline,
  the barrier-synchronization specification oracle and legitimate-state
  predicates.
* :mod:`repro.topology` -- rings, trees with leaf-root links (Fig 2c),
  double trees (Fig 2d) and spanning-tree embeddings of arbitrary graphs.
* :mod:`repro.analysis` -- the Section 6.1 closed-form performance model.
* :mod:`repro.des` / :mod:`repro.protosim` -- a discrete-event simulator
  and the timed tree-barrier protocol simulation behind Figures 5-7.
* :mod:`repro.simmpi` -- an MPI-flavoured simulated runtime whose
  collectives offer the paper's "third alternative": tolerate faults
  instead of aborting or returning an error code.
* :mod:`repro.extensions` -- Section 7: the fault-classification table,
  fail-safe tolerance, crash/Byzantine modelling, and the atomic
  commitment / clock unison / phase synchronization / fuzzy barrier
  instantiations.
* :mod:`repro.experiments` -- one runner per paper table/figure.

Quickstart::

    from repro.barrier import make_cb
    from repro.gc import Simulator, RandomFairDaemon
    from repro.barrier.spec import BarrierSpecChecker

    program = make_cb(nprocs=4, nphases=3)
    sim = Simulator(program, RandomFairDaemon(seed=0))
    result = sim.run(max_steps=500)
    checker = BarrierSpecChecker(nprocs=4, nphases=3)
    report = checker.check(result.trace)
    assert report.safety_ok and report.phases_completed > 0
"""

from repro._version import __version__

__all__ = ["__version__"]
