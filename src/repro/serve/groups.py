"""Multi-tenant barrier groups: lifecycle, admission, backpressure.

A :class:`BarrierGroup` is one tenant of the daemon -- an independent
barrier domain with its own membership, round counter, bounded inbox and
worker task, so a slow or hostile group can never stall another (the
scheduling unit is the group, not the daemon).

Semantics (the paper's tree barrier flattened onto a star):

* round ``r`` completes when every *current* member has arrived at
  ``r``; the group then sends ``release(r)`` to every member and
  advances;
* a stale ``arrive`` (``r`` < the group's round) is answered with a
  direct one-shot release -- the idempotent reply that heals loss,
  backpressure rejections and crash-restart reconnects;
* an arrive for a *future* round is a proof of misbehaviour (an honest
  client cannot outrun its own release), so it draws a suspicion
  strike; at :data:`~repro.serve.protocol.STRIKE_LIMIT` the client is
  condemned and ejected (PR-9's defense discipline at the service
  boundary);
* ``leave`` and ejection apply immediately and re-check completion, so
  remaining members still complete the round a leaver was blocking;
* a member that vanishes without ``leave`` keeps its seat for
  ``lease_s`` (a crash-restart client reconnects with a bumped
  incarnation and resumes); past the lease it is evicted like a leave.

Determinism: the group appends logical outcomes -- member set, rounds
completed, rejected joins, ejections -- to a structured log whose
content is a pure function of *what* clients did, never of message
timing, which is what lets seeded load-generator runs replay to
identical digests over real sockets.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.serve.protocol import STRIKE_LIMIT, check_round

#: Send one frame to a client: (client, kind, payload) -> delivered?
SendFn = Callable[[int, str, dict[str, Any]], bool]


@dataclass
class GroupLimits:
    """Per-group admission-control and backpressure knobs."""

    capacity: int = 64          #: max concurrent members
    queue_depth: int = 256      #: bounded inbox (frames), then reject
    lease_s: float = 30.0       #: silent-member grace before eviction


@dataclass
class Member:
    """One seat in a group."""

    client: int
    incarnation: int
    joined_round: int
    arrived: int = -1           #: highest round this member arrived at
    last_seen: float = field(default_factory=time.monotonic)


class BarrierGroup:
    """One group: membership + rounds + a bounded worker-fed inbox."""

    def __init__(
        self,
        name: str,
        barriers: int,
        send: SendFn,
        limits: GroupLimits | None = None,
        on_strike: Callable[[int], int] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.barriers = barriers
        self.limits = limits or GroupLimits()
        self._send = send
        #: Daemon-level strike accounting: returns the client's strike
        #: count so condemnation is global, not per-group.
        self._on_strike = on_strike or (lambda client: STRIKE_LIMIT)
        self._clock = clock
        self.round = 0
        self.done = False
        self.members: dict[int, Member] = {}
        #: (client, kind, payload) frames awaiting the worker.
        self.inbox: asyncio.Queue[tuple[int, str, dict[str, Any]]] = (
            asyncio.Queue(maxsize=self.limits.queue_depth)
        )
        self.stats = {
            "joins": 0,
            "leaves": 0,
            "evictions": 0,
            "ejections": 0,
            "rejected_joins": 0,
            "arrivals": 0,
            "stale_arrives": 0,
            "completions": 0,
            "backpressure": 0,
        }
        #: Wall-clock round latencies (first arrive -> completion).
        self.round_latencies: list[float] = []
        self._round_opened: float | None = None
        #: The deterministic outcome log (see module docstring).
        self.ejected: set[int] = set()
        self.rejected: list[tuple[int, str]] = []
        self.ever_members: set[int] = set()
        self._worker: asyncio.Task | None = None
        self._waiter: Callable[[], Awaitable[None]] | None = None

    # -- admission (called from connection readers; synchronous) -------
    def offer(self, client: int, kind: str, payload: dict[str, Any]) -> bool:
        """Queue a frame for the worker; False = backpressure (the
        caller answers with a transient reject and the client's resend
        loop retries)."""
        try:
            self.inbox.put_nowait((client, kind, payload))
            return True
        except asyncio.QueueFull:
            self.stats["backpressure"] += 1
            return False

    # -- the worker ----------------------------------------------------
    def start(self) -> None:
        self._worker = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except (asyncio.CancelledError, Exception):
                pass
            self._worker = None

    async def _run(self) -> None:
        lease_poll = max(self.limits.lease_s / 4.0, 0.05)
        while not self.done:
            try:
                client, kind, payload = await asyncio.wait_for(
                    self.inbox.get(), timeout=lease_poll
                )
            except asyncio.TimeoutError:
                self._evict_expired()
                continue
            self.dispatch(client, kind, payload)

    def dispatch(self, client: int, kind: str, payload: dict[str, Any]) -> None:
        """Apply one frame to the group state (worker context)."""
        member = self.members.get(client)
        if member is not None:
            member.last_seen = self._clock()
        if kind == "join":
            self._handle_join(client, payload)
        elif kind == "leave":
            self._handle_leave(client, payload)
        elif kind == "arrive":
            self._handle_arrive(client, payload)

    # -- join / leave --------------------------------------------------
    def _handle_join(self, client: int, payload: dict[str, Any]) -> None:
        rid = payload.get("rid")
        incarnation = payload.get("inc", 0)
        member = self.members.get(client)
        if member is not None:
            # Rejoin after crash-restart: same seat, new incarnation.
            # The round counter is the durable state the client lost;
            # hand it back so the client resumes where the group is.
            if incarnation > member.incarnation:
                member.incarnation = incarnation
                member.arrived = self.round - 1
            self._reply_ok(client, rid, round=self.round)
            return
        if self.done:
            self._reject(client, rid, "group-done")
            return
        if len(self.members) >= self.limits.capacity:
            self.stats["rejected_joins"] += 1
            self.rejected.append((client, "group-full"))
            self._reject(client, rid, "group-full")
            return
        self.members[client] = Member(
            client=client,
            incarnation=incarnation,
            joined_round=self.round,
            arrived=self.round - 1,
        )
        self.ever_members.add(client)
        self.stats["joins"] += 1
        self._reply_ok(client, rid, round=self.round)

    def _handle_leave(self, client: int, payload: dict[str, Any]) -> None:
        rid = payload.get("rid")
        if self.members.pop(client, None) is None:
            self._reject(client, rid, "not-a-member")
            return
        self.stats["leaves"] += 1
        self._reply_ok(client, rid, round=self.round)
        # A leaver may have been the round's last straggler.
        self._check_completion()

    # -- the barrier ---------------------------------------------------
    def _handle_arrive(self, client: int, payload: dict[str, Any]) -> None:
        member = self.members.get(client)
        if member is None:
            # Not a protocol crime: a just-evicted or just-done client's
            # resend loop races its eviction.  Answer stale rounds so
            # the loop terminates; ignore the rest.
            r = payload.get("round")
            if self.done and check_round(r) and r < self.round:
                self._send(client, "release", self._release_payload(r))
            return
        r = payload.get("round")
        if not check_round(r):
            self._strike(client, "schema")
            return
        if r > self.round:
            # An honest client cannot be ahead of the group (its own
            # release gates it) -- a future round is a lie, not a race.
            self._strike(client, "future-round")
            return
        if r < self.round:
            # Stale: the release got lost (backpressure, reconnect).
            self.stats["stale_arrives"] += 1
            self._send(client, "release", self._release_payload(r))
            return
        self.stats["arrivals"] += 1
        if self._round_opened is None:
            self._round_opened = self._clock()
        if r > member.arrived:
            member.arrived = r
        self._check_completion()

    def _check_completion(self) -> None:
        if self.done or not self.members:
            return
        r = self.round
        if not all(m.arrived >= r for m in self.members.values()):
            return
        if self._round_opened is not None:
            self.round_latencies.append(self._clock() - self._round_opened)
            self._round_opened = None
        self.stats["completions"] += 1
        self.round = r + 1
        if self.round >= self.barriers:
            self.done = True
        payload = self._release_payload(r)
        for member in list(self.members.values()):
            self._send(member.client, "release", payload)
        if self.done:
            self.members.clear()

    def _release_payload(self, r: int) -> dict[str, Any]:
        return {
            "g": self.name,
            "round": r,
            "last": r >= self.barriers - 1,
        }

    # -- defense -------------------------------------------------------
    def _strike(self, client: int, reason: str) -> None:
        """One provably-hostile frame; ejection at the strike limit."""
        strikes = self._on_strike(client)
        if strikes >= STRIKE_LIMIT and client not in self.ejected:
            self.eject(client, reason)

    def eject(self, client: int, reason: str) -> None:
        """Condemn a member (daemon-wide) and free its seat."""
        self.ejected.add(client)
        self.stats["ejections"] += 1
        if self.members.pop(client, None) is not None:
            self._send(client, "g.reject", {"g": self.name, "reason": "condemned"})
            self._check_completion()

    def _evict_expired(self) -> None:
        """Reclaim seats of members silent past their lease -- the
        safety net against clients that died without ``leave`` and
        never came back."""
        if self.done:
            return
        deadline = self._clock() - self.limits.lease_s
        expired = [
            m.client for m in self.members.values() if m.last_seen < deadline
        ]
        for client in expired:
            del self.members[client]
            self.stats["evictions"] += 1
        if expired:
            self._check_completion()

    # -- replies -------------------------------------------------------
    def _reply_ok(self, client: int, rid: Any, **data: Any) -> None:
        self._send(client, "g.ok", {"g": self.name, "rid": rid, **data})

    def _reject(self, client: int, rid: Any, reason: str) -> None:
        self._send(
            client, "g.reject", {"g": self.name, "rid": rid, "reason": reason}
        )

    # -- introspection -------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The ``/groups`` endpoint's view of this group."""
        return {
            "name": self.name,
            "round": self.round,
            "barriers": self.barriers,
            "done": self.done,
            "members": len(self.members),
            "capacity": self.limits.capacity,
            "arrived": sum(
                1 for m in self.members.values() if m.arrived >= self.round
            ),
            "inbox_depth": self.inbox.qsize(),
            "inbox_capacity": self.limits.queue_depth,
            "stats": dict(self.stats),
        }

    def outcome(self) -> dict[str, Any]:
        """The deterministic slice for the replay digest."""
        return {
            "name": self.name,
            "barriers": self.barriers,
            "completed": self.stats["completions"],
            "done": self.done,
            "ever_members": sorted(self.ever_members),
            "final_members": sorted(self.members),
            "ejected": sorted(self.ejected),
            "rejected": sorted(self.rejected),
        }
