"""``repro-serve``: run the daemon, or drive it with the load generator.

::

    repro-serve run --port 0 --obs-port 0 --endpoints-file runs/serve.json
    repro-serve loadgen --endpoints-file runs/serve.json --seed 7
    repro-serve loadgen --port 4777 --groups 3 --clients 50 --json

``run`` blocks until SIGTERM/SIGINT, then drains gracefully (clients
get a ``shutdown`` frame).  With ``--port 0`` / ``--obs-port 0`` the
kernel picks ephemeral ports, which are reported on stdout and in the
``--endpoints-file`` (written atomically once both listeners are up) --
the race-free handshake the serve-smoke CI job relies on.

``loadgen`` runs one seeded scripted load (see
:mod:`repro.serve.loadgen`) and prints a JSON report whose ``digest``
is replay-stable: the same seed against a fresh daemon produces the
same digest, byte for byte.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.errors import ObsPortInUseError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="barrier-as-a-service daemon and load generator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start the daemon")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=0,
                     help="TCP port (0 = ephemeral, reported)")
    run.add_argument("--unix", default=None, metavar="PATH",
                     help="serve a Unix socket instead of TCP")
    run.add_argument("--obs-port", type=int, default=None,
                     help="HTTP /metrics /health /groups (0 = ephemeral)")
    run.add_argument("--max-groups", type=int, default=64)
    run.add_argument("--queue-depth", type=int, default=256,
                     help="per-group inbox bound (backpressure past it)")
    run.add_argument("--lease", type=float, default=30.0,
                     help="seconds a silent member keeps its seat")
    run.add_argument("--endpoints-file", default=None, metavar="PATH",
                     help="write bound addresses here (atomic) once up")

    load = sub.add_parser("loadgen", help="run one seeded load script")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=0)
    load.add_argument("--unix", default=None, metavar="PATH")
    load.add_argument("--endpoints-file", default=None, metavar="PATH",
                      help="read the daemon address from this file")
    load.add_argument("--groups", type=int, default=3)
    load.add_argument("--clients", type=int, default=50)
    load.add_argument("--barriers", type=int, default=20)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--leavers", type=int, default=2)
    load.add_argument("--crashers", type=int, default=2)
    load.add_argument("--slow", type=int, default=2)
    load.add_argument("--byzantine", type=int, default=1)
    load.add_argument("--probes", type=int, default=2)
    load.add_argument("--group-prefix", default="g", metavar="PREFIX",
                      help="group name prefix (unique per wave when many "
                           "runs share one daemon; digests are "
                           "prefix-invariant)")
    load.add_argument("--client-base", type=int, default=1,
                      help="first client id (give waves disjoint id "
                           "ranges on a shared daemon; digests are "
                           "base-invariant)")
    load.add_argument("--timeout", type=float, default=60.0)
    load.add_argument("--json", action="store_true",
                      help="print the full JSON report (default: summary)")
    load.add_argument("--digest-only", action="store_true",
                      help="print only the replay digest")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return asyncio.run(_run_daemon(args))
    return asyncio.run(_run_loadgen(args))


async def _run_daemon(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeConfig, ServeDaemon

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        obs_port=args.obs_port,
        max_groups=args.max_groups,
        queue_depth=args.queue_depth,
        lease_s=args.lease,
    )
    daemon = ServeDaemon(config)
    try:
        await daemon.start()
    except ObsPortInUseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    print(f"serving barriers on {daemon.address}", flush=True)
    if daemon.obs_url:
        print(
            f"serving telemetry on {daemon.obs_url} "
            "(/metrics /health /groups)",
            flush=True,
        )
    if args.endpoints_file:
        daemon.write_endpoints(args.endpoints_file)

    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-Unix loops
            pass
    await stop.wait()
    print("draining...", flush=True)
    await daemon.shutdown()
    print("stopped", flush=True)
    return 0


async def _run_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import LoadConfig, run_load

    host, port, unix_path = args.host, args.port, args.unix
    if args.endpoints_file:
        with open(args.endpoints_file) as fh:
            address = json.load(fh)["address"]
        if address.startswith("unix://"):
            unix_path = address[len("unix://"):]
        elif address.startswith("tcp://"):
            hostport = address[len("tcp://"):]
            host, _, port_text = hostport.rpartition(":")
            port = int(port_text)
        else:
            print(f"error: unrecognized address {address!r}", file=sys.stderr)
            return 2
    if unix_path is None and port == 0:
        print("error: need --port, --unix or --endpoints-file",
              file=sys.stderr)
        return 2
    config = LoadConfig(
        groups=args.groups,
        clients_per_group=args.clients,
        barriers=args.barriers,
        seed=args.seed,
        leavers=args.leavers,
        crashers=args.crashers,
        slow=args.slow,
        byzantine=args.byzantine,
        probes=args.probes,
        group_prefix=args.group_prefix,
        client_base=args.client_base,
        host=host,
        port=port,
        unix_path=unix_path,
        timeout_s=args.timeout,
    )
    result = await run_load(config)
    report = result.to_dict()
    if args.digest_only:
        print(report["digest"])
    elif args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(
            f"loadgen seed={args.seed}: {report['clients']} clients, "
            f"{report['rounds_measured']} rounds, "
            f"p50={report['latency_p50_s'] * 1e3:.2f}ms "
            f"p99={report['latency_p99_s'] * 1e3:.2f}ms "
            f"wall={report['wall_s']:.2f}s"
        )
        print(f"outcomes: {report['outcome_counts']}")
        print(f"digest: {report['digest']}")
    bad = [o for o in result.outcomes
           if o["outcome"] in ("error", "admitted", "byzantine-timeout")]
    if result.errors or bad:
        for line in result.errors:
            print(f"error: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
