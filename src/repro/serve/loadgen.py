"""A seeded, replayable load generator for the barrier service.

The generator builds a complete **script** first -- every client's id,
group, role and scheduled misbehaviour drawn from one
``random.Random(seed)`` -- and only then executes it; no randomness is
consumed during execution, so the *logical* outcome of a run (who
finished, who left, who was ejected, who was refused admission, how
many rounds each group completed) is a pure function of the
configuration and seed even though frames race over real sockets.

The replay digest hashes exactly that logical slice, which is what
makes ``loadgen --seed N`` twice produce byte-identical digests (the
serve-smoke CI assertion) while wall-clock latencies vary freely.

Roles (per group, counts from :class:`LoadConfig`):

* **founders** fill the group to capacity and run every barrier round;
* **leavers** depart cleanly mid-run (remaining members must still
  complete -- the leave-mid-barrier guarantee);
* **crashers** abort without goodbye at a scripted round, then
  reconnect with a bumped incarnation and resume -- the group blocks on
  their seat until they return, so their completion count is exact;
* **slow** members sleep before arriving -- they exercise backpressure
  and stragglers without changing any logical outcome;
* **byzantine** members forge future-round arrives until the daemon
  condemns and ejects them (seat freed, group completes without them);
* **probes** attempt to join a full group and must collect a
  ``group-full`` reject.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.net.frames import encode_canonical
from repro.serve.client import ServeClient, ServeClientError, ServeTimeout
from repro.serve.protocol import ARRIVE


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation run, fully specified (and fully seeded)."""

    groups: int = 3
    clients_per_group: int = 50
    barriers: int = 20
    seed: int = 0
    leavers: int = 2            #: per group, clean mid-run departures
    crashers: int = 2           #: per group, crash-restart clients
    slow: int = 2               #: per group, delayed arrivals
    byzantine: int = 1          #: total, placed in group 0
    probes: int = 2             #: per group, join-after-full attempts
    group_prefix: str = "g"     #: group names (``g0``, ``g1``, ...)
    client_base: int = 1        #: first client id (ids are dense from it)
    slow_delay_s: float = 0.02
    reconnect_delay_s: float = 0.05
    host: str = "127.0.0.1"
    port: int = 0
    unix_path: str | None = None
    timeout_s: float = 60.0
    resend_s: float = 0.2

    def __post_init__(self) -> None:
        if self.groups < 1 or self.clients_per_group < 1:
            raise ValueError("need at least one group and one client")
        if self.barriers < 2:
            raise ValueError("need >= 2 barriers (roles act mid-run)")
        specials = self.leavers + self.crashers + self.slow
        if specials + (self.byzantine if self.groups else 0) > (
            self.clients_per_group - 1
        ):
            raise ValueError(
                "special roles exceed clients_per_group - 1 (one plain "
                "founder must remain to anchor each group)"
            )
        if not self.group_prefix:
            raise ValueError("group_prefix must be non-empty")
        if self.client_base < 1:
            raise ValueError("client_base must be >= 1 (0 is the server)")


@dataclass
class ClientScript:
    """One client's complete scripted behaviour."""

    client_id: int
    group: str
    role: str                    #: founder | leaver | crasher | slow | byzantine | probe
    creates: bool = False
    leave_at: int | None = None
    crash_at: int | None = None
    slow_delay_s: float = 0.0


@dataclass
class LoadResult:
    """What one run produced: the logical outcomes + the timings."""

    config: LoadConfig
    outcomes: list[dict[str, Any]] = field(default_factory=list)
    #: Client-side arrive->release wall seconds, all members, all rounds.
    latencies: list[float] = field(default_factory=list)
    wall_s: float = 0.0
    errors: list[str] = field(default_factory=list)

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical logical outcome (replay-stable).

        Group names and client ids are normalised (the configured
        prefix is stripped, ``client_base`` is subtracted), so a soak
        can run many waves against one long-lived daemon under unique
        prefixes and id ranges and still compare a late replay's digest
        against an early wave's.
        """
        prefix = self.config.group_prefix
        base = self.config.client_base
        normalised = [
            {
                **o,
                "group": o["group"].removeprefix(prefix),
                "client": o["client"] - base,
            }
            for o in self.outcomes
        ]
        slice_ = {
            "groups": self.config.groups,
            "clients_per_group": self.config.clients_per_group,
            "barriers": self.config.barriers,
            "seed": self.config.seed,
            "outcomes": sorted(normalised, key=lambda o: o["client"]),
        }
        return hashlib.sha256(encode_canonical(slice_).encode()).hexdigest()

    def quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        data = sorted(self.latencies)
        idx = min(int(q * len(data)), len(data) - 1)
        return data[idx]

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "clients": len(self.outcomes),
            "errors": self.errors,
            "wall_s": self.wall_s,
            "rounds_measured": len(self.latencies),
            "latency_p50_s": self.quantile(0.50),
            "latency_p99_s": self.quantile(0.99),
            "outcome_counts": self._counts(),
        }

    def _counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome["outcome"]] = counts.get(outcome["outcome"], 0) + 1
        return counts


def build_scripts(config: LoadConfig) -> list[ClientScript]:
    """The seeded plan: every client's role and schedule, up front."""
    rng = random.Random(config.seed)
    scripts: list[ClientScript] = []
    n = config.clients_per_group
    for g in range(config.groups):
        group = f"{config.group_prefix}{g}"
        base = config.client_base + g * n
        members = list(range(base, base + n))
        # Index 0 anchors the group: it creates and never misbehaves.
        pool = members[1:]
        rng.shuffle(pool)
        take = lambda k: [pool.pop() for _ in range(k)]  # noqa: E731
        byz = take(config.byzantine if g == 0 else 0)
        leavers = take(config.leavers)
        crashers = take(config.crashers)
        slow = take(config.slow)
        for cid in members:
            script = ClientScript(client_id=cid, group=group, role="founder")
            script.creates = cid == base
            if cid in byz:
                script.role = "byzantine"
            elif cid in leavers:
                script.role = "leaver"
                script.leave_at = rng.randrange(1, config.barriers)
            elif cid in crashers:
                script.role = "crasher"
                script.crash_at = rng.randrange(1, config.barriers)
            elif cid in slow:
                script.role = "slow"
                script.slow_delay_s = config.slow_delay_s * rng.uniform(
                    0.5, 1.5
                )
            scripts.append(script)
    probe_base = config.client_base + config.groups * n
    for g in range(config.groups):
        for j in range(config.probes):
            scripts.append(
                ClientScript(
                    client_id=probe_base + g * config.probes + j,
                    group=f"{config.group_prefix}{g}",
                    role="probe",
                )
            )
    return scripts


async def run_load(config: LoadConfig) -> LoadResult:
    """Execute the scripted run against a live daemon."""
    scripts = build_scripts(config)
    result = LoadResult(config=config)
    started = time.monotonic()
    gate = asyncio.Event()

    members = [s for s in scripts if s.role != "probe"]
    probes = [s for s in scripts if s.role == "probe"]

    def _client(script: ClientScript) -> ServeClient:
        return ServeClient(
            script.client_id,
            host=config.host,
            port=config.port,
            unix_path=config.unix_path,
            resend_s=config.resend_s,
            timeout_s=config.timeout_s,
        )

    async def _admit(script: ClientScript) -> tuple[ClientScript, ServeClient]:
        client = _client(script)
        await client.connect()
        if script.creates:
            await client.create(
                script.group,
                capacity=config.clients_per_group,
                barriers=config.barriers,
            )
        return script, client

    # Phase 1: creators first (the group must exist before any join),
    # then every member joins; admission outcomes settle before probes.
    creators = [s for s in members if s.creates]
    others = [s for s in members if not s.creates]
    admitted: dict[int, tuple[ClientScript, ServeClient]] = {}
    for batch in (creators, others):
        pairs = await asyncio.gather(*(_admit(s) for s in batch))
        for script, client in pairs:
            await client.join(script.group)
            admitted[script.client_id] = (script, client)

    # Phase 2: probes hit full groups; every one must be refused.
    async def _probe(script: ClientScript) -> None:
        client = _client(script)
        await client.connect()
        try:
            await client.join(script.group)
            result.errors.append(
                f"probe {script.client_id} was admitted to {script.group}"
            )
            outcome = "admitted"
        except ServeClientError as exc:
            outcome = "rejected" if exc.reason == "group-full" else exc.reason
        finally:
            await client.close()
        result.outcomes.append(
            {
                "client": script.client_id,
                "group": script.group,
                "role": script.role,
                "outcome": outcome,
                "incarnation": 0,
            }
        )

    await asyncio.gather(*(_probe(s) for s in probes))

    # Phase 3: the barrier run proper.
    gate.set()

    async def _run_member(script: ClientScript, client: ServeClient) -> None:
        outcome = "finished"
        completed = 0
        try:
            if script.role == "byzantine":
                outcome = await _run_byzantine(script, client)
            else:
                r = 0
                while r < config.barriers:
                    if script.leave_at == r:
                        await client.leave(script.group)
                        outcome = "left"
                        break
                    if script.crash_at == r and client.incarnation == 0:
                        await client.crash()
                        await asyncio.sleep(config.reconnect_delay_s)
                        await client.connect()
                        reply = await client.join(script.group)
                        r = int(reply.get("round", r))
                        continue
                    if script.slow_delay_s:
                        await asyncio.sleep(script.slow_delay_s)
                    t0 = time.monotonic()
                    status = await client.arrive(script.group, r)
                    if status == "ejected":
                        outcome = "ejected"
                        break
                    result.latencies.append(time.monotonic() - t0)
                    completed += 1
                    r += 1
        except (ServeClientError, ServeTimeout, OSError) as exc:
            outcome = "error"
            result.errors.append(f"client {script.client_id}: {exc}")
        finally:
            await client.close()
        record = {
            "client": script.client_id,
            "group": script.group,
            "role": script.role,
            "outcome": outcome,
            "incarnation": client.incarnation,
        }
        if script.role == "leaver":
            record["left_at"] = script.leave_at
        result.outcomes.append(record)

    async def _run_byzantine(script: ClientScript, client: ServeClient) -> str:
        # Three forged future-round arrives: each is provably hostile
        # (an honest client cannot outrun its own release), so the
        # third draws condemnation and ejection.
        for i in range(3):
            client.send_raw(
                ARRIVE,
                {"g": script.group, "round": 10_000 + i, "rid": 0},
            )
        deadline = time.monotonic() + config.timeout_s
        while time.monotonic() < deadline:
            status = await client.wait_ejected(script.group, timeout=0.2)
            if status:
                return "ejected"
            if not client.connected:
                return "ejected"  # the daemon hung up on the condemned
        return "byzantine-timeout"

    await asyncio.gather(
        *(_run_member(s, c) for s, c in admitted.values())
    )
    result.wall_s = time.monotonic() - started
    return result
