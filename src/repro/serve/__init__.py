"""Barrier-as-a-service: a persistent multi-tenant daemon hosting many
independent barrier groups over the PR-5 frame protocol, plus a seeded
replayable load generator.

- :mod:`repro.serve.protocol` -- wire verbs, reject reasons, validators
- :mod:`repro.serve.groups` -- one tenant: membership, rounds, inbox
- :mod:`repro.serve.daemon` -- the asyncio server (``repro-serve run``)
- :mod:`repro.serve.client` -- the resend-loop client library
- :mod:`repro.serve.loadgen` -- scripted churn with replay digests
- :mod:`repro.serve.cli` -- the ``repro-serve`` entry point
"""

from repro.serve.client import ServeClient, ServeClientError, ServeTimeout
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.groups import BarrierGroup, GroupLimits
from repro.serve.loadgen import LoadConfig, LoadResult, run_load

__all__ = [
    "BarrierGroup",
    "GroupLimits",
    "LoadConfig",
    "LoadResult",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeDaemon",
    "ServeTimeout",
    "run_load",
]
