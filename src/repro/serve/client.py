"""An asyncio client for the barrier service.

:class:`ServeClient` speaks :mod:`repro.serve.protocol` over one TCP or
Unix-socket connection.  Everything rides the resend loop the tree
protocol proved out: requests carry a ``rid`` and are retransmitted
until *some* terminal answer arrives (``backpressure`` rejects just
back off and retry), and ``arrive`` is resent until a ``release`` for
the same-or-later round shows up -- so shed frames, reconnects and
server-side backpressure are all absorbed by idempotence instead of
client-visible errors.

``crash()`` simulates a process failure: the connection is aborted
without a goodbye, all volatile state (pending requests, release
high-water marks) is dropped, and the next :meth:`connect` presents a
bumped incarnation -- the daemon's crash-restart path, which floors the
old life in its :class:`~repro.net.frames.DedupIndex` and hands the
rejoining client the group's current round.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import ReproError
from repro.net.frames import FrameDecoder, FrameError, Message, encode_frame
from repro.serve.protocol import (
    ARRIVE,
    BYE,
    CREATE,
    GOODBYE,
    HELLO,
    JOIN,
    LEAVE,
    OK,
    REJECT,
    RELEASE,
    SERVE_VERSION,
    SERVER_ID,
    SHUTDOWN,
    WELCOME,
)


class ServeClientError(ReproError):
    """The server refused a request with a terminal reason."""

    def __init__(self, reason: str, verb: str) -> None:
        self.reason = reason
        self.verb = verb
        super().__init__(f"{verb} rejected: {reason}")


class ServeTimeout(ReproError):
    """No terminal answer within the client's deadline."""


class ServeClient:
    """One client session (see module docstring)."""

    def __init__(
        self,
        client_id: int,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: str | None = None,
        incarnation: int = 0,
        resend_s: float = 0.2,
        timeout_s: float = 30.0,
    ) -> None:
        if client_id == SERVER_ID:
            raise ValueError("client ids are >= 1 (0 is the daemon)")
        self.client_id = client_id
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.incarnation = incarnation
        self.resend_s = resend_s
        self.timeout_s = timeout_s
        self._seq = 0
        self._rid = 0
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._released: dict[str, int] = {}
        self._ejected_from: set[str] = set()
        self._waiters: list[asyncio.Event] = []
        self._welcome = asyncio.Event()
        self.shutdown_seen = False
        self.connected = False
        self.stats = {"sent": 0, "resends": 0, "backpressure": 0}

    # -- connection lifecycle ------------------------------------------
    async def connect(self) -> "ServeClient":
        """Open the transport and bind the session with ``hello``."""
        if self.unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(self.unix_path)
        else:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        self._welcome = asyncio.Event()
        self.connected = True
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))
        self._send(HELLO, {"v": SERVE_VERSION, "client": self.client_id})
        try:
            await asyncio.wait_for(self._welcome.wait(), timeout=self.timeout_s)
        except asyncio.TimeoutError:
            await self.abort()
            raise ServeTimeout(
                f"client {self.client_id}: no welcome within {self.timeout_s}s"
            ) from None
        return self

    async def close(self) -> None:
        """Clean goodbye (best-effort), then tear the session down."""
        if self.connected and self._writer is not None:
            try:
                self._send(BYE, {"rid": self._next_rid()})
                await asyncio.sleep(0)  # let the bye hit the wire
            except (ConnectionError, RuntimeError):
                pass
        await self.abort()

    async def abort(self) -> None:
        """Drop the connection without ceremony (also crash()'s core)."""
        self.connected = False
        if self._writer is not None:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
            self._writer = None
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()
        self._wake_waiters()

    async def crash(self) -> None:
        """Simulate a process crash: abort, lose volatile state, bump
        the incarnation for the next life."""
        await self.abort()
        self.incarnation += 1
        self._seq = 0
        self._released.clear()
        self._ejected_from.clear()
        self.shutdown_seen = False

    # -- requests ------------------------------------------------------
    async def create(
        self,
        group: str,
        capacity: int,
        barriers: int,
        idempotent: bool = True,
    ) -> dict[str, Any]:
        """Create a group.  With ``idempotent`` (default), a
        ``group-exists`` reject is treated as success -- the answer a
        resend gets when the original create landed but its ok was
        shed."""
        body = {"g": group, "capacity": capacity, "barriers": barriers}
        ok_reasons = ("group-exists",) if idempotent else ()
        return await self._request(CREATE, body, ok_reasons)

    async def join(self, group: str) -> dict[str, Any]:
        """Join (or rejoin after a crash); the reply carries the
        group's current ``round``."""
        return await self._request(JOIN, {"g": group})

    async def leave(self, group: str) -> dict[str, Any]:
        """Leave.  ``not-a-member`` counts as success: it is what a
        resend sees when the original leave already landed."""
        return await self._request(LEAVE, {"g": group}, ("not-a-member",))

    async def arrive(self, group: str, round_: int) -> str:
        """Arrive at ``(group, round_)`` and block until released.

        Returns ``"released"`` normally, or ``"ejected"`` if the daemon
        condemned this client out of the group while we waited (the
        byzantine clients' expected fate).  The arrive frame is resent
        every ``resend_s`` until one of those outcomes -- the protocol's
        idempotent healing covers every lost release.
        """
        deadline = asyncio.get_event_loop().time() + self.timeout_s
        first = True
        while True:
            if self._released.get(group, -1) >= round_:
                return "released"
            if group in self._ejected_from or "*" in self._ejected_from:
                return "ejected"
            if not self.connected:
                raise ServeClientError("disconnected", "arrive")
            if not first:
                self.stats["resends"] += 1
            first = False
            self._send(
                ARRIVE,
                {"g": group, "round": round_, "rid": self._next_rid()},
            )
            if asyncio.get_event_loop().time() > deadline:
                raise ServeTimeout(
                    f"client {self.client_id}: no release for "
                    f"{group}#{round_} within {self.timeout_s}s"
                )
            await self._wait_signal(self.resend_s)

    def released_round(self, group: str) -> int:
        """Highest round released for ``group`` (-1 before any)."""
        return self._released.get(group, -1)

    async def wait_ejected(self, group: str, timeout: float) -> bool:
        """True once the daemon has condemned us out of ``group`` (or
        globally); False if ``timeout`` elapses first."""
        if group in self._ejected_from or "*" in self._ejected_from:
            return True
        await self._wait_signal(timeout)
        return group in self._ejected_from or "*" in self._ejected_from

    async def _request(
        self,
        kind: str,
        body: dict[str, Any],
        ok_reasons: tuple[str, ...] = (),
    ) -> dict[str, Any]:
        """Send with a fresh ``rid``; resend on silence; back off and
        retry on ``backpressure``; raise on a terminal reject."""
        rid = self._next_rid()
        payload = {"rid": rid, **body}
        deadline = asyncio.get_event_loop().time() + self.timeout_s
        backoff = self.resend_s
        while True:
            if not self.connected:
                raise ServeClientError("disconnected", kind)
            future: asyncio.Future = asyncio.get_event_loop().create_future()
            self._pending[rid] = future
            self._send(kind, payload)
            try:
                reply = await asyncio.wait_for(future, timeout=backoff)
            except asyncio.TimeoutError:
                self.stats["resends"] += 1
                if asyncio.get_event_loop().time() > deadline:
                    self._pending.pop(rid, None)
                    raise ServeTimeout(
                        f"client {self.client_id}: {kind} unanswered "
                        f"within {self.timeout_s}s"
                    ) from None
                continue
            except asyncio.CancelledError:
                raise ServeClientError("disconnected", kind) from None
            finally:
                self._pending.pop(rid, None)
            reason = reply.get("reason")
            if reason is None or reason in ok_reasons:
                return reply
            if reason == "backpressure":
                self.stats["backpressure"] += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 1.0)
                continue
            raise ServeClientError(reason, kind)

    # -- raw access (the load generator's byzantine hook) ---------------
    def send_raw(self, kind: str, payload: dict[str, Any]) -> None:
        """Send an arbitrary (well-framed) verb -- how the load
        generator forges future-round arrives and junk verbs."""
        self._send(kind, payload)

    def send_bytes(self, blob: bytes) -> None:
        """Write raw bytes inside a valid frame -- garbage the strict
        decoder must quarantine without dropping honest clients."""
        if self._writer is None:
            raise ServeClientError("disconnected", "send_bytes")
        self._writer.write(encode_frame(blob))

    # -- wire plumbing -------------------------------------------------
    def _send(self, kind: str, payload: dict[str, Any]) -> None:
        if self._writer is None:
            raise ServeClientError("disconnected", kind)
        msg = Message(
            kind=kind,
            src=self.client_id,
            dst=SERVER_ID,
            seq=self._seq,
            incarnation=self.incarnation,
            payload=payload,
        )
        self._seq += 1
        self.stats["sent"] += 1
        self._writer.write(encode_frame(msg.to_bytes()))

    def _next_rid(self) -> int:
        self._rid += 1
        return self._rid

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for body in decoder.feed(chunk):
                    try:
                        msg = Message.from_bytes(body, strict=True)
                    except FrameError:
                        continue  # a corrupt server frame; ignore
                    self._dispatch(msg)
        except (ConnectionError, asyncio.CancelledError, FrameError):
            pass
        finally:
            self.connected = False
            self._wake_waiters()

    def _dispatch(self, msg: Message) -> None:
        if msg.kind == WELCOME:
            self._welcome.set()
        elif msg.kind == RELEASE:
            group = msg.payload.get("g")
            round_ = msg.payload.get("round")
            if isinstance(group, str) and isinstance(round_, int):
                if round_ > self._released.get(group, -1):
                    self._released[group] = round_
            self._wake_waiters()
        elif msg.kind in (OK, REJECT):
            rid = msg.payload.get("rid")
            future = self._pending.get(rid) if rid is not None else None
            if future is not None and not future.done():
                future.set_result(dict(msg.payload))
            elif msg.kind == REJECT:
                # An unsolicited reject: an eject/condemnation notice.
                reason = msg.payload.get("reason")
                group = msg.payload.get("g")
                if reason == "condemned":
                    if isinstance(group, str):
                        self._ejected_from.add(group)
                    else:
                        self._ejected_from.add("*")
                    self._wake_waiters()
        elif msg.kind == SHUTDOWN:
            self.shutdown_seen = True
            self._wake_waiters()
        elif msg.kind == GOODBYE:
            pass

    async def _wait_signal(self, timeout: float) -> None:
        """Park until any inbound frame of interest (or the resend
        tick)."""
        event = asyncio.Event()
        self._waiters.append(event)
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            if event in self._waiters:
                self._waiters.remove(event)

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.set()
