"""The barrier-service wire protocol: PR-5 frames, service verbs.

Clients and the :mod:`repro.serve.daemon` exchange the same
length-prefixed canonical-JSON :class:`~repro.net.frames.Message`
envelopes the peer-to-peer runtime uses -- strict ``from_bytes`` at the
service boundary, receiver-side :class:`~repro.net.frames.DedupIndex`
exactly-once filtering on ``(client, incarnation, seq)``, and
quarantine-not-crash on anything a hostile client could send.

Addressing: the daemon is node ``0``; client ids are ``>= 1`` and are
*claimed* by the client in its ``hello`` frame (the load generator and
the tests assign them deterministically).  The first frame on every
connection must be a valid ``hello``, which binds the connection to the
claimed id; a second connection claiming a live id is rejected unless
it carries a *higher* incarnation -- that is the crash-restart path,
and it supersedes the dead connection.

Request/reply verbs carry a client-chosen request id ``rid`` which the
daemon echoes, so one connection can pipeline requests.  The barrier
verbs (``arrive``/``release``) are the tree protocol's waves flattened
onto a star topology: a client resends ``arrive(group, round)`` until
it sees ``release(group, round')`` with ``round' >= round``, and the
daemon answers stale arrives with a direct one-shot release -- the same
idempotent healing rule, so duplicates, reconnects and backpressure
rejections are all harmless by construction.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.net.frames import Message

#: The daemon's node id; clients are >= 1.
SERVER_ID = 0

#: Protocol version spoken in ``hello``/``welcome``.
SERVE_VERSION = 1

# -- client -> server verbs --------------------------------------------
HELLO = "hello"          #: bind the connection to a client id
CREATE = "g.create"      #: create a group (capacity, barriers)
JOIN = "g.join"          #: join a group (admission-controlled)
LEAVE = "g.leave"        #: leave a group (mid-barrier allowed)
ARRIVE = "arrive"        #: barrier arrival for (group, round)
BYE = "bye"              #: clean disconnect

# -- server -> client verbs --------------------------------------------
WELCOME = "welcome"      #: hello accepted; session established
OK = "g.ok"              #: request succeeded (echoes rid)
REJECT = "g.reject"      #: request refused, with a structured reason
RELEASE = "release"      #: barrier (group, round) completed
GOODBYE = "bye.ok"       #: clean disconnect acknowledged
SHUTDOWN = "shutdown"    #: daemon is stopping; no further requests

#: Reasons a :data:`REJECT` frame may carry.  ``backpressure`` is the
#: only *transient* one -- the client backs off and retries; everything
#: else is a terminal answer for that request.
REASONS = (
    "group-full",        # admission: the group is at capacity
    "server-full",       # admission: max_groups reached
    "no-such-group",     # join/leave/arrive against an unknown group
    "group-exists",      # create with a name already taken
    "group-done",        # the group already completed its barriers
    "not-a-member",      # arrive/leave without membership
    "backpressure",      # the group's inbox is full; retry after backoff
    "bad-request",       # schema-valid envelope, invalid verb payload
    "condemned",         # this client was ejected for misbehaviour
    "shutting-down",     # daemon is draining
)

#: Provably-hostile frames from one authenticated client before it is
#: condemned and ejected (mirrors :data:`repro.net.node.STRIKE_LIMIT`).
STRIKE_LIMIT = 3


def request(
    kind: str,
    client: int,
    seq: int,
    incarnation: int,
    rid: int,
    payload: Mapping[str, Any] | None = None,
) -> Message:
    """A client->daemon request envelope with its echoable ``rid``."""
    body = {"rid": rid}
    if payload:
        body.update(payload)
    return Message(
        kind=kind,
        src=client,
        dst=SERVER_ID,
        seq=seq,
        incarnation=incarnation,
        payload=body,
    )


def check_hello(payload: Mapping[str, Any], max_clients: int) -> str | None:
    """Validate a ``hello`` payload; returns a reason or None."""
    version = payload.get("v")
    if version != SERVE_VERSION:
        return f"bad protocol version {version!r}"
    client = payload.get("client")
    if not _is_pid(client) or client == SERVER_ID:
        return f"bad client id {client!r}"
    if client > max_clients:
        return f"client id {client} above server limit {max_clients}"
    return None


def check_round(value: Any) -> bool:
    """True when ``value`` is a well-formed round number."""
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_group_name(value: Any) -> bool:
    """Group names are short strings -- they label metrics and logs."""
    return isinstance(value, str) and 1 <= len(value) <= 64


def _is_pid(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0
