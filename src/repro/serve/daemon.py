"""``repro-serve``: the multi-tenant barrier daemon.

One asyncio process hosts many independent :class:`BarrierGroup`
tenants.  Clients connect over TCP or a Unix domain socket and speak
the PR-5 frame protocol (:mod:`repro.serve.protocol`); every inbound
frame is strictly decoded and schema-validated at the boundary, with
structured quarantine instead of exceptions -- a hostile client can be
rejected, struck, and condemned, but never crash the daemon.

Isolation model (the load-bearing design):

* each group owns a **bounded inbox** and its own worker task -- a slow
  or flooded group backpressures its *own* clients (transient
  ``reject(backpressure)`` frames, retried by the client's resend loop)
  and cannot stall any other group;
* each client owns a **bounded outbox** drained by its own writer task
  -- a slow reader sheds frames instead of blocking a group worker, and
  every shed frame is healed by protocol idempotence (stale arrives are
  answered with direct releases; requests are retried by rid);
* the daemon-wide :class:`~repro.net.frames.DedupIndex` keeps
  exactly-once semantics across client crash-restarts: a reconnect with
  a bumped incarnation supersedes the dead session and floors the old
  one, so replayed frames from a client's previous life are refused.

The PR-7 observability plane is wired in: ``/metrics`` (Prometheus
0.0.4), ``/health`` and ``/groups`` are served by
:class:`~repro.obs.http.ObsHttpServer` from inside the daemon's loop,
with ``obs_port=0`` binding an ephemeral port that is reported in the
endpoints file (see :meth:`ServeDaemon.endpoints`) so CI scrapers never
race on fixed ports.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.net.frames import (
    DedupIndex,
    FrameDecoder,
    FrameError,
    Message,
    encode_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.groups import BarrierGroup, GroupLimits
from repro.serve.protocol import (
    ARRIVE,
    BYE,
    CREATE,
    GOODBYE,
    HELLO,
    JOIN,
    LEAVE,
    REJECT,
    SERVE_VERSION,
    SERVER_ID,
    SHUTDOWN,
    STRIKE_LIMIT,
    WELCOME,
    check_group_name,
    check_hello,
    check_round,
)

#: Barrier-latency histogram buckets (seconds).
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class ServeConfig:
    """One daemon instance, fully specified."""

    host: str = "127.0.0.1"
    port: int = 0                    #: 0 = ephemeral (reported)
    unix_path: str | None = None     #: serve a Unix socket instead
    obs_port: int | None = None      #: /metrics /health /groups (0 = ephemeral)
    max_groups: int = 64
    max_clients: int = 100_000       #: highest admissible client id
    max_members: int = 1024          #: per-group capacity ceiling
    default_capacity: int = 64       #: capacity when g.create omits it
    queue_depth: int = 256           #: per-group inbox bound
    outbox_depth: int = 256          #: per-client outbox bound
    lease_s: float = 30.0            #: silent-member eviction grace
    default_barriers: int = 100      #: barriers when g.create omits it
    max_barriers: int = 1_000_000

    def __post_init__(self) -> None:
        if self.max_groups < 1:
            raise ValueError("max_groups must be >= 1")
        if self.queue_depth < 1 or self.outbox_depth < 1:
            raise ValueError("queue/outbox depths must be >= 1")
        if not 1 <= self.default_capacity <= self.max_members:
            raise ValueError("default_capacity must be in [1, max_members]")


class _ClientConn:
    """One live client session: the connection, its outbox, its writer."""

    def __init__(
        self,
        client: int,
        incarnation: int,
        writer: asyncio.StreamWriter,
        depth: int,
    ) -> None:
        self.client = client
        self.incarnation = incarnation
        self.writer = writer
        self.outbox: asyncio.Queue[bytes | None] = asyncio.Queue(maxsize=depth)
        self.dropped = 0
        self.closed = False
        self.task: asyncio.Task | None = None

    def offer(self, frame: bytes) -> bool:
        """Queue a frame for the writer; False = slow client, shed."""
        if self.closed:
            return False
        try:
            self.outbox.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            self.dropped += 1
            return False

    async def drain_loop(self) -> None:
        """The per-client writer: the only task that touches the socket,
        so a stalled peer never blocks a group worker."""
        try:
            while True:
                frame = await self.outbox.get()
                if frame is None:
                    break
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True
            try:
                self.writer.close()
            except RuntimeError:
                pass

    def close(self) -> None:
        self.closed = True
        if self.task is not None:
            self.task.cancel()
        try:
            self.writer.close()
        except RuntimeError:
            pass


class ServeDaemon:
    """The barrier-as-a-service daemon (see module docstring)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.groups: dict[str, BarrierGroup] = {}
        self.clients: dict[int, _ClientConn] = {}
        self.dedup = DedupIndex()
        self.condemned: set[int] = set()
        self._strikes: dict[int, int] = {}
        self._seq: dict[int, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self._obs: Any = None
        self._draining = False
        self._started = time.monotonic()
        self.address: str | None = None
        self.stats = {
            "connections": 0,
            "frames": 0,
            "quarantined": 0,
            "dup_filtered": 0,
            "rejects": 0,
            "shed_frames": 0,
        }
        self._build_metrics()

    # -- metrics / obs plane -------------------------------------------
    def _build_metrics(self) -> None:
        registry = MetricsRegistry()
        self.registry = registry
        self._m_frames = registry.counter(
            "serve_frames_total", "inbound frames by verb", ("kind",)
        )
        self._m_rejects = registry.counter(
            "serve_rejects_total", "reject frames by reason", ("reason",)
        )
        self._m_quarantined = registry.counter(
            "serve_quarantined_total", "frames quarantined at the boundary"
        )
        self._m_completions = registry.counter(
            "serve_barriers_completed_total", "completed rounds per group",
            ("group",),
        )
        self._m_latency = registry.histogram(
            "serve_barrier_latency_seconds",
            "first-arrive to completion per round",
            buckets=_LATENCY_BUCKETS,
        )
        self._g_clients = registry.gauge(
            "serve_clients_connected", "live client sessions"
        )
        self._g_groups = registry.gauge("serve_groups_active", "live groups")

    def metrics_text(self) -> str:
        """Prometheus 0.0.4 exposition (the ``/metrics`` provider)."""
        for group in self.groups.values():
            self._watch_latency(group)  # fold rounds closed since last scrape
        self._g_clients.set(len(self.clients))
        self._g_groups.set(
            sum(1 for g in self.groups.values() if not g.done)
        )
        return self.registry.render_prometheus()

    def health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "running",
            "uptime_s": time.monotonic() - self._started,
            "clients": len(self.clients),
            "groups": len(self.groups),
            "groups_active": sum(
                1 for g in self.groups.values() if not g.done
            ),
            "condemned": sorted(self.condemned),
            "stats": dict(self.stats),
        }

    def groups_snapshot(self) -> dict[str, Any]:
        """The ``/groups`` endpoint payload."""
        return {
            "groups": [
                g.snapshot() for _, g in sorted(self.groups.items())
            ],
            "clients": len(self.clients),
        }

    def outcomes(self) -> dict[str, Any]:
        """Deterministic per-group outcome slice (replay digests)."""
        return {
            name: g.outcome() for name, g in sorted(self.groups.items())
        }

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "ServeDaemon":
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, self.config.unix_path
            )
            self.address = f"unix://{self.config.unix_path}"
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = f"tcp://{self.config.host}:{port}"
        if self.config.obs_port is not None:
            from repro.obs.http import ObsHttpServer

            self._obs = await ObsHttpServer(
                self,
                port=self.config.obs_port,
                routes={"/groups": self._groups_route},
            ).start()
        return self

    def _groups_route(self) -> tuple[int, str, str]:
        return (
            200,
            "application/json",
            json.dumps(self.groups_snapshot(), sort_keys=True) + "\n",
        )

    @property
    def obs_url(self) -> str | None:
        return self._obs.url if self._obs is not None else None

    def endpoints(self) -> dict[str, Any]:
        """What a supervisor (or the CI job) needs to reach the daemon."""
        return {"address": self.address, "obs": self.obs_url}

    def write_endpoints(self, path: str | Path) -> None:
        """Atomic endpoints file: scrapers see either nothing or all."""
        target = Path(path)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(self.endpoints(), sort_keys=True) + "\n")
        tmp.replace(target)

    async def shutdown(self) -> None:
        """Graceful stop: refuse new work, notify clients, tear down."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self.clients.values()):
            self.send(conn.client, SHUTDOWN, {})
        # Let the writers flush the shutdown notice.
        await asyncio.sleep(0)
        for group in self.groups.values():
            await group.stop()
        for conn in list(self.clients.values()):
            conn.offer(None) or conn.close()  # sentinel ends the writer
        for conn in list(self.clients.values()):
            if conn.task is not None:
                try:
                    await asyncio.wait_for(conn.task, timeout=1.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    conn.close()
        self.clients.clear()
        if self._obs is not None:
            await self._obs.stop()
            self._obs = None

    # -- outbound ------------------------------------------------------
    def _next_seq(self, client: int) -> int:
        seq = self._seq.get(client, 0)
        self._seq[client] = seq + 1
        return seq

    def send(self, client: int, kind: str, payload: dict[str, Any]) -> bool:
        """Queue one frame for ``client``; False = not deliverable (no
        session, or its outbox is full -- shed, healed by idempotence)."""
        if kind == REJECT:
            # Counted here so group-level rejections (which call this
            # SendFn directly) land in the same metric as daemon ones.
            self.stats["rejects"] += 1
            self._m_rejects.inc(reason=str(payload.get("reason", "?")))
        conn = self.clients.get(client)
        if conn is None or conn.closed:
            return False
        msg = Message(
            kind=kind,
            src=SERVER_ID,
            dst=client,
            seq=self._next_seq(client),
            payload=payload,
        )
        if conn.offer(encode_frame(msg.to_bytes())):
            return True
        self.stats["shed_frames"] += 1
        return False

    # -- inbound -------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats["connections"] += 1
        decoder = FrameDecoder()
        conn: _ClientConn | None = None
        try:
            while not self._draining:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for body in decoder.feed(chunk):
                    conn = self._on_frame(conn, body, writer)
                    if conn is _CLOSE:
                        return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except FrameError:
            # Unframeable bytes: the stream cannot resync; drop it.
            self._quarantine("framing")
        finally:
            if isinstance(conn, _ClientConn):
                self._detach(conn)
            else:
                writer.close()

    def _on_frame(
        self,
        conn: "_ClientConn | None",
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> Any:
        """Decode, validate, dedup and route one frame.  Returns the
        (possibly newly bound) connection, or :data:`_CLOSE`."""
        try:
            msg = Message.from_bytes(body, strict=True)
        except FrameError:
            self._quarantine("decode")
            if conn is not None:
                self._strike(conn.client)
            return conn
        if conn is None:
            return self._handle_hello(msg, writer)
        if msg.src != conn.client:
            # The session is bound; an envelope claiming another id is
            # a spoof attempt from an authenticated client.
            self._quarantine("src-spoof")
            self._strike(conn.client)
            return conn
        if conn.client in self.condemned:
            self._quarantine("condemned")
            return _CLOSE
        if not self.dedup.accept(msg.src, msg.incarnation, msg.seq):
            self.stats["dup_filtered"] += 1
            return conn
        self.stats["frames"] += 1
        self._m_frames.inc(kind=msg.kind)
        self._route(conn, msg)
        return conn

    def _handle_hello(
        self, msg: Message, writer: asyncio.StreamWriter
    ) -> Any:
        """The first frame on a connection must bind a client id."""
        if msg.kind != HELLO:
            self._quarantine("no-hello")
            return _CLOSE
        reason = check_hello(msg.payload, self.config.max_clients)
        if reason is not None:
            self._quarantine("bad-hello")
            return _CLOSE
        client = msg.payload["client"]
        if client in self.condemned:
            self._quarantine("condemned")
            return _CLOSE
        existing = self.clients.get(client)
        if existing is not None:
            if msg.incarnation <= existing.incarnation and not existing.closed:
                # A duplicate live session for the same id: refuse the
                # newcomer (an id thief, or a client bug).
                self._quarantine("duplicate-client")
                return _CLOSE
            # Crash-restart: the bumped incarnation supersedes the dead
            # session, and the old life's replayed frames are floored.
            existing.close()
        if msg.incarnation > 0:
            self.dedup.forget_older_incarnations(client, msg.incarnation)
        if not self.dedup.accept(msg.src, msg.incarnation, msg.seq):
            self.stats["dup_filtered"] += 1
            return _CLOSE
        conn = _ClientConn(
            client, msg.incarnation, writer, self.config.outbox_depth
        )
        conn.task = asyncio.ensure_future(conn.drain_loop())
        self.clients[client] = conn
        self.stats["frames"] += 1
        self._m_frames.inc(kind=HELLO)
        self.send(client, WELCOME, {"v": SERVE_VERSION, "inc": msg.incarnation})
        return conn

    def _route(self, conn: _ClientConn, msg: Message) -> None:
        rid = msg.payload.get("rid")
        if msg.kind == BYE:
            self.send(conn.client, GOODBYE, {"rid": rid})
            conn.offer(None)
            return
        if msg.kind == HELLO:
            # Idempotent re-hello on a bound session.
            self.send(
                conn.client, WELCOME, {"v": SERVE_VERSION, "inc": msg.incarnation}
            )
            return
        if msg.kind == CREATE:
            self._handle_create(conn, msg, rid)
            return
        if msg.kind in (JOIN, LEAVE, ARRIVE):
            self._handle_group_frame(conn, msg, rid)
            return
        self._quarantine("unknown-kind")
        self._strike(conn.client)

    def _handle_create(self, conn: _ClientConn, msg: Message, rid: Any) -> None:
        if self._draining:
            self._reject(conn.client, rid, "shutting-down")
            return
        name = msg.payload.get("g")
        capacity = msg.payload.get("capacity", self.config.default_capacity)
        barriers = msg.payload.get("barriers", self.config.default_barriers)
        if (
            not check_group_name(name)
            or not check_round(capacity)
            or not check_round(barriers)
            or not 1 <= capacity <= self.config.max_members
            or not 1 <= barriers <= self.config.max_barriers
        ):
            self._reject(conn.client, rid, "bad-request")
            self._strike(conn.client)
            return
        if name in self.groups:
            self._reject(conn.client, rid, "group-exists")
            return
        if len(self.groups) >= self.config.max_groups:
            self._reject(conn.client, rid, "server-full")
            return
        group = BarrierGroup(
            name,
            barriers,
            send=self.send,
            limits=GroupLimits(
                capacity=capacity,
                queue_depth=self.config.queue_depth,
                lease_s=self.config.lease_s,
            ),
            on_strike=self._strike,
        )
        group.start()
        self.groups[name] = group
        self.send(
            conn.client,
            "g.ok",
            {"g": name, "rid": rid, "capacity": capacity, "barriers": barriers},
        )

    def _handle_group_frame(
        self, conn: _ClientConn, msg: Message, rid: Any
    ) -> None:
        name = msg.payload.get("g")
        if not check_group_name(name):
            self._reject(conn.client, rid, "bad-request")
            self._strike(conn.client)
            return
        group = self.groups.get(name)
        if group is None:
            self._reject(conn.client, rid, "no-such-group")
            return
        verb = {JOIN: "join", LEAVE: "leave", ARRIVE: "arrive"}[msg.kind]
        payload = dict(msg.payload)
        payload["inc"] = msg.incarnation
        if not group.offer(conn.client, verb, payload):
            # Transient: the group's inbox is full.  The client's
            # resend loop backs off and retries; no state was taken.
            self._reject(conn.client, rid, "backpressure")
        elif verb == "arrive":
            self._watch_latency(group)

    def _watch_latency(self, group: BarrierGroup) -> None:
        """Fold any newly closed round latencies into the histogram and
        the per-group completion counter (cheap: amortized O(1))."""
        recorded = getattr(group, "_latency_recorded", 0)
        fresh = group.round_latencies[recorded:]
        if fresh:
            group._latency_recorded = recorded + len(fresh)  # type: ignore[attr-defined]
            for value in fresh:
                self._m_latency.observe(value)
            self._m_completions.inc(len(fresh), group=group.name)

    # -- defense -------------------------------------------------------
    def _quarantine(self, reason: str) -> None:
        self.stats["quarantined"] += 1
        self._m_quarantined.inc()

    def _strike(self, client: int) -> int:
        """One daemon-wide suspicion strike; condemnation at the limit.
        Returns the running count (groups consult it for ejection)."""
        count = self._strikes.get(client, 0) + 1
        self._strikes[client] = count
        if count >= STRIKE_LIMIT and client not in self.condemned:
            self.condemned.add(client)
            for group in self.groups.values():
                if client in group.members or client in group.ever_members:
                    group.eject(client, "condemned")
            conn = self.clients.get(client)
            if conn is not None:
                self.send(client, REJECT, {"reason": "condemned"})
                conn.offer(None)
        return count

    def _reject(self, client: int, rid: Any, reason: str) -> None:
        self.send(client, REJECT, {"rid": rid, "reason": reason})

    def _detach(self, conn: _ClientConn) -> None:
        """A connection ended; the seat (if any) survives on its lease
        so a crash-restart client can reclaim it."""
        current = self.clients.get(conn.client)
        if current is conn:
            del self.clients[conn.client]
        conn.close()


#: Sentinel: the reader should drop the connection now.
_CLOSE = object()
