"""Derive phase events from guarded-command barrier runs.

The untimed engines (:mod:`repro.gc.simulator`) execute actions that
write ``cp``/``ph`` variables; phase instances are implicit in those
transitions.  :class:`BarrierPhaseObserver` mirrors the per-process
control positions and emits ``phase_start``/``phase_end`` events on the
tracer, using the specification's instance semantics (Section 2): an
instance opens when some process enters ``execute``, closes when no
process remains in ``execute``, and is successful iff every process
executed the phase fully (left ``execute`` via ``success``).

This is deliberately the same reconstruction the oracle in
:mod:`repro.barrier.spec` performs; the conformance suite asserts the
two agree, which is what lets trace summaries stand in for the oracle
on CB, RB, RB' (trees) and MB alike.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.barrier.control import CP


class BarrierPhaseObserver:
    """Feed per-process variable writes; get phase events on the tracer.

    The observer also maintains two tracer counters usable as run-stop
    predicates: ``obs.instances`` and ``obs.phases_successful``.
    """

    def __init__(
        self,
        tracer: Any,
        nprocs: int,
        initial_cp: Iterable[Any],
        initial_ph: Iterable[int],
        cp_var: str = "cp",
        ph_var: str = "ph",
        execute: Any = CP.EXECUTE,
        success: Any = CP.SUCCESS,
    ) -> None:
        self.tracer = tracer
        self.nprocs = nprocs
        self.cp_var = cp_var
        self.ph_var = ph_var
        # The control values marking "in the phase" / "left it having
        # completed".  Defaults are the tolerant programs' CP positions;
        # the intolerant baseline uses its own enum (execute/success/
        # done), resolved by :meth:`from_state` from the cp domain.
        self._execute = execute
        self._success = success
        self._cp = list(initial_cp)
        self._ph = list(initial_ph)
        if len(self._cp) != nprocs or len(self._ph) != nprocs:
            raise ValueError("initial cp/ph must have one entry per process")
        self._open_phase: int | None = None
        self._open_since: float = 0.0
        self._executing: set[int] = set()
        self._participants: set[int] = set()
        self._completed: set[int] = set()
        # Programs that *start* inside a phase (the intolerant baseline
        # boots with every process in execute) have an instance open
        # before any action fires; mirror it so its completion is
        # counted rather than silently dropped.
        starters = {p for p in range(nprocs) if self._cp[p] is execute}
        if starters:
            self._open_phase = self._ph[min(starters)]
            self._executing = set(starters)
            self._participants = set(starters)
            self.tracer.phase_start(0.0, self._open_phase, pid=min(starters))

    @classmethod
    def from_state(cls, tracer: Any, program: Any, state: Any) -> "BarrierPhaseObserver":
        """Build from a program's state (uses variables ``cp``/``ph``).

        The execute/success control values are resolved from the
        program's ``cp`` domain by member name, so any control enum with
        EXECUTE and SUCCESS positions (CP, the intolerant barrier's ICP)
        gets instance semantics.
        """
        n = program.nprocs
        execute, success = CP.EXECUTE, CP.SUCCESS
        domain = program.domains.get("cp")
        members = domain.values() if hasattr(domain, "values") else ()
        by_name = {getattr(m, "name", None): m for m in members}
        if "EXECUTE" in by_name and "SUCCESS" in by_name:
            execute, success = by_name["EXECUTE"], by_name["SUCCESS"]
        return cls(
            tracer,
            n,
            initial_cp=[state.get("cp", p) for p in range(n)],
            initial_ph=[state.get("ph", p) for p in range(n)],
            execute=execute,
            success=success,
        )

    # ------------------------------------------------------------------
    def observe(
        self, time: float, pid: int, updates: Iterable[tuple[str, Any]]
    ) -> None:
        """Process the writes one action (or fault) made at ``pid``."""
        new_cp: Any = None
        for var, value in updates:
            if var == self.cp_var:
                new_cp = value
            elif var == self.ph_var:
                self._ph[pid] = value
        if new_cp is None:
            return
        old_cp = self._cp[pid]
        self._cp[pid] = new_cp
        if new_cp is old_cp:
            return
        if new_cp is self._execute:
            if self._open_phase is None:
                self._open_phase = self._ph[pid]
                self._open_since = time
                self._participants.clear()
                self._completed.clear()
                self.tracer.phase_start(time, self._open_phase, pid=pid)
            self._participants.add(pid)
            self._executing.add(pid)
        elif old_cp is self._execute:
            self._executing.discard(pid)
            if new_cp is self._success:
                self._completed.add(pid)
            if self._open_phase is not None and not self._executing:
                success = len(self._completed) == self.nprocs
                # The duration payload (in daemon steps for the untimed
                # engines) is the metrics layer's histogram observation
                # point -- same key as the timed engines emit.
                self.tracer.phase_end(
                    time,
                    self._open_phase,
                    success,
                    pid=pid,
                    duration=time - self._open_since,
                )
                self.tracer.incr("obs.instances")
                if success:
                    self.tracer.incr("obs.phases_successful")
                self._open_phase = None

    @property
    def open_phase(self) -> int | None:
        """The phase of the currently-open instance (None when closed)."""
        return self._open_phase
