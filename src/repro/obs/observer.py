"""Derive phase events from guarded-command barrier runs.

The untimed engines (:mod:`repro.gc.simulator`) execute actions that
write ``cp``/``ph`` variables; phase instances are implicit in those
transitions.  :class:`BarrierPhaseObserver` mirrors the per-process
control positions and emits ``phase_start``/``phase_end`` events on the
tracer, using the specification's instance semantics (Section 2): an
instance opens when some process enters ``execute``, closes when no
process remains in ``execute``, and is successful iff every process
executed the phase fully (left ``execute`` via ``success``).

This is deliberately the same reconstruction the oracle in
:mod:`repro.barrier.spec` performs; the conformance suite asserts the
two agree, which is what lets trace summaries stand in for the oracle
on CB, RB, RB' (trees) and MB alike.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.barrier.control import CP


class BarrierPhaseObserver:
    """Feed per-process variable writes; get phase events on the tracer.

    The observer also maintains two tracer counters usable as run-stop
    predicates: ``obs.instances`` and ``obs.phases_successful``.
    """

    def __init__(
        self,
        tracer: Any,
        nprocs: int,
        initial_cp: Iterable[Any],
        initial_ph: Iterable[int],
        cp_var: str = "cp",
        ph_var: str = "ph",
    ) -> None:
        self.tracer = tracer
        self.nprocs = nprocs
        self.cp_var = cp_var
        self.ph_var = ph_var
        self._cp = list(initial_cp)
        self._ph = list(initial_ph)
        if len(self._cp) != nprocs or len(self._ph) != nprocs:
            raise ValueError("initial cp/ph must have one entry per process")
        self._open_phase: int | None = None
        self._open_since: float = 0.0
        self._executing: set[int] = set()
        self._participants: set[int] = set()
        self._completed: set[int] = set()

    @classmethod
    def from_state(cls, tracer: Any, program: Any, state: Any) -> "BarrierPhaseObserver":
        """Build from a program's state (uses variables ``cp``/``ph``)."""
        n = program.nprocs
        return cls(
            tracer,
            n,
            initial_cp=[state.get("cp", p) for p in range(n)],
            initial_ph=[state.get("ph", p) for p in range(n)],
        )

    # ------------------------------------------------------------------
    def observe(
        self, time: float, pid: int, updates: Iterable[tuple[str, Any]]
    ) -> None:
        """Process the writes one action (or fault) made at ``pid``."""
        new_cp: Any = None
        for var, value in updates:
            if var == self.cp_var:
                new_cp = value
            elif var == self.ph_var:
                self._ph[pid] = value
        if new_cp is None:
            return
        old_cp = self._cp[pid]
        self._cp[pid] = new_cp
        if new_cp is old_cp:
            return
        if new_cp is CP.EXECUTE:
            if self._open_phase is None:
                self._open_phase = self._ph[pid]
                self._open_since = time
                self._participants.clear()
                self._completed.clear()
                self.tracer.phase_start(time, self._open_phase, pid=pid)
            self._participants.add(pid)
            self._executing.add(pid)
        elif old_cp is CP.EXECUTE:
            self._executing.discard(pid)
            if new_cp is CP.SUCCESS:
                self._completed.add(pid)
            if self._open_phase is not None and not self._executing:
                success = len(self._completed) == self.nprocs
                # The duration payload (in daemon steps for the untimed
                # engines) is the metrics layer's histogram observation
                # point -- same key as the timed engines emit.
                self.tracer.phase_end(
                    time,
                    self._open_phase,
                    success,
                    pid=pid,
                    duration=time - self._open_since,
                )
                self.tracer.incr("obs.instances")
                if success:
                    self.tracer.incr("obs.phases_successful")
                self._open_phase = None

    @property
    def open_phase(self) -> int | None:
        """The phase of the currently-open instance (None when closed)."""
        return self._open_phase
