"""The typed event schema of the tracing layer.

Every trace is a flat sequence of :class:`ObsEvent` records.  The kind
vocabulary is fixed: the paper's quantities (instances per phase,
recovery latency, token circulation overhead, messages per barrier --
Figures 3-7 and Table 1) are all reductions over these kinds, so the
summarizer and the cross-implementation conformance suite can treat
traces from any engine uniformly.

Events serialize to flat JSON objects (one per line in JSONL exports):
``{"kind": ..., "t": ..., "pid": ..., <data...>}``.  Payload keys live
at the top level, so the reserved names ``kind``/``t``/``pid`` may not
be used as data keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: A phase instance (one barrier attempt) began.  data: ``phase``.
PHASE_START = "phase_start"
#: A phase instance ended.  data: ``phase``, ``success``.
PHASE_END = "phase_end"
#: A fault struck ``pid``.  data: ``detectable`` (and engine extras).
FAULT = "fault"
#: The protocol detected an earlier fault (root saw error/repeat).
DETECT = "detect"
#: The protocol returned to a start state after faults.  data may carry
#: an explicit ``latency``; otherwise the summarizer pairs the event
#: with the earliest unmatched fault.
RECOVERY = "recovery"
#: The token/wave was released by ``src`` (one circulation).
TOKEN_PASS = "token_pass"
#: A message entered a link.  data: ``src``, ``dst``, ``tag``.
MSG_SEND = "msg_send"
#: A message was delivered.  data: ``src``, ``dst``, ``tag``.
MSG_RECV = "msg_recv"
#: A frame was rejected by the defensive decode/validation layer
#: instead of raising.  data: ``reason`` (e.g. ``decode``, ``schema``,
#: ``src-spoof``, ``semantic``), ``peer`` when attributable.  Like the
#: message kinds, quarantines are observational -- they never enter the
#: replay digest (their count can depend on resend timing).
QUARANTINE = "quarantine"

EVENT_KINDS = frozenset(
    {
        PHASE_START,
        PHASE_END,
        FAULT,
        DETECT,
        RECOVERY,
        TOKEN_PASS,
        MSG_SEND,
        MSG_RECV,
        QUARANTINE,
    }
)

#: JSON keys that carry the event envelope rather than payload data.
RESERVED_KEYS = frozenset({"kind", "t", "pid"})


@dataclass(frozen=True)
class ObsEvent:
    """One structured trace record.

    ``time`` is virtual time for the timed engines and the step number
    (as a float) for the untimed guarded-command runs; ``pid`` is the
    process/rank the event is attributed to (None for system-wide
    events, e.g. a whole-system perturbation).
    """

    kind: str
    time: float
    pid: int | None = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known: {sorted(EVENT_KINDS)}"
            )
        bad = RESERVED_KEYS.intersection(self.data)
        if bad:
            raise ValueError(f"reserved keys in event data: {sorted(bad)}")

    def to_dict(self) -> dict[str, Any]:
        """The flat JSON form (payload keys at the top level)."""
        record: dict[str, Any] = {"kind": self.kind, "t": self.time}
        if self.pid is not None:
            record["pid"] = self.pid
        record.update(self.data)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ObsEvent":
        """Inverse of :meth:`to_dict`."""
        data = {k: v for k, v in record.items() if k not in RESERVED_KEYS}
        return cls(
            kind=record["kind"],
            time=float(record["t"]),
            pid=record.get("pid"),
            data=data,
        )
