"""Metrics registry: counters, gauges, fixed-bucket histograms.

The aggregation layer above the tracer.  The paper's evaluation is
quantitative *distributions*, not means -- convergence-time histograms
are how Herman-style phase-clock and self-stabilizing consensus work is
judged -- so every barrier quantity (recovery latency, instance
duration, token circulation time, messages per barrier) gets a
fixed-bucket histogram with optional per-pid / per-phase labels, not a
single scalar.

Two population paths share one vocabulary:

- **live**: ``observer = MetricsObserver(); observer.attach(tracer)``
  folds every event into the registry as the engine emits it;
- **offline**: ``metrics_from_trace(read_jsonl(path))`` replays an
  exported trace into a fresh registry.

Export is JSON (``registry.to_json()``) or the Prometheus text
exposition format (``registry.render_prometheus()``), so a simulated
run's metrics scrape like a production service's.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.obs.events import (
    DETECT,
    FAULT,
    MSG_RECV,
    MSG_SEND,
    PHASE_END,
    PHASE_START,
    RECOVERY,
    TOKEN_PASS,
    ObsEvent,
)

LabelValues = tuple[str, ...]


class MetricsError(ValueError):
    """Misuse of the metrics API (duplicate names, bad labels...)."""


def _label_key(
    labelnames: Sequence[str], labels: Mapping[str, Any], metric: str
) -> LabelValues:
    if set(labels) != set(labelnames):
        raise MetricsError(
            f"metric {metric!r} takes labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


@dataclass
class _Metric:
    """Shared shape of one registered metric family."""

    name: str
    help: str
    labelnames: tuple[str, ...]

    kind = "untyped"

    def _key(self, labels: Mapping[str, Any]) -> LabelValues:
        return _label_key(self.labelnames, labels, self.name)

    def _label_suffix(self, key: LabelValues) -> str:
        if not key:
            return ""
        pairs = ",".join(
            f'{name}="{_escape(value)}"'
            for name, value in zip(self.labelnames, key)
        )
        return "{" + pairs + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Prometheus-style number formatting (+Inf, integers bare)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _json_safe(value: float) -> Any:
    """Non-finite floats as strings, so ``to_json`` stays valid JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return _fmt(value)
    return value


class Counter(_Metric):
    """A monotonically increasing count, per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, tuple(labelnames))
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> Iterator[tuple[str, float]]:
        for key in sorted(self._values):
            yield self.name + self._label_suffix(key), self._values[key]

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "values": [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "value": _json_safe(value),
                }
                for key, value in sorted(self._values.items())
            ],
        }


class Gauge(Counter):
    """A value that can go anywhere (set at finalization or live)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount


@dataclass
class _HistogramCell:
    """One label combination's accumulation."""

    bucket_counts: list[int]
    total: float = 0.0
    count: int = 0


class Histogram(_Metric):
    """A fixed-bucket histogram (cumulative ``le`` buckets + sum/count).

    ``buckets`` are the finite upper bounds; a ``+Inf`` bucket is always
    appended, so every observation lands somewhere.  ``quantile(q)``
    estimates by linear interpolation inside the winning bucket -- the
    standard Prometheus ``histogram_quantile`` estimator.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ):
        super().__init__(name, help, tuple(labelnames))
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError(f"histogram {self.name!r} needs buckets")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricsError(
                f"histogram {self.name!r} buckets must be strictly increasing"
            )
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.buckets = bounds + (math.inf,)
        self._cells: dict[LabelValues, _HistogramCell] = {}

    def _cell(self, labels: Mapping[str, Any]) -> _HistogramCell:
        key = self._key(labels)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _HistogramCell([0] * len(self.buckets))
        return cell

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        cell = self._cell(labels)
        cell.count += 1
        cell.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell.bucket_counts[i] += 1
                break

    # -- views ----------------------------------------------------------
    def count(self, **labels: Any) -> int:
        cell = self._cells.get(self._key(labels))
        return cell.count if cell else 0

    def sum(self, **labels: Any) -> float:
        cell = self._cells.get(self._key(labels))
        return cell.total if cell else 0.0

    def cumulative(self, **labels: Any) -> list[tuple[float, int]]:
        """``[(le, cumulative count), ...]`` over all buckets."""
        cell = self._cells.get(self._key(labels))
        counts = cell.bucket_counts if cell else [0] * len(self.buckets)
        out, running = [], 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        return out

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimated ``q``-quantile (nan when empty; interpolated)."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile {q} out of [0, 1]")
        cum = self.cumulative(**labels)
        total = cum[-1][1]
        if total == 0:
            return math.nan
        rank = q * total
        prev_bound, prev_cum = 0.0, 0
        for bound, running in cum:
            if running >= rank:
                if bound == math.inf:
                    return prev_bound  # open-ended: clamp to last bound
                in_bucket = running - prev_cum
                if in_bucket == 0:
                    return bound
                frac = (rank - prev_cum) / in_bucket
                lo = min(prev_bound, bound)
                return lo + (bound - lo) * frac
            prev_bound, prev_cum = bound, running
        return prev_bound

    def samples(self) -> Iterator[tuple[str, float]]:
        for key in sorted(self._cells):
            cell = self._cells[key]
            running = 0
            for bound, n in zip(self.buckets, cell.bucket_counts):
                running += n
                labels = dict(zip(self.labelnames, key))
                labels["le"] = _fmt(bound)
                pairs = ",".join(
                    f'{name}="{_escape(str(value))}"'
                    for name, value in labels.items()
                )
                yield f"{self.name}_bucket{{{pairs}}}", running
            suffix = self._label_suffix(key)
            yield f"{self.name}_sum{suffix}", cell.total
            yield f"{self.name}_count{suffix}", cell.count

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "buckets": ["+Inf" if b == math.inf else b for b in self.buckets],
            "values": [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "bucket_counts": list(cell.bucket_counts),
                    "sum": cell.total,
                    "count": cell.count,
                }
                for key, cell in sorted(self._cells.items())
            ],
        }


class MetricsRegistry:
    """A named collection of metric families with uniform export."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> Any:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if (
                type(existing) is type(metric)
                and existing.labelnames == metric.labelnames
            ):
                return existing  # idempotent re-registration
            raise MetricsError(
                f"metric {metric.name!r} already registered with a "
                "different type or label set"
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = (),
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets, labelnames))

    # -- access ---------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Any:
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricsError(
                f"no metric {name!r}; registered: {sorted(self._metrics)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- export ---------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {name: self._metrics[name].to_json() for name in self.names()}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, value in metric.samples():
                lines.append(f"{sample_name} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """Human-readable report with ASCII histograms."""
        from repro.viz.chart import ascii_histogram

        blocks: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            lines = [f"{name} ({metric.kind})"]
            if metric.help:
                lines[0] += f" -- {metric.help}"
            if isinstance(metric, Histogram):
                if not metric._cells:
                    lines.append("  (no observations)")
                for key in sorted(metric._cells):
                    labels = dict(zip(metric.labelnames, key))
                    cell = metric._cells[key]
                    tag = metric._label_suffix(key) or ""
                    lines.append(
                        f"  {tag or '(all)'}: count={cell.count} "
                        f"sum={cell.total:.6g} "
                        f"p50={metric.quantile(0.5, **labels):.4g} "
                        f"p90={metric.quantile(0.9, **labels):.4g}"
                    )
                    lines.append(
                        _indent(
                            ascii_histogram(
                                metric.buckets,
                                _de_cumulate(cell.bucket_counts),
                            ),
                            4,
                        )
                    )
            else:
                for sample_name, value in metric.samples():
                    lines.append(f"  {sample_name} = {_fmt(value)}")
                if not metric._values:  # type: ignore[attr-defined]
                    lines.append("  (no samples)")
            blocks.append("\n".join(lines))
        return "\n".join(blocks)


def _de_cumulate(counts: Sequence[int]) -> list[int]:
    return list(counts)  # stored per-bucket already


def _indent(text: str, n: int) -> str:
    pad = " " * n
    return "\n".join(pad + line for line in text.splitlines())


_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_TYPE_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape_help(text: str) -> str:
    """HELP-line escaping per the exposition format (only ``\\`` and
    newline; quotes stay bare)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(text: str) -> str:
    return _unescape(text, quotes=False)


def _unescape(text: str, quotes: bool) -> str:
    """Invert :func:`_escape` / :func:`_escape_help`.  Unknown escape
    sequences pass through backslash-and-all (Prometheus behaviour)."""
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == "n":
                out.append("\n")
            elif nxt == '"' and quotes:
                out.append('"')
            else:
                out.append(ch + nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


@dataclass(frozen=True)
class PromSample:
    """One parsed sample line, labels unescaped, raw value preserved."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float
    raw_value: str

    @property
    def key(self) -> str:
        """The sample's canonical text key, ``name{l="v",...}``."""
        return self.name + self.label_suffix

    @property
    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        pairs = ",".join(
            f'{name}="{_escape(value)}"' for name, value in self.labels
        )
        return "{" + pairs + "}"

    def render(self) -> str:
        return f"{self.key} {self.raw_value}"


#: One exposition entry: ``("help", name, text)`` | ``("type", name,
#: kind)`` | ``("sample", PromSample)``.
PromEntry = tuple


def _parse_sample_line(line: str, lineno: int) -> PromSample:
    def bad(why: str) -> MetricsError:
        return MetricsError(f"{why} at line {lineno}: {line!r}")

    match = _METRIC_NAME_RE.match(line)
    if match is None:
        raise bad("bad sample name")
    name = match.group(0)
    i = match.end()
    labels: list[tuple[str, str]] = []
    if i < len(line) and line[i] == "{":
        i += 1
        while True:
            if i >= len(line):
                raise bad("unterminated label block")
            if line[i] == "}":
                i += 1
                break
            lmatch = _LABEL_NAME_RE.match(line, i)
            if lmatch is None:
                raise bad("bad label name")
            lname = lmatch.group(0)
            i = lmatch.end()
            if line[i : i + 2] != '="':
                raise bad("label value must be quoted")
            i += 2
            buf: list[str] = []
            while i < len(line) and line[i] != '"':
                ch = line[i]
                if ch == "\\":
                    if i + 1 >= len(line):
                        raise bad("dangling escape in label value")
                    nxt = line[i + 1]
                    if nxt == "\\":
                        buf.append("\\")
                    elif nxt == "n":
                        buf.append("\n")
                    elif nxt == '"':
                        buf.append('"')
                    else:
                        buf.append(ch + nxt)
                    i += 2
                    continue
                buf.append(ch)
                i += 1
            if i >= len(line):
                raise bad("unterminated label value")
            i += 1  # closing quote
            labels.append((lname, "".join(buf)))
            if i < len(line) and line[i] == ",":
                i += 1
    if i >= len(line) or line[i] != " ":
        raise bad("bad sample")
    raw = line[i + 1 :]
    if not raw or " " in raw:  # no timestamp support: value only
        raise bad("bad value")
    try:
        value = float(raw)
    except ValueError as exc:
        raise MetricsError(f"bad value at line {lineno}: {line!r}") from exc
    return PromSample(name, tuple(labels), value, raw)


def parse_exposition(text: str) -> list[PromEntry]:
    """A structural parse of the text exposition format: label values
    are unescaped (``\\\\``, ``\\"``, ``\\n``), HELP text is unescaped,
    raw sample values are preserved verbatim so
    :func:`render_exposition` round-trips our exporter's output
    byte-identically (``+Inf``/``-Inf``/``NaN`` included).  Raises
    :class:`MetricsError` on malformed lines."""
    entries: list[PromEntry] = []
    # The format is \n-delimited; splitlines() would also split on
    # \x1c-\x1e, \x85,  ... which are legal *raw* inside a quoted
    # label value (only \n, \" and \\ are escaped).
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "HELP",
                "TYPE",
            ):
                raise MetricsError(f"bad comment at line {lineno}: {line!r}")
            if _METRIC_NAME_RE.fullmatch(parts[2]) is None:
                raise MetricsError(
                    f"bad metric name at line {lineno}: {line!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPE_KINDS:
                    raise MetricsError(f"bad TYPE at line {lineno}: {line!r}")
                entries.append(("type", parts[2], parts[3]))
            else:
                help_text = parts[3] if len(parts) == 4 else ""
                entries.append(("help", parts[2], _unescape_help(help_text)))
            continue
        entries.append(("sample", _parse_sample_line(line, lineno)))
    return entries


def render_exposition(entries: Iterable[PromEntry]) -> str:
    """Render parsed entries back to exposition text -- the inverse of
    :func:`parse_exposition` on exporter-produced input."""
    lines: list[str] = []
    for entry in entries:
        if entry[0] == "help":
            lines.append(f"# HELP {entry[1]} {_escape_help(entry[2])}")
        elif entry[0] == "type":
            lines.append(f"# TYPE {entry[1]} {entry[2]}")
        elif entry[0] == "sample":
            lines.append(entry[1].render())
        else:
            raise MetricsError(f"unknown exposition entry {entry[0]!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Flat view of :func:`parse_exposition`: ``{sample key (with
    canonical label text): value}``, rejecting duplicate samples."""
    samples: dict[str, float] = {}
    for entry in parse_exposition(text):
        if entry[0] != "sample":
            continue
        sample = entry[1]
        if sample.key in samples:
            raise MetricsError(f"duplicate sample {sample.key!r}")
        samples[sample.key] = sample.value
    return samples


# ---------------------------------------------------------------------------
# The barrier metric set + the event-folding observer
# ---------------------------------------------------------------------------

#: Default bucket layouts, in virtual time units (phase work is 1.0).
DEFAULT_BUCKETS: dict[str, tuple[float, ...]] = {
    "recovery_latency": (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.5, 5.0, 10.0),
    "instance_duration": (0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0),
    "token_circulation_time": (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0),
    "message_latency": (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0),
}


class MetricsObserver:
    """Fold trace events into a :class:`MetricsRegistry`.

    Works live (``observer.attach(tracer)`` subscribes to every emitted
    event) or offline (``observer.observe_all(events)`` over a JSONL
    read-back); both paths produce identical registries for the same
    event sequence.

    ``per_pid`` adds a ``pid`` label to fault counts and recovery
    latencies; ``per_phase`` adds a ``phase`` label to instance
    durations.  Both default off to keep label cardinality bounded on
    big sweeps.

    Recovery latencies are attributed with the same per-pid
    pending-fault rules as :func:`repro.obs.summary.summarize`, and the
    latency histogram is classed ``detectable`` / ``undetectable`` /
    ``unattributed`` by the fault that opened the episode -- the
    Figure 7 distinction.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        per_pid: bool = False,
        per_phase: bool = False,
        prefix: str = "barrier",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.per_pid = per_pid
        self.per_phase = per_phase
        r = self.registry
        p = prefix
        fault_labels = ("klass",) + (("pid",) if per_pid else ())
        phase_labels = ("result",) + (("phase",) if per_phase else ())
        self.events_total = r.counter(
            f"{p}_events_total", "trace events seen", ("kind",)
        )
        self.phases_total = r.counter(
            f"{p}_phase_instances_total",
            "barrier instances (attempts) by outcome",
            phase_labels,
        )
        self.faults_total = r.counter(
            f"{p}_faults_total", "injected faults by class", fault_labels
        )
        self.detections_total = r.counter(
            f"{p}_detections_total", "protocol fault detections"
        )
        self.recoveries_total = r.counter(
            f"{p}_recoveries_total", "returns to a start state after faults"
        )
        self.token_passes_total = r.counter(
            f"{p}_token_passes_total", "token/wave releases"
        )
        self.messages_total = r.counter(
            f"{p}_messages_total", "messages by direction", ("direction",)
        )
        self.recovery_latency = r.histogram(
            f"{p}_recovery_latency",
            "fault-to-start-state latency (virtual time)",
            DEFAULT_BUCKETS["recovery_latency"],
            ("klass",) + (("pid",) if per_pid else ()),
        )
        self.instance_duration = r.histogram(
            f"{p}_instance_duration",
            "barrier instance duration (virtual time)",
            DEFAULT_BUCKETS["instance_duration"],
            phase_labels,
        )
        self.token_circulation_time = r.histogram(
            f"{p}_token_circulation_time",
            "gap between consecutive token releases at one source",
            DEFAULT_BUCKETS["token_circulation_time"],
        )
        self.message_latency = r.histogram(
            f"{p}_message_latency",
            "send-to-delivery latency (virtual time)",
            DEFAULT_BUCKETS["message_latency"],
        )
        self.instances_per_phase = r.gauge(
            f"{p}_instances_per_phase",
            "instances per successful phase (finalized)",
        )
        self.messages_per_barrier = r.gauge(
            f"{p}_messages_per_barrier",
            "messages sent per successful phase (finalized)",
        )

        # Attribution state (mirrors summarize()'s PendingFaults, but
        # remembers the fault class for the latency label).
        self._pending: dict[int | None, list[tuple[int, float, str]]] = {}
        self._pending_seq = 0
        self._open_phase_start: dict[int, float] = {}
        self._last_token_release: dict[int, float] = {}
        self._instances = 0
        self._successes = 0
        self._messages_sent = 0

    # -- wiring ---------------------------------------------------------
    def attach(self, tracer: Any) -> "MetricsObserver":
        """Subscribe to a live :class:`~repro.obs.tracer.Tracer`."""
        tracer.subscribe(self)
        return self

    def observe_all(self, events: Iterable[ObsEvent]) -> "MetricsObserver":
        for event in events:
            self(event)
        return self

    # -- event folding ---------------------------------------------------
    def __call__(self, event: ObsEvent) -> None:
        kind = event.kind
        data = event.data
        self.events_total.inc(kind=kind)
        if kind == PHASE_START:
            phase = data.get("phase")
            if phase is not None:
                self._open_phase_start[int(phase)] = event.time
        elif kind == PHASE_END:
            self._instances += 1
            success = bool(data.get("success"))
            if success:
                self._successes += 1
            labels: dict[str, Any] = {
                "result": "success" if success else "failed"
            }
            if self.per_phase:
                labels["phase"] = data.get("phase", "?")
            self.phases_total.inc(**labels)
            duration = data.get("duration")
            if duration is None:
                phase = data.get("phase")
                start = self._open_phase_start.pop(int(phase), None) if (
                    phase is not None
                ) else None
                if start is not None:
                    duration = event.time - start
            elif data.get("phase") is not None:
                self._open_phase_start.pop(int(data["phase"]), None)
            if duration is not None and math.isfinite(float(duration)):
                self.instance_duration.observe(float(duration), **labels)
        elif kind == FAULT:
            klass = "detectable" if data.get("detectable", True) else "undetectable"
            labels = {"klass": klass}
            if self.per_pid:
                labels["pid"] = event.pid if event.pid is not None else "sys"
            self.faults_total.inc(**labels)
            self._pending.setdefault(event.pid, []).append(
                (self._pending_seq, event.time, klass)
            )
            self._pending_seq += 1
        elif kind == DETECT:
            self.detections_total.inc()
        elif kind == RECOVERY:
            self.recoveries_total.inc()
            latency, klass = self._resolve_recovery(event)
            if latency is not None and math.isfinite(latency):
                labels = {"klass": klass}
                if self.per_pid:
                    labels["pid"] = event.pid if event.pid is not None else "sys"
                self.recovery_latency.observe(latency, **labels)
        elif kind == TOKEN_PASS:
            self.token_passes_total.inc()
            src = event.pid if event.pid is not None else 0
            last = self._last_token_release.get(src)
            if last is not None and event.time > last:
                self.token_circulation_time.observe(event.time - last)
            self._last_token_release[src] = event.time
        elif kind == MSG_SEND:
            self._messages_sent += 1
            self.messages_total.inc(direction="sent")
        elif kind == MSG_RECV:
            self.messages_total.inc(direction="recv")
            latency = data.get("latency")
            if latency is not None and math.isfinite(float(latency)):
                self.message_latency.observe(float(latency))

    def _resolve_recovery(self, event: ObsEvent) -> tuple[float | None, str]:
        explicit = event.data.get("latency")
        pid = event.pid
        queue = self._pending.get(pid)
        if pid is not None and queue:
            _, fault_time, klass = queue.pop(0)
            if not queue:
                del self._pending[pid]
            if explicit is not None:
                self._pending.clear()
                return float(explicit), klass
            return event.time - fault_time, klass
        earliest = min(
            (q[0] for q in self._pending.values() if q), default=None
        )
        self._pending.clear()
        if earliest is None:
            return (
                (float(explicit), "unattributed") if explicit is not None
                else (None, "unattributed")
            )
        _, fault_time, klass = earliest
        if explicit is not None:
            return float(explicit), klass
        return event.time - fault_time, klass

    # -- finalization ----------------------------------------------------
    def finalize(self) -> MetricsRegistry:
        """Set the ratio gauges from the accumulated counts and return
        the registry (idempotent; call after the run / replay)."""
        if self._successes:
            self.instances_per_phase.set(self._instances / self._successes)
            self.messages_per_barrier.set(self._messages_sent / self._successes)
        elif self._instances or self._messages_sent:
            self.instances_per_phase.set(math.inf)
            self.messages_per_barrier.set(math.inf)
        return self.registry


def metrics_from_trace(
    events: Iterable[ObsEvent],
    per_pid: bool = False,
    per_phase: bool = False,
) -> MetricsRegistry:
    """Replay an event sequence (e.g. a JSONL read-back) into a fresh
    registry -- the offline population path."""
    observer = MetricsObserver(per_pid=per_pid, per_phase=per_phase)
    observer.observe_all(events)
    return observer.finalize()
