"""Causal fault analytics: per-fault chains through the trace.

:func:`build_chains` reconstructs, for every injected fault, the chain

    fault -> detect -> recovery -> first clean ``phase_end``

with correct attribution under *overlapping* faults: pending faults are
tracked per pid (FIFO within a pid), and only pid-less bookkeeping falls
back to global arrival order.  A recovery whose pid has its own pending
fault closes that fault alone; a recovery with no fault of its own
(root-observed return to a start state, or a pid-less event) is
system-wide -- it closes *every* open chain at once, and each chain's
latency is measured from its own fault time, which is what turns a
single mean into the per-fault latency distribution the convergence
literature reports.

The result feeds :class:`CausalReport` -- latency distributions split
by fault class (detectable vs undetectable, the Figure 3/5 vs Figure 7
regimes) -- and the ``causal-report`` CLI subcommand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.events import DETECT, FAULT, PHASE_END, RECOVERY, ObsEvent

DETECTABLE = "detectable"
UNDETECTABLE = "undetectable"


@dataclass
class FaultChain:
    """One fault's causal chain (times are virtual; None = never seen)."""

    fault_time: float
    pid: int | None
    detectable: bool
    detect_time: float | None = None
    recovery_time: float | None = None
    #: Engine-supplied latency on the recovery event, when present (it
    #: overrides the fault->recovery difference for *this* chain only if
    #: the recovery was attributed to this chain first).
    explicit_latency: float | None = None
    clean_phase_time: float | None = None
    #: True when the closing recovery was system-wide (global fallback)
    #: rather than matched to this chain's pid.
    system_wide_recovery: bool = False

    @property
    def klass(self) -> str:
        return DETECTABLE if self.detectable else UNDETECTABLE

    @property
    def detection_latency(self) -> float | None:
        if self.detect_time is None:
            return None
        return self.detect_time - self.fault_time

    @property
    def recovery_latency(self) -> float | None:
        """Fault-to-start-state latency (the Figure 7 quantity)."""
        if self.explicit_latency is not None:
            return self.explicit_latency
        if self.recovery_time is None:
            return None
        return self.recovery_time - self.fault_time

    @property
    def total_latency(self) -> float | None:
        """Fault to the first *clean* successful phase end."""
        if self.clean_phase_time is None:
            return None
        return self.clean_phase_time - self.fault_time

    @property
    def complete(self) -> bool:
        return self.recovery_time is not None and self.clean_phase_time is not None

    def to_dict(self) -> dict:
        return {
            "fault_time": self.fault_time,
            "pid": self.pid,
            "klass": self.klass,
            "detect_time": self.detect_time,
            "recovery_time": self.recovery_time,
            "recovery_latency": self.recovery_latency,
            "clean_phase_time": self.clean_phase_time,
            "total_latency": self.total_latency,
            "system_wide_recovery": self.system_wide_recovery,
            "complete": self.complete,
        }


def build_chains(events: Iterable[ObsEvent]) -> list[FaultChain]:
    """Reconstruct every fault's chain from an event sequence."""
    chains: list[FaultChain] = []
    #: pid -> FIFO of indices into ``chains`` awaiting recovery
    open_by_pid: dict[int | None, list[int]] = {}
    #: chains recovered but still awaiting their first clean phase end
    awaiting_clean: list[int] = []

    def close(index: int, event: ObsEvent, system_wide: bool) -> None:
        chain = chains[index]
        chain.recovery_time = event.time
        chain.system_wide_recovery = system_wide
        explicit = event.data.get("latency")
        if explicit is not None and not system_wide:
            chain.explicit_latency = float(explicit)
        awaiting_clean.append(index)

    for event in events:
        kind = event.kind
        if kind == FAULT:
            chain = FaultChain(
                fault_time=event.time,
                pid=event.pid,
                detectable=bool(event.data.get("detectable", True)),
            )
            chains.append(chain)
            open_by_pid.setdefault(event.pid, []).append(len(chains) - 1)
        elif kind == DETECT:
            # Attribute to the earliest open, not-yet-detected chain:
            # detection is observed at the root, not at the victim, so
            # global order is the only available attribution.
            open_indices = sorted(
                i for q in open_by_pid.values() for i in q
            )
            for i in open_indices:
                if chains[i].detect_time is None:
                    chains[i].detect_time = event.time
                    break
        elif kind == RECOVERY:
            queue = open_by_pid.get(event.pid)
            if event.pid is not None and queue:
                index = queue.pop(0)
                if not queue:
                    del open_by_pid[event.pid]
                close(index, event, system_wide=False)
            else:
                # System-wide: every open chain recovered at this moment.
                explicit = event.data.get("latency")
                open_indices = sorted(
                    i for q in open_by_pid.values() for i in q
                )
                open_by_pid.clear()
                for j, i in enumerate(open_indices):
                    close(i, event, system_wide=True)
                    if explicit is not None and j == 0:
                        # The engine's latency was measured from the
                        # earliest fault of the episode.
                        chains[i].explicit_latency = float(explicit)
        elif kind == PHASE_END and event.data.get("success"):
            if awaiting_clean:
                for i in awaiting_clean:
                    chains[i].clean_phase_time = event.time
                awaiting_clean.clear()
    return chains


@dataclass
class ClassStats:
    """Latency distribution of one fault class."""

    klass: str
    chains: int = 0
    complete: int = 0
    recovered: int = 0
    detected: int = 0
    recovery_latencies: list[float] = field(default_factory=list)
    total_latencies: list[float] = field(default_factory=list)

    def quantile(self, q: float) -> float:
        return _quantile(self.recovery_latencies, q)

    @property
    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return math.nan
        return sum(self.recovery_latencies) / len(self.recovery_latencies)


def _quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank-with-interpolation quantile of raw values."""
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


@dataclass
class CausalReport:
    """Chains plus per-class distributions, renderable for the CLI."""

    chains: list[FaultChain]
    by_class: dict[str, ClassStats]

    @property
    def unrecovered(self) -> int:
        return sum(1 for c in self.chains if c.recovery_time is None)

    def render(self) -> str:
        from repro.viz.chart import ascii_histogram_of

        lines = [
            f"Causal fault report: {len(self.chains)} fault chains "
            f"({self.unrecovered} never recovered)"
        ]
        for klass in (DETECTABLE, UNDETECTABLE):
            stats = self.by_class.get(klass)
            if stats is None or stats.chains == 0:
                continue
            lines.append(
                f"  {klass:<13}: {stats.chains} faults, "
                f"{stats.detected} detected, {stats.recovered} recovered, "
                f"{stats.complete} reached a clean phase"
            )
            if stats.recovery_latencies:
                lines.append(
                    "    recovery latency: "
                    f"mean={stats.mean_recovery_latency:.4g} "
                    f"p50={stats.quantile(0.5):.4g} "
                    f"p90={stats.quantile(0.9):.4g} "
                    f"max={max(stats.recovery_latencies):.4g}"
                )
                lines.append(
                    _indent(ascii_histogram_of(stats.recovery_latencies), 4)
                )
        if len(lines) == 1:
            lines.append("  (no faults in this trace)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "chains": [c.to_dict() for c in self.chains],
            "by_class": {
                klass: {
                    "chains": s.chains,
                    "detected": s.detected,
                    "recovered": s.recovered,
                    "complete": s.complete,
                    "mean_recovery_latency": _nan_safe(
                        s.mean_recovery_latency
                    ),
                    "p50": _nan_safe(s.quantile(0.5)),
                    "p90": _nan_safe(s.quantile(0.9)),
                }
                for klass, s in sorted(self.by_class.items())
            },
        }


def _nan_safe(value: float) -> float | None:
    return None if math.isnan(value) else value


def _indent(text: str, n: int) -> str:
    pad = " " * n
    return "\n".join(pad + line for line in text.splitlines())


def causal_report(events: Iterable[ObsEvent]) -> CausalReport:
    """Build the full report (chains + per-class distributions)."""
    chains = build_chains(events)
    by_class: dict[str, ClassStats] = {}
    for chain in chains:
        stats = by_class.setdefault(chain.klass, ClassStats(chain.klass))
        stats.chains += 1
        if chain.detect_time is not None:
            stats.detected += 1
        if chain.recovery_time is not None:
            stats.recovered += 1
        if chain.complete:
            stats.complete += 1
        latency = chain.recovery_latency
        if latency is not None and math.isfinite(latency):
            stats.recovery_latencies.append(latency)
        total = chain.total_latency
        if total is not None and math.isfinite(total):
            stats.total_latencies.append(total)
    return CausalReport(chains=chains, by_class=by_class)
