"""Tracer: structured events, monotonic counters, virtual-time timers.

Engines take an optional ``tracer=`` argument and hold
:data:`NULL_TRACER` when none is given.  The null tracer exposes the
full recording API as no-ops with ``enabled = False``, so hot paths pay
one attribute check (``if tracer.enabled:``) when tracing is off -- the
<5% overhead budget of the observability layer.

Timers run on the caller's clock (virtual time): ``timer_start(name, t)``
/ ``timer_stop(name, t)`` accumulate elapsed virtual time and a stop
count per name, which is how recovery latencies and per-instance costs
are measured without wall-clock noise.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.events import (
    DETECT,
    FAULT,
    MSG_RECV,
    MSG_SEND,
    PHASE_END,
    PHASE_START,
    QUARANTINE,
    RECOVERY,
    TOKEN_PASS,
    ObsEvent,
)


class ObsError(ValueError):
    """Misuse of the tracing API (e.g. stopping a timer never started)."""


class NullTracer:
    """The disabled tracer: every recording call is a no-op.

    ``enabled`` is False, so engines can skip building event payloads
    entirely; read-only views are empty.
    """

    enabled = False

    # -- events --------------------------------------------------------
    def emit(self, kind: str, time: float, pid: int | None = None, **data: Any) -> None:
        pass

    def phase_start(
        self, time: float, phase: int, pid: int | None = 0, **data: Any
    ) -> None:
        pass

    def phase_end(
        self,
        time: float,
        phase: int,
        success: bool,
        pid: int | None = 0,
        **data: Any,
    ) -> None:
        pass

    def fault(
        self, time: float, pid: int | None, detectable: bool = True, **data: Any
    ) -> None:
        pass

    def detect(self, time: float, pid: int | None = 0, **data: Any) -> None:
        pass

    def recovery(self, time: float, pid: int | None = 0, **data: Any) -> None:
        pass

    def token_pass(
        self, time: float, src: int = 0, dst: int | None = None, **data: Any
    ) -> None:
        pass

    def msg_send(
        self, time: float, src: int, dst: int, tag: int = 0, **data: Any
    ) -> None:
        pass

    def msg_recv(
        self, time: float, src: int, dst: int, tag: int = 0, **data: Any
    ) -> None:
        pass

    def quarantine(
        self,
        time: float,
        pid: int | None,
        reason: str,
        peer: int | None = None,
        **data: Any,
    ) -> None:
        pass

    # -- counters / timers ---------------------------------------------
    def incr(self, name: str, amount: int | float = 1) -> None:
        pass

    def timer_start(self, name: str, time: float) -> None:
        pass

    def timer_stop(self, name: str, time: float) -> float:
        return 0.0

    def timer_cancel(self, name: str) -> bool:
        return False

    # -- listeners ------------------------------------------------------
    def subscribe(self, listener: Any) -> None:
        pass

    def unsubscribe(self, listener: Any) -> None:
        pass

    # -- views ---------------------------------------------------------
    @property
    def events(self) -> list[ObsEvent]:
        return []

    @property
    def counters(self) -> dict[str, int | float]:
        return {}

    @property
    def timers(self) -> dict[str, tuple[float, int]]:
        return {}

    @property
    def open_timers(self) -> dict[str, float]:
        return {}


#: The shared disabled tracer (engines default to this instance).
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional ``tracer=`` argument: None -> NULL_TRACER."""
    return NULL_TRACER if tracer is None else tracer


class Tracer(NullTracer):
    """The recording tracer: appends typed events in emission order."""

    enabled = True

    def __init__(self) -> None:
        self._events: list[ObsEvent] = []
        self._counters: dict[str, int | float] = {}
        #: name -> (accumulated elapsed, stop count)
        self._timers: dict[str, tuple[float, int]] = {}
        self._timer_open: dict[str, float] = {}
        #: live subscribers, each called with every emitted ObsEvent
        self._listeners: list[Any] = []

    # -- events --------------------------------------------------------
    def emit(self, kind: str, time: float, pid: int | None = None, **data: Any) -> None:
        """Record one event (``kind`` must be a known event kind)."""
        event = ObsEvent(kind=kind, time=time, pid=pid, data=data)
        self._events.append(event)
        if self._listeners:
            for listener in self._listeners:
                listener(event)

    def phase_start(
        self, time: float, phase: int, pid: int | None = 0, **data: Any
    ) -> None:
        self.emit(PHASE_START, time, pid, phase=phase, **data)

    def phase_end(
        self,
        time: float,
        phase: int,
        success: bool,
        pid: int | None = 0,
        **data: Any,
    ) -> None:
        self.emit(PHASE_END, time, pid, phase=phase, success=bool(success), **data)

    def fault(
        self, time: float, pid: int | None, detectable: bool = True, **data: Any
    ) -> None:
        self.emit(FAULT, time, pid, detectable=bool(detectable), **data)

    def detect(self, time: float, pid: int | None = 0, **data: Any) -> None:
        self.emit(DETECT, time, pid, **data)

    def recovery(self, time: float, pid: int | None = 0, **data: Any) -> None:
        self.emit(RECOVERY, time, pid, **data)

    def token_pass(
        self, time: float, src: int = 0, dst: int | None = None, **data: Any
    ) -> None:
        if dst is not None:
            data["dst"] = dst
        self.emit(TOKEN_PASS, time, src, **data)

    def msg_send(
        self, time: float, src: int, dst: int, tag: int = 0, **data: Any
    ) -> None:
        self.emit(MSG_SEND, time, src, dst=dst, tag=tag, **data)

    def msg_recv(
        self, time: float, src: int, dst: int, tag: int = 0, **data: Any
    ) -> None:
        self.emit(MSG_RECV, time, dst, src=src, tag=tag, **data)

    def quarantine(
        self,
        time: float,
        pid: int | None,
        reason: str,
        peer: int | None = None,
        **data: Any,
    ) -> None:
        """A frame was rejected by the defensive layer at ``pid``."""
        if peer is not None:
            data["peer"] = peer
        self.emit(QUARANTINE, time, pid, reason=reason, **data)

    # -- counters ------------------------------------------------------
    def incr(self, name: str, amount: int | float = 1) -> None:
        """Add ``amount`` to the monotonic counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    # -- timers --------------------------------------------------------
    def timer_start(self, name: str, time: float) -> None:
        if name in self._timer_open:
            raise ObsError(f"timer {name!r} already running")
        self._timer_open[name] = time

    def timer_stop(self, name: str, time: float) -> float:
        start = self._timer_open.pop(name, None)
        if start is None:
            raise ObsError(f"timer {name!r} was never started")
        if time < start:
            raise ObsError(
                f"timer {name!r} stopped at {time} before its start {start}"
            )
        elapsed = time - start
        total, count = self._timers.get(name, (0.0, 0))
        self._timers[name] = (total + elapsed, count + 1)
        return elapsed

    def timer_cancel(self, name: str) -> bool:
        """Discard a running timer without recording it (e.g. a wave
        superseded by recovery).  Returns whether it was open."""
        return self._timer_open.pop(name, None) is not None

    # -- listeners ------------------------------------------------------
    def subscribe(self, listener: Any) -> None:
        """Call ``listener(event)`` for every event emitted from now on
        (the live wiring for :class:`repro.obs.metrics.MetricsObserver`)."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Any) -> None:
        self._listeners.remove(listener)

    # -- views ---------------------------------------------------------
    @property
    def events(self) -> list[ObsEvent]:
        return self._events

    @property
    def counters(self) -> dict[str, int | float]:
        return self._counters

    @property
    def timers(self) -> dict[str, tuple[float, int]]:
        """``{name: (accumulated elapsed, stop count)}``."""
        return self._timers

    @property
    def open_timers(self) -> dict[str, float]:
        """Timers started but not yet stopped: ``{name: start time}``.

        Anything still here at end of run was silently unaccounted
        before; :meth:`TraceSummary.render` now lists these names."""
        return dict(self._timer_open)

    # -- export --------------------------------------------------------
    def dump_jsonl(self, path: Any) -> int:
        """Write the events to ``path`` in JSONL; returns the line count."""
        from repro.obs.jsonl import write_jsonl

        return write_jsonl(self._events, path)

    @classmethod
    def from_events(cls, events: Iterable[ObsEvent]) -> "Tracer":
        """A tracer pre-loaded with ``events`` (e.g. read back from JSONL)."""
        tracer = cls()
        tracer._events.extend(events)
        return tracer
