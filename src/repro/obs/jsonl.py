"""JSONL (one JSON object per line) trace export and import.

The format is the flat :meth:`ObsEvent.to_dict` form, so traces are
greppable and ``jq``-able::

    {"kind": "phase_start", "t": 0.0, "pid": 0, "phase": 0}
    {"kind": "fault", "t": 0.73, "pid": 3, "detectable": true}
    {"kind": "phase_end", "t": 1.06, "pid": 0, "phase": 0, "success": false}

Round trip is exact for JSON-representable payloads (the only payloads
the engines emit: ints, floats, bools, strings, None).

Non-finite floats (``inf`` recovery latencies from runs that never
converged, ``nan`` placeholders) are *not* JSON-representable; bare
``Infinity``/``NaN`` tokens would make the output unreadable to strict
parsers (``jq``, browsers, other languages).  They are therefore written
as the string sentinels ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"`` and
decoded back to floats on read -- which reserves those three exact
strings; engine payloads never legitimately contain them.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Union

from repro.obs.events import ObsEvent

PathOrFile = Union[str, Path, IO[str]]

#: String sentinels standing in for non-finite floats in the files.
NONFINITE_SENTINELS = {"Infinity": math.inf, "-Infinity": -math.inf, "NaN": math.nan}


def _encode_value(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, str) and value in NONFINITE_SENTINELS:
        return NONFINITE_SENTINELS[value]
    return value


def _opened(path_or_file: PathOrFile, mode: str):
    """(file, needs_close) for a path or an already-open text file."""
    if hasattr(path_or_file, "write") or hasattr(path_or_file, "read"):
        return path_or_file, False
    return open(path_or_file, mode, encoding="utf-8"), True


def write_jsonl(events: Iterable[ObsEvent], path_or_file: PathOrFile) -> int:
    """Write ``events`` one JSON object per line; returns the count."""
    fh, close = _opened(path_or_file, "w")
    try:
        count = 0
        for event in events:
            record = {k: _encode_value(v) for k, v in event.to_dict().items()}
            # allow_nan=False: any non-finite float that slipped past the
            # sentinel encoding is a bug, not a bare Infinity in the file.
            fh.write(json.dumps(record, separators=(",", ":"), allow_nan=False))
            fh.write("\n")
            count += 1
        return count
    finally:
        if close:
            fh.close()


def iter_jsonl(path_or_file: PathOrFile) -> Iterator[ObsEvent]:
    """Lazily yield events from a JSONL trace (blank lines ignored)."""
    fh, close = _opened(path_or_file, "r")
    try:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record: Any = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"bad JSONL at line {lineno}: {exc}") from exc
            yield ObsEvent.from_dict(
                {k: _decode_value(v) for k, v in record.items()}
            )
    finally:
        if close:
            fh.close()


def read_jsonl(path_or_file: PathOrFile) -> list[ObsEvent]:
    """Read a whole JSONL trace into a list."""
    return list(iter_jsonl(path_or_file))
