"""Reduce a trace to the paper's quantities.

:func:`summarize` turns any event sequence -- whichever engine produced
it -- into the numbers the paper reports: instances per successful phase
(Figures 3/5), recovery latency after perturbation (Figure 7), token
circulations and messages per barrier (the Section 6 overhead terms).
Because every engine emits the same schema, the summary is also the
cross-implementation conformance currency: two engines agree on a
quantity iff their summaries do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf, nan
from typing import Iterable

from repro.obs.events import (
    DETECT,
    FAULT,
    MSG_RECV,
    MSG_SEND,
    PHASE_END,
    PHASE_START,
    RECOVERY,
    TOKEN_PASS,
    ObsEvent,
)


@dataclass
class TraceSummary:
    """The paper's quantities, reduced from one trace."""

    events: int = 0
    total_time: float = 0.0
    #: Completed instances (phase attempts with a recorded end).
    instances: int = 0
    successful_phases: int = 0
    faults: int = 0
    detectable_faults: int = 0
    detections: int = 0
    recoveries: int = 0
    token_passes: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    recovery_latencies: list[float] = field(default_factory=list)

    @property
    def failed_instances(self) -> int:
        return self.instances - self.successful_phases

    @property
    def instances_per_phase(self) -> float:
        """Instances per successful phase (1.0 fault-free); ``inf`` when
        no phase ever succeeded -- consistent with
        :attr:`repro.protosim.metrics.PhaseMetrics.instances_per_phase`."""
        if self.successful_phases == 0:
            return inf
        return self.instances / self.successful_phases

    @property
    def messages_per_barrier(self) -> float:
        if self.successful_phases == 0:
            return inf
        return self.messages_sent / self.successful_phases

    @property
    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return nan
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def render(self) -> str:
        """Human-readable report (the ``trace-report`` CLI output)."""
        lines = [
            f"Trace summary: {self.events} events over {self.total_time:g} "
            "virtual time units",
            f"  instances (attempts)  : {self.instances}",
            f"  successful phases     : {self.successful_phases}",
            f"  failed instances      : {self.failed_instances}",
            f"  instances per phase   : {self.instances_per_phase:.6g}",
            f"  faults (detectable)   : {self.faults} ({self.detectable_faults})",
            f"  detections            : {self.detections}",
            f"  recoveries            : {self.recoveries}",
            f"  mean recovery latency : {self.mean_recovery_latency:.6g}",
            f"  token passes          : {self.token_passes}",
            f"  messages sent / recv  : {self.messages_sent} / "
            f"{self.messages_received}",
            f"  messages per barrier  : {self.messages_per_barrier:.6g}",
        ]
        return "\n".join(lines)


def summarize(events: Iterable[ObsEvent]) -> TraceSummary:
    """Reduce ``events`` (any engine, any order-preserving source)."""
    summary = TraceSummary()
    pending_fault: float | None = None
    for event in events:
        summary.events += 1
        if event.time > summary.total_time:
            summary.total_time = event.time
        kind = event.kind
        if kind == PHASE_END:
            summary.instances += 1
            if event.data.get("success"):
                summary.successful_phases += 1
        elif kind == PHASE_START:
            pass  # instances are counted at their end (open ones pending)
        elif kind == FAULT:
            summary.faults += 1
            if event.data.get("detectable", True):
                summary.detectable_faults += 1
            if pending_fault is None:
                pending_fault = event.time
        elif kind == DETECT:
            summary.detections += 1
        elif kind == RECOVERY:
            summary.recoveries += 1
            latency = event.data.get("latency")
            if latency is None and pending_fault is not None:
                latency = event.time - pending_fault
            if latency is not None:
                summary.recovery_latencies.append(float(latency))
            pending_fault = None
        elif kind == TOKEN_PASS:
            summary.token_passes += 1
        elif kind == MSG_SEND:
            summary.messages_sent += 1
        elif kind == MSG_RECV:
            summary.messages_received += 1
    return summary
