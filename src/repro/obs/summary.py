"""Reduce a trace to the paper's quantities.

:func:`summarize` turns any event sequence -- whichever engine produced
it -- into the numbers the paper reports: instances per successful phase
(Figures 3/5), recovery latency after perturbation (Figure 7), token
circulations and messages per barrier (the Section 6 overhead terms).
Because every engine emits the same schema, the summary is also the
cross-implementation conformance currency: two engines agree on a
quantity iff their summaries do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf, nan
from typing import Iterable

from repro.obs.events import (
    DETECT,
    FAULT,
    MSG_RECV,
    MSG_SEND,
    PHASE_END,
    PHASE_START,
    RECOVERY,
    TOKEN_PASS,
    ObsEvent,
)


@dataclass
class TraceSummary:
    """The paper's quantities, reduced from one trace."""

    events: int = 0
    total_time: float = 0.0
    #: Completed instances (phase attempts with a recorded end).
    instances: int = 0
    successful_phases: int = 0
    faults: int = 0
    detectable_faults: int = 0
    detections: int = 0
    recoveries: int = 0
    token_passes: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    recovery_latencies: list[float] = field(default_factory=list)
    #: Names of timers still running when the trace was summarized
    #: (populated when the caller passes ``open_timers=`` -- typically
    #: ``summarize(tracer.events, open_timers=tracer.open_timers)``).
    open_timers: tuple[str, ...] = ()

    @property
    def failed_instances(self) -> int:
        return self.instances - self.successful_phases

    @property
    def instances_per_phase(self) -> float:
        """Instances per successful phase (1.0 fault-free); ``inf`` when
        no phase ever succeeded -- consistent with
        :attr:`repro.protosim.metrics.PhaseMetrics.instances_per_phase`."""
        if self.successful_phases == 0:
            return inf
        return self.instances / self.successful_phases

    @property
    def messages_per_barrier(self) -> float:
        if self.successful_phases == 0:
            return inf
        return self.messages_sent / self.successful_phases

    @property
    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return nan
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def render(self) -> str:
        """Human-readable report (the ``trace-report`` CLI output)."""
        lines = [
            f"Trace summary: {self.events} events over {self.total_time:g} "
            "virtual time units",
            f"  instances (attempts)  : {self.instances}",
            f"  successful phases     : {self.successful_phases}",
            f"  failed instances      : {self.failed_instances}",
            f"  instances per phase   : {self.instances_per_phase:.6g}",
            f"  faults (detectable)   : {self.faults} ({self.detectable_faults})",
            f"  detections            : {self.detections}",
            f"  recoveries            : {self.recoveries}",
            f"  mean recovery latency : {self.mean_recovery_latency:.6g}",
            f"  token passes          : {self.token_passes}",
            f"  messages sent / recv  : {self.messages_sent} / "
            f"{self.messages_received}",
            f"  messages per barrier  : {self.messages_per_barrier:.6g}",
        ]
        if self.open_timers:
            lines.append(
                "  open timers (leaked)  : " + ", ".join(self.open_timers)
            )
        return "\n".join(lines)


class PendingFaults:
    """Per-pid pending-fault bookkeeping for recovery attribution.

    The earlier single-scalar ``pending_fault`` merged *overlapping*
    faults at different pids into one episode, so a recovery targeted at
    one pid consumed (and mis-timed) the other pid's fault.  This keeps
    one FIFO of unrecovered fault times per pid, plus a global arrival
    order for the system-wide fallback:

    - a recovery whose ``pid`` has a pending fault closes the earliest
      fault *at that pid* only;
    - otherwise (pid-less recoveries, or root-observed recoveries with no
      fault of their own) it is system-wide: its latency is measured from
      the globally earliest pending fault and the whole episode clears,
      matching the paper's return-to-start-state semantics.
    """

    def __init__(self) -> None:
        self._seq = 0
        #: pid -> [(arrival seq, fault time)], FIFO per pid
        self._by_pid: dict[int | None, list[tuple[int, float]]] = {}

    def add(self, pid: int | None, time: float) -> None:
        self._by_pid.setdefault(pid, []).append((self._seq, time))
        self._seq += 1

    def __bool__(self) -> bool:
        return any(self._by_pid.values())

    def resolve(self, pid: int | None, time: float) -> float | None:
        """Latency for a recovery at ``pid``/``time`` (None if nothing
        was pending); applies the clearing rules above."""
        queue = self._by_pid.get(pid)
        if pid is not None and queue:
            _, fault_time = queue.pop(0)
            if not queue:
                del self._by_pid[pid]
            return time - fault_time
        earliest = min(
            (q[0] for q in self._by_pid.values() if q), default=None
        )
        self._by_pid.clear()
        if earliest is None:
            return None
        return time - earliest[1]

    def clear(self) -> None:
        self._by_pid.clear()


def summarize(
    events: Iterable[ObsEvent], open_timers: Iterable[str] = ()
) -> TraceSummary:
    """Reduce ``events`` (any engine, any order-preserving source).

    ``open_timers`` (typically ``tracer.open_timers``) names timers that
    were still running; they are carried into the summary so the report
    surfaces leaked measurements instead of silently dropping them.
    """
    summary = TraceSummary(open_timers=tuple(sorted(open_timers)))
    pending = PendingFaults()
    for event in events:
        summary.events += 1
        if event.time > summary.total_time:
            summary.total_time = event.time
        kind = event.kind
        if kind == PHASE_END:
            summary.instances += 1
            if event.data.get("success"):
                summary.successful_phases += 1
        elif kind == PHASE_START:
            pass  # instances are counted at their end (open ones pending)
        elif kind == FAULT:
            summary.faults += 1
            if event.data.get("detectable", True):
                summary.detectable_faults += 1
            pending.add(event.pid, event.time)
        elif kind == DETECT:
            summary.detections += 1
        elif kind == RECOVERY:
            summary.recoveries += 1
            latency = event.data.get("latency")
            if latency is not None:
                # An explicit latency is authoritative; the recovery is
                # the engine's return-to-start-state, closing the episode.
                pending.clear()
            else:
                latency = pending.resolve(event.pid, event.time)
            if latency is not None:
                summary.recovery_latencies.append(float(latency))
        elif kind == TOKEN_PASS:
            summary.token_passes += 1
        elif kind == MSG_SEND:
            summary.messages_sent += 1
        elif kind == MSG_RECV:
            summary.messages_received += 1
    return summary
