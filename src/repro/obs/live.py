"""The live telemetry plane: streaming merge, in-loop monitors, spans.

Post-hoc checking (PR-5) buffers every node's full trace, merges once at
the end, and only then runs the PR-4 guarantee monitors.  This module
does the same work *while the nodes run*, with bounded per-node memory:

* :class:`StreamingMerger` -- a k-way merge with per-stream watermarks.
  Each node's Lamport-stamped events arrive strictly time-increasing
  (every emission ticks the clock), so an event can be released as soon
  as every stream's watermark has passed its time; released events come
  out in exactly :func:`repro.net.trace.merge_traces` order
  (``(time, pid, per-stream index, stream pid)``), proven equal by test.
* :class:`LivePlane` -- wires per-node
  :class:`~repro.obs.recorder.FlightRecorder` rings into one merger and
  fans the merged stream out to the PR-4 :class:`MonitorSet` (fed
  directly, no tracer), the :class:`~repro.obs.spans.SpanFolder`, and a
  :class:`~repro.obs.metrics.MetricsObserver` -- so violations surface
  mid-run with the span that was open when they fired, and ``/metrics``
  can be scraped while barriers are still completing.

The post-hoc path (:func:`repro.net.trace.check_merged`) remains the
oracle: :func:`run_monitors_streaming` replays recorded streams through
this machinery so tests can assert verdict-identical behaviour.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.obs.events import (
    DETECT,
    FAULT,
    PHASE_END,
    PHASE_START,
    RECOVERY,
    ObsEvent,
)
from repro.obs.metrics import MetricsObserver
from repro.obs.recorder import FlightRecorder, digest_of_rows
from repro.obs.spans import SpanFolder


def monitor_filter(event: ObsEvent) -> bool:
    """The :func:`repro.net.trace.monitor_stream` predicate, one event
    at a time: node 0's phase narration plus everyone's
    fault/detect/recovery."""
    if event.kind in (PHASE_START, PHASE_END):
        return event.pid == 0
    return event.kind in (FAULT, DETECT, RECOVERY)


class StreamingMerger:
    """Watermarked k-way merge of per-stream Lamport-ordered events.

    ``push(stream_pid, event)`` buffers the event and advances that
    stream's watermark; anything strictly below the minimum watermark is
    released to ``sink`` in merged order.  Because each stream's times
    are strictly increasing, no later push can sort before a released
    event.  ``mark(stream_pid, time)`` advances a watermark without an
    event (a finished or crashed stream would otherwise gate everyone);
    ``close()`` flushes the remainder.
    """

    def __init__(
        self, pids: Iterable[int], sink: Callable[[ObsEvent], None]
    ) -> None:
        pid_list = list(pids)
        if not pid_list:
            raise ValueError("streaming merger needs at least one stream")
        self.sink = sink
        self._watermarks: dict[int, float] = {p: float("-inf") for p in pid_list}
        self._idx: dict[int, int] = {p: 0 for p in pid_list}
        # Heap entries are (time, event-pid key, per-stream idx, stream
        # pid, event) -- the first four fields are merge_traces' total
        # order (stream pid last: its stable sort visits streams in
        # ascending pid), and (stream pid, idx) is unique so comparison
        # never reaches the event.
        self._heap: list[tuple[float, int, int, int, ObsEvent]] = []
        self.released = 0
        self.closed = False

    @property
    def watermark(self) -> float:
        return min(self._watermarks.values())

    @property
    def pending(self) -> int:
        return len(self._heap)

    def push(self, stream_pid: int, event: ObsEvent) -> None:
        if self.closed:
            raise RuntimeError("merger is closed")
        idx = self._idx[stream_pid]
        self._idx[stream_pid] = idx + 1
        pid_key = -1 if event.pid is None else event.pid
        heapq.heappush(self._heap, (event.time, pid_key, idx, stream_pid, event))
        if event.time > self._watermarks[stream_pid]:
            self._watermarks[stream_pid] = event.time
        self._drain()

    def mark(self, stream_pid: int, time: float) -> None:
        """Promise that ``stream_pid`` will never emit at or below
        ``time`` again (stream finished: use ``float('inf')``)."""
        if time > self._watermarks[stream_pid]:
            self._watermarks[stream_pid] = time
            self._drain()

    def _drain(self) -> None:
        wm = self.watermark
        while self._heap and self._heap[0][0] < wm:
            self._release()

    def _release(self) -> None:
        event = heapq.heappop(self._heap)[4]
        self.released += 1
        self.sink(event)

    def close(self) -> None:
        """End of all streams: flush everything still buffered."""
        self.closed = True
        while self._heap:
            self._release()


class LivePlane:
    """Flight recorders + streaming merge + in-loop monitors + spans.

    One per run.  ``tracer_for(pid)`` hands each node its bounded
    recorder; every emitted event flows (via the recorder's listener
    fan-out, so ring overflow never loses it) into the merger, and the
    merged order feeds:

    * the guarantee monitors (filtered by :func:`monitor_filter`,
      exactly the post-hoc ``monitor_stream``), collecting
      :attr:`live_violations` as ``(violation, span context)`` pairs the
      moment they fire;
    * the span folder (phase narration from node 0, everything else
      from everyone);
    * a metrics observer over the full merged stream (optional).

    ``finish(reached)`` closes the merger, lets monitors and folder
    report end-of-stream obligations, and finalizes metrics.  The
    digest is accumulated per-recorder (O(rounds) projection rows), so
    it matches :func:`repro.net.trace.trace_digest` over the *full*
    streams even when the rings have overflowed.
    """

    def __init__(
        self,
        nodes: int,
        plan: Any = None,
        nphases: int | None = None,
        ring_capacity: int = 4096,
        recent_spans: int = 256,
        metrics: bool = True,
        keep_merged: bool = True,
        span_sink: Callable[..., None] | None = None,
        violation_sink: Callable[..., None] | None = None,
    ) -> None:
        from repro.chaos.adapters import monitors_for
        from repro.chaos.monitors import MonitorSet
        from repro.chaos.plan import FaultPlan

        check_plan = plan if plan is not None else FaultPlan(nprocs=nodes)
        self.nodes = nodes
        self.recorders: dict[int, FlightRecorder] = {
            pid: FlightRecorder(capacity=ring_capacity, pid=pid)
            for pid in range(nodes)
        }
        self.merger = StreamingMerger(range(nodes), self._on_merged)
        self.monitor_set = MonitorSet(
            None, monitors_for(check_plan, nphases, strict=nphases is None)
        )
        self.folder = SpanFolder(recent=recent_spans, sink=span_sink)
        self.observer: MetricsObserver | None = (
            MetricsObserver() if metrics else None
        )
        self.violation_sink = violation_sink
        self.merged: list[ObsEvent] | None = [] if keep_merged else None
        #: ``(violation, span-context dict | None)`` in firing order.
        self.live_violations: list[tuple[Any, dict[str, Any] | None]] = []
        self._per_monitor_seen = [0] * len(self.monitor_set.monitors)
        self._last_monitor_time = 0.0
        self._last_time = 0.0
        self.finished = False
        for pid, recorder in self.recorders.items():
            recorder.subscribe(self._listener(pid))

    # -- node-facing API -----------------------------------------------
    def tracer_for(self, pid: int) -> FlightRecorder:
        return self.recorders[pid]

    def _listener(self, stream_pid: int) -> Callable[[ObsEvent], None]:
        def listen(event: ObsEvent) -> None:
            self.merger.push(stream_pid, event)

        return listen

    def mark_done(self, pid: int) -> None:
        """A node's stream ended; stop letting it gate the watermark."""
        self.merger.mark(pid, float("inf"))

    # -- merged-stream fan-out -----------------------------------------
    def _on_merged(self, event: ObsEvent) -> None:
        self._last_time = event.time
        if self.merged is not None:
            self.merged.append(event)
        if self.observer is not None:
            self.observer(event)
        # Span folding wants the narrated phases plus everyone's
        # activity; monitors want exactly the monitor stream.
        if event.kind in (PHASE_START, PHASE_END):
            if event.pid == 0:
                self.folder.feed(event)
                self._feed_monitors(event)
        else:
            self.folder.feed(event)
            if event.kind in (FAULT, DETECT, RECOVERY):
                self._feed_monitors(event)

    def _feed_monitors(self, event: ObsEvent) -> None:
        self._last_monitor_time = event.time
        self.monitor_set.feed(event)
        for i, monitor in enumerate(self.monitor_set.monitors):
            fresh = len(monitor.violations) - self._per_monitor_seen[i]
            if fresh <= 0:
                continue
            self._per_monitor_seen[i] = len(monitor.violations)
            context = self.folder.context()
            for violation in monitor.violations[-fresh:]:
                self.live_violations.append((violation, context))
                if self.violation_sink is not None:
                    self.violation_sink(violation, context)

    # -- end of run ----------------------------------------------------
    def finish(self, reached: bool) -> None:
        """Close the merger and settle end-of-stream obligations.
        Idempotent; mirrors ``check_merged``'s finalization exactly."""
        if self.finished:
            return
        self.finished = True
        self.merger.close()
        self.monitor_set.finish(reached, self._last_monitor_time)
        for i, monitor in enumerate(self.monitor_set.monitors):
            fresh = len(monitor.violations) - self._per_monitor_seen[i]
            if fresh > 0:
                self._per_monitor_seen[i] = len(monitor.violations)
                for violation in monitor.violations[-fresh:]:
                    self.live_violations.append((violation, None))
                    if self.violation_sink is not None:
                        self.violation_sink(violation, None)
        self.folder.finish(self._last_time)
        if self.observer is not None:
            self.observer.finalize()

    # -- results -------------------------------------------------------
    @property
    def violations(self) -> list[Any]:
        return self.monitor_set.violations

    @property
    def spans(self) -> list[float]:
        out: list[float] = []
        for monitor in self.monitor_set.monitors:
            out.extend(getattr(monitor, "spans", ()))
        return out

    def digest(self) -> str:
        return digest_of_rows({p: r.rows for p, r in self.recorders.items()})

    def ring_stats(self) -> dict[int, dict[str, int]]:
        return {
            pid: {
                "appended": rec.appended,
                "dropped": rec.dropped,
                "retained": len(rec.events),
                "capacity": rec.capacity,
            }
            for pid, rec in sorted(self.recorders.items())
        }

    def health(self) -> dict[str, Any]:
        wm = self.merger.watermark
        return {
            "status": "finished" if self.finished else "running",
            "nodes": self.nodes,
            "watermark": None if wm == float("-inf") else wm,
            "merged_released": self.merger.released,
            "merge_pending": self.merger.pending,
            "violations": sum(
                len(m.violations) for m in self.monitor_set.monitors
            ),
            "spans_finished": dict(self.folder.finished),
            "rings": {str(p): s for p, s in self.ring_stats().items()},
        }

    def metrics_text(self) -> str:
        """Prometheus 0.0.4 exposition of the run so far: the observer's
        barrier metrics plus the plane's own gauges."""
        from repro.obs.metrics import MetricsRegistry

        registry = (
            self.observer.registry if self.observer is not None
            else MetricsRegistry()
        )
        appended = registry.gauge(
            "plane_recorder_appended", "events ever emitted per node", ("pid",)
        )
        dropped = registry.gauge(
            "plane_recorder_dropped", "ring-evicted events per node", ("pid",)
        )
        for pid, stats in self.ring_stats().items():
            appended.set(stats["appended"], pid=pid)
            dropped.set(stats["dropped"], pid=pid)
        released = registry.gauge(
            "plane_merged_released", "events released by the streaming merger"
        )
        released.set(self.merger.released)
        violations = registry.gauge(
            "plane_violations", "guarantee violations observed so far"
        )
        violations.set(
            sum(len(m.violations) for m in self.monitor_set.monitors)
        )
        spans_done = registry.gauge(
            "plane_spans_finished", "finished spans by kind", ("kind",)
        )
        for kind, count in self.folder.finished.items():
            spans_done.set(count, kind=kind)
        return registry.render_prometheus()


# ---------------------------------------------------------------------------
# Offline replays of the streaming path (the equivalence oracle's twin)
# ---------------------------------------------------------------------------


def run_monitors_streaming(
    streams: Mapping[int, Sequence[ObsEvent]],
    plan: Any,
    nphases: int | None,
    reached: bool,
) -> tuple[list[Any], list[float]]:
    """Feed recorded per-node streams through the *streaming* machinery
    (watermarked merge, directly-fed monitors) and return
    ``(violations, spans)`` -- the quantities
    :func:`repro.net.trace.check_merged` computes post-hoc.  Streams are
    pushed round-robin to exercise out-of-order buffering.
    """
    from repro.chaos.adapters import monitors_for
    from repro.chaos.monitors import MonitorSet

    monitor_set = MonitorSet(
        None, monitors_for(plan, nphases, strict=nphases is None)
    )
    last_time = 0.0

    def sink(event: ObsEvent) -> None:
        nonlocal last_time
        if monitor_filter(event):
            last_time = event.time
            monitor_set.feed(event)

    merger = StreamingMerger(sorted(streams), sink)
    depth = max((len(s) for s in streams.values()), default=0)
    for i in range(depth):
        for pid in sorted(streams):
            stream = streams[pid]
            if i < len(stream):
                merger.push(pid, stream[i])
    merger.close()
    monitor_set.finish(reached, last_time)
    spans: list[float] = []
    for monitor in monitor_set.monitors:
        spans.extend(getattr(monitor, "spans", ()))
    return monitor_set.violations, spans
