"""Unified structured tracing & metrics (the observability layer).

Every execution engine -- the discrete-event kernel and network
(:mod:`repro.des`), the simulated MPI runtime (:mod:`repro.simmpi`), the
timed protocol simulations (:mod:`repro.protosim`) and the untimed
guarded-command simulator (:mod:`repro.gc`) -- accepts an optional
``tracer=`` and emits the same typed event schema, so one summarizer
(:func:`summarize`) reduces any run to the paper's quantities and the
conformance suite can compare implementations event-for-event.

Quick start::

    from repro.obs import Tracer, summarize
    from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig

    tracer = Tracer()
    sim = FTTreeBarrierSim(nprocs=32, config=SimConfig(fault_frequency=0.05),
                           tracer=tracer)
    sim.run(phases=100)
    tracer.dump_jsonl("trace.jsonl")
    print(summarize(tracer.events).render())
"""

from repro.obs.events import (
    DETECT,
    EVENT_KINDS,
    FAULT,
    MSG_RECV,
    MSG_SEND,
    PHASE_END,
    PHASE_START,
    RECOVERY,
    TOKEN_PASS,
    ObsEvent,
)
from repro.obs.causal import (
    CausalReport,
    FaultChain,
    build_chains,
    causal_report,
)
from repro.obs.jsonl import iter_jsonl, read_jsonl, write_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsObserver,
    MetricsRegistry,
    PromSample,
    metrics_from_trace,
    parse_exposition,
    parse_prometheus_text,
    render_exposition,
)
from repro.obs.summary import TraceSummary, summarize
from repro.obs.tracer import NULL_TRACER, NullTracer, ObsError, Tracer, ensure_tracer


#: Lazily exported names -> defining submodule.  The observer imports
#: repro.barrier (for CP) and the live plane imports repro.chaos -- both
#: of which import repro.obs.tracer, so eager imports here would cycle.
_LAZY = {
    "BarrierPhaseObserver": "repro.obs.observer",
    "FlightRecorder": "repro.obs.recorder",
    "PROTOCOL_KINDS": "repro.obs.recorder",
    "SNAPSHOT_KIND": "repro.obs.recorder",
    "projection_row": "repro.obs.recorder",
    "digest_of_rows": "repro.obs.recorder",
    "read_snapshot": "repro.obs.recorder",
    "Span": "repro.obs.spans",
    "SpanFolder": "repro.obs.spans",
    "StreamingMerger": "repro.obs.live",
    "LivePlane": "repro.obs.live",
    "monitor_filter": "repro.obs.live",
    "run_monitors_streaming": "repro.obs.live",
    "ObsHttpServer": "repro.obs.http",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "ObsEvent",
    "EVENT_KINDS",
    "PHASE_START",
    "PHASE_END",
    "FAULT",
    "DETECT",
    "RECOVERY",
    "TOKEN_PASS",
    "MSG_SEND",
    "MSG_RECV",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ObsError",
    "ensure_tracer",
    "BarrierPhaseObserver",
    "TraceSummary",
    "summarize",
    "write_jsonl",
    "read_jsonl",
    "iter_jsonl",
    "MetricsRegistry",
    "MetricsObserver",
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "metrics_from_trace",
    "parse_prometheus_text",
    "parse_exposition",
    "render_exposition",
    "PromSample",
    "FaultChain",
    "CausalReport",
    "build_chains",
    "causal_report",
    # live telemetry plane (lazy)
    "FlightRecorder",
    "PROTOCOL_KINDS",
    "SNAPSHOT_KIND",
    "projection_row",
    "digest_of_rows",
    "read_snapshot",
    "Span",
    "SpanFolder",
    "StreamingMerger",
    "LivePlane",
    "monitor_filter",
    "run_monitors_streaming",
    "ObsHttpServer",
]
