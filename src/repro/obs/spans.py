"""Hierarchical spans folded incrementally from the flat event stream.

The tracer schema is deliberately flat -- eight event kinds, one record
each -- which is perfect for digests and conformance but hostile to a
human watching a live run.  :class:`SpanFolder` rebuilds the hierarchy
*online*, event by event, with bounded state:

* a **barrier span** per narrated round (``phase_start`` ..
  ``phase_end``), status ``ok`` / ``failed``;
* a **participation span** per (round, pid) covering that node's
  message activity inside the round, parented under the barrier span;
* a **fault chain span** per injected fault -- fault -> detect ->
  recovery -> first clean successful phase -- using exactly the PR-2
  causal attribution rules (:mod:`repro.obs.causal`): recoveries match
  per-pid FIFO, pid-less recoveries are system-wide and close every
  open chain, detects attribute in global order.  The span closes at
  the first clean phase end, so its duration is the chain's
  ``total_latency`` and its ``recovery_latency`` attr is the Figure 7
  quantity, measured as the chain closes rather than post-hoc.

Finished spans go to a bounded ``recent`` ring (the ``/spans/recent``
endpoint body) and to an optional ``sink`` callback (the ``obs tail``
feed); ``keep_all=True`` additionally retains every finished span for
offline analysis.  Only *open* spans are held otherwise, so the folder
is safe to run for arbitrarily long streams.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.obs.events import (
    DETECT,
    FAULT,
    MSG_RECV,
    MSG_SEND,
    PHASE_END,
    PHASE_START,
    TOKEN_PASS,
    RECOVERY,
    ObsEvent,
)

BARRIER = "barrier"
PARTICIPATION = "participation"
FAULT_CHAIN = "fault-chain"


@dataclass
class Span:
    """One folded span (times are the stream's virtual/Lamport time)."""

    span_id: int
    kind: str  # BARRIER | PARTICIPATION | FAULT_CHAIN
    name: str
    start: float
    pid: int | None = None
    parent_id: int | None = None
    end: float | None = None
    status: str = "open"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "pid": self.pid,
            "parent_id": self.parent_id,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def render(self) -> str:
        dur = "" if self.duration is None else f" dur={self.duration:g}"
        pid = "" if self.pid is None else f" pid={self.pid}"
        return f"[{self.start:>10g}] {self.kind:<13} {self.name:<14} {self.status}{pid}{dur}"


class SpanFolder:
    """Fold a (merged) event stream into spans, one event at a time."""

    def __init__(
        self,
        recent: int = 256,
        sink: Callable[[Span], None] | None = None,
        keep_all: bool = False,
        participation: bool = True,
    ) -> None:
        self.recent: deque[Span] = deque(maxlen=recent)
        self.sink = sink
        self.completed: list[Span] | None = [] if keep_all else None
        self.participation = participation
        self._next_id = 1
        #: Counters by span kind, finished spans only.
        self.finished: dict[str, int] = {BARRIER: 0, PARTICIPATION: 0, FAULT_CHAIN: 0}
        self.started: dict[str, int] = dict(self.finished)
        # -- open state ------------------------------------------------
        self._open_round: Span | None = None
        #: pid -> (first time, last time, event count) inside the round.
        self._round_activity: dict[int, tuple[float, float, int]] = {}
        #: pid -> FIFO of open fault-chain spans awaiting recovery.
        self._open_faults: dict[int | None, list[Span]] = {}
        #: Chains recovered but awaiting their first clean phase end.
        self._awaiting_clean: list[Span] = []

    # -- plumbing ------------------------------------------------------
    def _open(self, kind: str, name: str, start: float, **kw: Any) -> Span:
        span = Span(span_id=self._next_id, kind=kind, name=name, start=start, **kw)
        self._next_id += 1
        self.started[kind] = self.started.get(kind, 0) + 1
        return span

    def _finish(self, span: Span, end: float, status: str) -> None:
        span.end = end
        span.status = status
        self.finished[span.kind] = self.finished.get(span.kind, 0) + 1
        self.recent.append(span)
        if self.completed is not None:
            self.completed.append(span)
        if self.sink is not None:
            self.sink(span)

    @property
    def open_spans(self) -> list[Span]:
        out: list[Span] = []
        if self._open_round is not None:
            out.append(self._open_round)
        for queue in self._open_faults.values():
            out.extend(queue)
        out.extend(self._awaiting_clean)
        return out

    def recent_dicts(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self.recent]

    def context(self) -> dict[str, Any] | None:
        """The most relevant span right now: the open barrier round if
        any, else the most recently finished span -- what a violation
        surfaced at this moment should be attached to."""
        if self._open_round is not None:
            return self._open_round.to_dict()
        if self.recent:
            return self.recent[-1].to_dict()
        return None

    # -- folding -------------------------------------------------------
    def feed(self, event: ObsEvent) -> None:
        kind = event.kind
        if kind == PHASE_START:
            if self._open_round is not None:
                # An instance started over a still-open one (the masking
                # monitor flags this); close what we had so the feed
                # stays consistent.
                self._close_round(event.time, "interrupted", None)
            phase = event.data.get("phase")
            self._open_round = self._open(
                BARRIER, f"round-{phase}", event.time, pid=event.pid,
                attrs={"phase": phase},
            )
            self._round_activity = {}
        elif kind == PHASE_END:
            success = bool(event.data.get("success"))
            self._close_round(event.time, "ok" if success else "failed", event)
            if success and self._awaiting_clean:
                for span in self._awaiting_clean:
                    span.attrs["clean_phase_time"] = event.time
                    span.attrs["total_latency"] = event.time - span.start
                    self._finish(span, event.time, "recovered")
                self._awaiting_clean = []
        elif kind == FAULT:
            parent = self._open_round.span_id if self._open_round else None
            span = self._open(
                FAULT_CHAIN,
                f"fault@{event.time:g}",
                event.time,
                pid=event.pid,
                parent_id=parent,
                attrs={
                    "detectable": bool(event.data.get("detectable", True)),
                    "fault_time": event.time,
                },
            )
            self._open_faults.setdefault(event.pid, []).append(span)
        elif kind == DETECT:
            # Global-order attribution: earliest open, not-yet-detected
            # chain (detection is observed at the root, not the victim).
            for span in sorted(
                (s for q in self._open_faults.values() for s in q),
                key=lambda s: s.span_id,
            ):
                if "detect_time" not in span.attrs:
                    span.attrs["detect_time"] = event.time
                    span.attrs["detection_latency"] = event.time - span.start
                    break
        elif kind == RECOVERY:
            queue = self._open_faults.get(event.pid)
            if event.pid is not None and queue:
                span = queue.pop(0)
                if not queue:
                    del self._open_faults[event.pid]
                self._recover(span, event, system_wide=False)
            else:
                explicit = event.data.get("latency")
                opened = sorted(
                    (s for q in self._open_faults.values() for s in q),
                    key=lambda s: s.span_id,
                )
                self._open_faults.clear()
                for j, span in enumerate(opened):
                    self._recover(span, event, system_wide=True)
                    if explicit is not None and j == 0:
                        span.attrs["recovery_latency"] = float(explicit)
        elif self.participation and kind in (MSG_SEND, MSG_RECV, TOKEN_PASS):
            if self._open_round is not None and event.pid is not None:
                first, _, count = self._round_activity.get(
                    event.pid, (event.time, event.time, 0)
                )
                self._round_activity[event.pid] = (first, event.time, count + 1)

    def _recover(self, span: Span, event: ObsEvent, system_wide: bool) -> None:
        span.attrs["recovery_time"] = event.time
        span.attrs["system_wide_recovery"] = system_wide
        explicit = event.data.get("latency")
        if explicit is not None and not system_wide:
            span.attrs["recovery_latency"] = float(explicit)
        else:
            span.attrs.setdefault("recovery_latency", event.time - span.start)
        self._awaiting_clean.append(span)

    def _close_round(
        self, time: float, status: str, event: ObsEvent | None
    ) -> None:
        round_span = self._open_round
        if round_span is None:
            return
        self._open_round = None
        for pid in sorted(self._round_activity):
            first, last, count = self._round_activity[pid]
            part = self._open(
                PARTICIPATION,
                f"{round_span.name}/p{pid}",
                first,
                pid=pid,
                parent_id=round_span.span_id,
                attrs={"events": count},
            )
            self._finish(part, last, "ok")
        self._round_activity = {}
        if event is not None:
            round_span.attrs["success"] = bool(event.data.get("success"))
        self._finish(round_span, time, status)

    def feed_all(self, events: Iterable[ObsEvent]) -> "SpanFolder":
        for event in events:
            self.feed(event)
        return self

    def finish(self, time: float) -> None:
        """End of stream: close whatever is still open, honestly."""
        if self._open_round is not None:
            self._close_round(time, "unfinished", None)
        for span in sorted(
            (s for q in self._open_faults.values() for s in q),
            key=lambda s: s.span_id,
        ):
            self._finish(span, time, "unrecovered")
        self._open_faults.clear()
        for span in self._awaiting_clean:
            self._finish(span, time, "recovered-no-clean-phase")
        self._awaiting_clean = []
