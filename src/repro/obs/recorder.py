"""Per-node flight recorders: bounded trace memory with accounting.

A :class:`FlightRecorder` is a drop-in :class:`~repro.obs.tracer.Tracer`
whose event store is a ring buffer: the last ``capacity`` events are
kept, older ones are dropped, and the drops are *accounted* (``appended``
/ ``dropped`` counters) so telemetry loss is observable instead of
silent.  Live consumers -- the streaming monitors, span folder and
metrics observer of :mod:`repro.obs.live` -- subscribe with the normal
:meth:`~repro.obs.tracer.Tracer.subscribe` API and therefore see *every*
event at emission time; only the retrospective view is bounded.  That is
what lets a 1000-node ``repro.net`` run trace forever without telemetry
becoming the memory bound.

Because the ring forgets, the recorder separately accumulates the
*digest projection* of its protocol events (phase/fault/detect/recovery
rows -- a few machine words each, O(rounds) not O(messages)), so the
timestamp-free replay digest of :func:`repro.net.trace.trace_digest` is
byte-identical with the flight recorder enabled.

``snapshot()``/``dump_snapshot()`` emit a self-describing JSONL segment:
a header object carrying the ring accounting followed by the surviving
events, read back with :func:`read_snapshot`.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.events import (
    DETECT,
    FAULT,
    PHASE_END,
    PHASE_START,
    RECOVERY,
    ObsEvent,
)
from repro.obs.tracer import Tracer

#: Event kinds that enter the digest projection and the monitor stream
#: (the canonical definition; :mod:`repro.net.trace` re-exports it).
PROTOCOL_KINDS = frozenset({PHASE_START, PHASE_END, FAULT, DETECT, RECOVERY})

#: Header marker of a snapshot segment's first line.
SNAPSHOT_KIND = "flight-recorder-snapshot"


def projection_row(event: ObsEvent, stream_pid: int) -> list:
    """One digest-projection row: the timestamp-free, deterministic view
    of a protocol event as seen from the stream of node ``stream_pid``.

    Must stay bit-compatible with what
    :func:`repro.net.trace.digest_projection` builds from a full trace.
    """
    return [
        event.kind,
        stream_pid,
        event.data.get("phase"),
        event.data.get("success"),
        event.data.get("detectable"),
        event.data.get("peer"),
    ]


def digest_of_rows(rows_by_pid: Mapping[int, Sequence[list]]) -> str:
    """SHA-256 over per-node projection rows, pids in sorted order --
    identical to hashing the full-trace projection."""
    proj = [row for pid in sorted(rows_by_pid) for row in rows_by_pid[pid]]
    body = json.dumps(proj, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(body).hexdigest()


class FlightRecorder(Tracer):
    """A tracer whose retained history is a bounded ring.

    ``pid`` names the node this recorder belongs to; when given, the
    digest projection of every protocol event is accumulated in
    :attr:`rows` (survives ring overflow).  ``protocol_log=True``
    additionally retains the *full* protocol events (timestamps and
    payloads included) in :attr:`protocol_events` -- still O(rounds),
    and exactly what a sharded worker ships back so the coordinator can
    Lamport-merge and monitor streams whose message-level history was
    ring-truncated.  Counters and timers behave exactly like the base
    tracer (they are already O(names), not O(events)).
    """

    def __init__(
        self,
        capacity: int = 4096,
        pid: int | None = None,
        protocol_log: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self.pid = pid
        self._ring: deque[ObsEvent] = deque()
        #: Total events ever emitted through this recorder.
        self.appended = 0
        #: Events evicted from the ring (``appended - len(ring)``).
        self.dropped = 0
        #: Digest-projection rows of the protocol events (kept forever).
        self.rows: list[list] = []
        #: Full protocol events (kept forever) when ``protocol_log``.
        self.protocol_log = protocol_log
        self.protocol_events: list[ObsEvent] = []

    # -- recording -----------------------------------------------------
    def emit(self, kind: str, time: float, pid: int | None = None, **data: Any) -> None:
        event = ObsEvent(kind=kind, time=time, pid=pid, data=data)
        self.appended += 1
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self.dropped += 1
        self._ring.append(event)
        if kind in PROTOCOL_KINDS:
            if self.pid is not None:
                self.rows.append(projection_row(event, self.pid))
            if self.protocol_log:
                self.protocol_events.append(event)
        if self._listeners:
            for listener in self._listeners:
                listener(event)

    # -- views ---------------------------------------------------------
    @property
    def events(self) -> list[ObsEvent]:
        """The surviving window (oldest first)."""
        return list(self._ring)

    # -- snapshot ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The self-describing header of a snapshot segment."""
        return {
            "kind": SNAPSHOT_KIND,
            "version": 1,
            "pid": self.pid,
            "capacity": self.capacity,
            "appended": self.appended,
            "dropped": self.dropped,
            "retained": len(self._ring),
            #: Absolute index (in emission order) of the first retained
            #: event -- a reader can tell exactly which prefix is gone.
            "first_index": self.dropped,
        }

    def dump_snapshot(self, path_or_file: Any) -> int:
        """Write header + surviving events as one JSONL segment; returns
        the retained-event count."""
        from repro.obs.jsonl import write_jsonl

        header = json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))
        if hasattr(path_or_file, "write"):
            path_or_file.write(header + "\n")
            return write_jsonl(self._ring, path_or_file)
        path = Path(path_or_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(header + "\n")
            return write_jsonl(self._ring, fh)

    def dump_jsonl(self, path: Any) -> int:
        """Events-only JSONL of the surviving window (base-tracer API)."""
        from repro.obs.jsonl import write_jsonl

        return write_jsonl(self._ring, path)


def read_snapshot(path_or_file: Any) -> tuple[dict[str, Any], list[ObsEvent]]:
    """Read back a :meth:`FlightRecorder.dump_snapshot` segment."""
    if hasattr(path_or_file, "read"):
        lines: Iterable[str] = path_or_file.read().splitlines()
    else:
        lines = Path(path_or_file).read_text(encoding="utf-8").splitlines()
    it = iter(lines)
    try:
        header = json.loads(next(it))
    except StopIteration:
        raise ValueError("empty snapshot file") from None
    if header.get("kind") != SNAPSHOT_KIND:
        raise ValueError(
            f"not a flight-recorder snapshot (header kind {header.get('kind')!r})"
        )
    import io

    from repro.obs.jsonl import read_jsonl

    events = read_jsonl(io.StringIO("\n".join(it)))
    return header, events
