"""A tiny in-loop HTTP server exposing the live telemetry plane.

Runs inside the same asyncio loop as the nodes (no thread, no extra
dependency): :class:`ObsHttpServer` serves

* ``GET /metrics`` -- Prometheus 0.0.4 text exposition of the run so
  far (the PR-2 registry populated live plus the plane's own gauges);
* ``GET /health``  -- one JSON object: run status, merge watermark,
  ring accounting, violation count;
* ``GET /spans/recent`` -- the span folder's recent ring, open spans,
  and the violations observed so far (without their bulky trace
  prefixes) as JSON.

Security: the default bind is ``127.0.0.1`` -- the endpoint exposes run
internals and has no auth, so it must not listen on public interfaces;
anything beyond localhost scraping should sit behind a real reverse
proxy.  The server only ever *reads* plane state, so a slow or hostile
scraper cannot perturb the protocol (beyond sharing the loop).
"""

from __future__ import annotations

import asyncio
import errno
import json
from typing import Any, Callable

from repro.errors import ObsPortInUseError

_MAX_REQUEST = 16 * 1024  # request line + headers; we never read bodies

#: An extra route handler: () -> (status, content-type, body).
RouteFn = Callable[[], tuple[int, str, str]]


class ObsHttpServer:
    """Serve a telemetry *provider* over HTTP/1.0.

    The provider is duck-typed: anything with ``metrics_text()`` and
    ``health()`` works (:class:`~repro.obs.live.LivePlane`, the serve
    daemon...).  Providers that also expose ``folder`` and
    ``live_violations`` get the ``/spans/recent`` route; ``routes``
    adds caller-defined endpoints (e.g. the daemon's ``/groups``).
    """

    def __init__(
        self,
        plane: Any,
        port: int = 0,
        host: str = "127.0.0.1",
        routes: dict[str, RouteFn] | None = None,
    ) -> None:
        self.plane = plane
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port
        self.routes = dict(routes or {})
        self._server: asyncio.AbstractServer | None = None
        self.requests = 0

    async def start(self) -> "ObsHttpServer":
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
        except OSError as exc:
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                raise ObsPortInUseError(self.host, self.port) from exc
            raise
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            writer.close()
            return
        if len(raw) > _MAX_REQUEST:
            await self._respond(writer, 431, "text/plain", "request too large\n")
            return
        request_line = raw.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        if len(parts) != 3 or parts[0] not in ("GET", "HEAD"):
            await self._respond(writer, 405, "text/plain", "GET only\n")
            return
        path = parts[1].split("?", 1)[0]
        self.requests += 1
        try:
            status, ctype, body = self._route(path)
        except Exception as exc:  # surface, never kill the loop
            status, ctype, body = 500, "text/plain", f"error: {exc}\n"
        await self._respond(
            writer, status, ctype, body, head_only=parts[0] == "HEAD"
        )

    def _route(self, path: str) -> tuple[int, str, str]:
        plane = self.plane
        extra = self.routes.get(path)
        if extra is not None:
            return extra()
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                plane.metrics_text(),
            )
        if path == "/health":
            return 200, "application/json", _dumps(plane.health())
        if path in ("/spans/recent", "/spans") and hasattr(plane, "folder"):
            payload = {
                "recent": plane.folder.recent_dicts(),
                "open": [s.to_dict() for s in plane.folder.open_spans],
                "violations": [
                    _violation_summary(v, ctx)
                    for v, ctx in plane.live_violations
                ],
            }
            return 200, "application/json", _dumps(payload)
        if path == "/":
            known = ["/metrics", "/health"]
            if hasattr(plane, "folder"):
                known.append("/spans/recent")
            known.extend(sorted(self.routes))
            return (
                200,
                "text/plain",
                "repro live telemetry: " + " ".join(known) + "\n",
            )
        return 404, "text/plain", f"no route {path}\n"

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        ctype: str,
        body: str,
        head_only: bool = False,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head if head_only else head + payload)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            writer.close()


def _violation_summary(violation: Any, context: Any) -> dict[str, Any]:
    """A violation without its trace prefix (bulky) but with the span
    that was open when it fired."""
    return {
        "guarantee": violation.guarantee,
        "kind": violation.kind,
        "message": violation.message,
        "time": violation.time,
        "data": dict(violation.data),
        "span": context,
    }


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, default=str) + "\n"
