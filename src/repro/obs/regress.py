"""Perf-regression harness for the observability layer.

Runs three seeded workloads -- the guarded-command kernel, the Figure 5
timed tree-barrier sweep point, and the Figure 7 perturb-and-recover
experiment -- and writes ``BENCH_obs.json``: wall-clock medians plus the
runs' *deterministic* trace quantities and histogram quantiles (virtual
time, hence machine-independent).  :func:`compare` gates a fresh report
against the committed baseline (``benchmarks/BASELINE_obs.json``) with a
configurable tolerance.

Gating philosophy: wall-clock numbers are recorded for trajectory but
never compared against the committed baseline (a different machine would
make that meaningless).  The gates are

- every deterministic quantity (event counts, instances per phase,
  recovery-latency distribution quantiles) within ``rel_tol`` of the
  baseline -- a semantic regression in any engine or in the reduction
  pipeline trips this;
- the **NullTracer overhead gate**: with tracing off, engines must make
  (almost) *zero* calls into the tracer -- every recording call is
  guarded by ``if tracer.enabled:``.  A counting NullTracer measures
  unguarded calls per kernel step; the budget is ``calls_per_step <=
  baseline + 0.05`` (the <5% hot-path budget).  Dropping a guard or
  making NullTracer methods do work trips this deterministically;
- optionally (``wall_ratio_limit``) the self-relative sanity check that
  a run with tracing *off* is not slower than the same run recording --
  compared within one process, so it is machine-independent too.

CLI: ``python -m repro.obs.regress [--quick] [--out BENCH_obs.json]``
(also reachable as ``python benchmarks/bench_overhead.py``).
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.obs.causal import _quantile
from repro.obs.metrics import metrics_from_trace
from repro.obs.summary import summarize
from repro.obs.tracer import NullTracer, Tracer

#: Default artifact locations (repo root / benchmarks).
BENCH_PATH = Path("BENCH_obs.json")
BASELINE_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "BASELINE_obs.json"

#: The NullTracer budget: unguarded tracer calls per kernel step.
NULL_CALLS_PER_STEP_TOL = 0.05


class CountingNullTracer(NullTracer):
    """A disabled tracer that counts how often it is *called* anyway.

    Engines promise to guard every recording call with ``if
    tracer.enabled:``; any call that reaches these methods is an
    unguarded hot-path hit, which is exactly the overhead the <5% budget
    bounds.  ``enabled`` stays False so guarded paths stay silent.
    """

    def __init__(self) -> None:
        self.calls = 0

    def _count(self, *_args: Any, **_kwargs: Any) -> None:
        self.calls += 1

    emit = phase_start = phase_end = fault = detect = recovery = _count
    token_pass = msg_send = msg_recv = incr = timer_start = _count

    def timer_stop(self, name: str, time: float) -> float:
        self.calls += 1
        return 0.0


# ---------------------------------------------------------------------------
# Workloads (seeded; every quantity below is virtual-time deterministic)
# ---------------------------------------------------------------------------

def run_kernel(tracer: Any) -> dict[str, Any]:
    """Guarded-command RB stepping (the substrate hot loop)."""
    from repro.barrier.rb import make_rb
    from repro.gc.scheduler import RoundRobinDaemon
    from repro.gc.simulator import Simulator

    prog = make_rb(16, nphases=4)
    sim = Simulator(
        prog, RoundRobinDaemon(tracer=tracer), tracer=tracer, record_trace=False
    )
    result = sim.run(max_steps=2_000)
    return {"steps": result.steps}


def run_fig5(tracer: Any) -> dict[str, Any]:
    """One Figure 5 sweep point: timed tree barrier under faults."""
    from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig

    sim = FTTreeBarrierSim(
        nprocs=16,
        config=SimConfig(latency=0.02, fault_frequency=0.1, seed=0),
        tracer=tracer,
    )
    metrics = sim.run(phases=30)
    return {"instances_per_phase": metrics.instances_per_phase}


def run_fig7(tracer: Any) -> dict[str, Any]:
    """The Figure 7 perturb-and-recover experiment."""
    from repro.protosim.recovery import RecoveryExperiment

    exp = RecoveryExperiment(h=3, c=0.02, seed=0, tracer=tracer)
    result = exp.run(trials=8)
    return {"mean_recovery_time": result.mean_time}


WORKLOADS: dict[str, Callable[[Any], dict[str, Any]]] = {
    "kernel": run_kernel,
    "fig5": run_fig5,
    "fig7": run_fig7,
}


def run_net(
    faults: bool = True,
    tracing: bool = True,
    tracer_factory: Callable[[int], Any] | None = None,
) -> Any:
    """A seeded 5-node asyncio net barrier run (crash at round 3).

    The net runtime runs on wall-clock, so event and message counts
    differ between two executions of the same seed; only the projection
    digest and the plan-driven quantities are deterministic, and only
    those reach the gated report.  The null-tracer variant runs
    fault-free so the unguarded-call count has a single possible value.
    """
    from repro.chaos.plan import FaultEvent, FaultPlan
    from repro.net.runtime import NetConfig, run_sync

    plan = (
        FaultPlan(nprocs=5, events=(FaultEvent(pid=2, when=3.0),), seed=7)
        if faults
        else None
    )
    return run_sync(
        NetConfig(
            nodes=5,
            barriers=8,
            seed=7,
            plan=plan,
            timeout_s=30.0,
            tracing=tracing,
            tracer_factory=tracer_factory,
        )
    )


def _deterministic(events: list, native: dict[str, Any]) -> dict[str, Any]:
    s = summarize(events)
    latencies = s.recovery_latencies
    out = {
        "events": s.events,
        "instances": s.instances,
        "successful_phases": s.successful_phases,
        "faults": s.faults,
        "detections": s.detections,
        "recoveries": s.recoveries,
        "token_passes": s.token_passes,
        "messages_sent": s.messages_sent,
        "recovery_latency_p50": _safe(_quantile(latencies, 0.5)),
        "recovery_latency_p90": _safe(_quantile(latencies, 0.9)),
    }
    for key, value in native.items():
        out[key] = _safe(value) if isinstance(value, float) else value
    return out


def _histogram_quantiles(events: list) -> dict[str, Any]:
    registry = metrics_from_trace(events)
    hist = registry["barrier_instance_duration"]
    out: dict[str, Any] = {}
    for result in ("success", "failed"):
        if hist.count(result=result):
            out[f"instance_duration_{result}_p50"] = round(
                hist.quantile(0.5, result=result), 9
            )
            out[f"instance_duration_{result}_p90"] = round(
                hist.quantile(0.9, result=result), 9
            )
    return out


def _safe(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return None if math.isnan(value) else ("Infinity" if value > 0 else "-Infinity")
    return value


def measure(repeats: int = 3, quick: bool = False) -> dict[str, Any]:
    """Run every workload; build the BENCH_obs report dict."""
    if quick:
        repeats = max(1, min(repeats, 2))
    report: dict[str, Any] = {"version": 1, "repeats": repeats, "workloads": {}}
    for name, workload in WORKLOADS.items():
        traced_times: list[float] = []
        null_times: list[float] = []
        events: list = []
        native: dict[str, Any] = {}
        for _ in range(repeats):
            tracer = Tracer()
            start = time.perf_counter()
            native = workload(tracer)
            traced_times.append(time.perf_counter() - start)
            events = tracer.events
        for _ in range(repeats):
            start = time.perf_counter()
            workload(None)
            null_times.append(time.perf_counter() - start)
        report["workloads"][name] = {
            "wall": {
                "median_s": statistics.median(traced_times),
                "times_s": traced_times,
                "null_median_s": statistics.median(null_times),
                "null_times_s": null_times,
            },
            "deterministic": _deterministic(events, native),
            "quantiles": _histogram_quantiles(events),
        }
    # The net runtime workload: wall-clock nondeterminism keeps event
    # and message counts out of the report; digest + plan-driven
    # quantities are the gates (see run_net).
    net_times: list[float] = []
    net_null_times: list[float] = []
    net_result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        net_result = run_net()
        net_times.append(time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        run_net(tracing=False)
        net_null_times.append(time.perf_counter() - start)
    report["workloads"]["net"] = {
        "wall": {
            "median_s": statistics.median(net_times),
            "times_s": net_times,
            "null_median_s": statistics.median(net_null_times),
            "null_times_s": net_null_times,
        },
        "deterministic": {
            "digest": net_result.digest,
            "reached": net_result.reached,
            "completed": net_result.completed,
            "successful_phases": net_result.successful_phases,
            "faults_fired": net_result.faults_fired,
            "violations": len(net_result.violations),
            "verdicts": net_result.metrics_summary.get("verdicts", {}),
        },
        "quantiles": {},
    }
    counting = CountingNullTracer()
    kernel = run_kernel(counting)
    steps = max(1, kernel["steps"])
    report["null_tracer_gate"] = {
        "calls": counting.calls,
        "steps": steps,
        "calls_per_step": counting.calls / steps,
    }
    counting_net = CountingNullTracer()
    null_net = run_net(faults=False, tracer_factory=lambda _pid: counting_net)
    net_steps = max(1, null_net.completed)
    report["net_null_tracer_gate"] = {
        "calls": counting_net.calls,
        "steps": net_steps,
        "calls_per_step": counting_net.calls / net_steps,
    }
    return report


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------

class GateCheck:
    def __init__(self, name: str, ok: bool, detail: str) -> None:
        self.name = name
        self.ok = ok
        self.detail = detail


class GateResult:
    """The outcome of one baseline comparison."""

    def __init__(self, checks: list[GateCheck]) -> None:
        self.checks = checks

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[GateCheck]:
        return [c for c in self.checks if not c.ok]

    def render(self) -> str:
        lines = [
            f"Regression gate: {len(self.checks)} checks, "
            f"{len(self.failures)} failing"
        ]
        for check in self.checks:
            mark = "ok  " if check.ok else "FAIL"
            lines.append(f"  [{mark}] {check.name}: {check.detail}")
        return "\n".join(lines)


def _close(current: Any, base: Any, rel_tol: float) -> bool:
    if current is None or base is None or isinstance(base, str) or isinstance(
        current, str
    ):
        return current == base
    if isinstance(base, (int, float)):
        return math.isclose(
            float(current), float(base), rel_tol=rel_tol, abs_tol=1e-9
        )
    return current == base


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    rel_tol: float = 0.01,
    null_tol: float = NULL_CALLS_PER_STEP_TOL,
    wall_ratio_limit: float | None = None,
) -> GateResult:
    """Gate ``current`` against ``baseline`` (see module docstring)."""
    checks: list[GateCheck] = []
    for name, base_wl in baseline.get("workloads", {}).items():
        cur_wl = current.get("workloads", {}).get(name)
        if cur_wl is None:
            checks.append(GateCheck(f"{name}", False, "workload missing"))
            continue
        for section in ("deterministic", "quantiles"):
            for key, base_value in base_wl.get(section, {}).items():
                cur_value = cur_wl.get(section, {}).get(key)
                ok = _close(cur_value, base_value, rel_tol)
                checks.append(
                    GateCheck(
                        f"{name}.{key}",
                        ok,
                        f"current={cur_value!r} baseline={base_value!r} "
                        f"(rel_tol={rel_tol})",
                    )
                )
        if wall_ratio_limit is not None:
            wall = cur_wl.get("wall", {})
            t_null = wall.get("null_median_s")
            t_traced = wall.get("median_s")
            if t_null is not None and t_traced:
                ratio = t_null / t_traced
                checks.append(
                    GateCheck(
                        f"{name}.tracing_off_vs_on",
                        ratio <= wall_ratio_limit,
                        f"off/on wall ratio {ratio:.3f} "
                        f"(limit {wall_ratio_limit})",
                    )
                )
    for gate_key, label in (
        ("null_tracer_gate", "null_tracer"),
        ("net_null_tracer_gate", "net_null_tracer"),
    ):
        if gate_key not in baseline:
            continue
        base_cps = baseline[gate_key].get("calls_per_step", 0.0)
        cur_cps = current.get(gate_key, {}).get("calls_per_step")
        checks.append(
            GateCheck(
                f"{label}.calls_per_step",
                cur_cps is not None and cur_cps <= base_cps + null_tol,
                f"current={cur_cps!r} budget={base_cps + null_tol:g} "
                "(the <5% NullTracer overhead gate)",
            )
        )
    return GateResult(checks)


# ---------------------------------------------------------------------------
# Files + CLI
# ---------------------------------------------------------------------------

def write_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="observability perf-regression harness",
    )
    parser.add_argument("--out", default=str(BENCH_PATH), help="report path")
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), help="committed baseline"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true", help="fewer repeats (CI smoke)"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.01, help="relative gate tolerance"
    )
    parser.add_argument(
        "--wall-ratio-limit",
        type=float,
        default=1.5,
        help="max tracing-off/on wall ratio (0 disables the wall check)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the baseline from this run instead of gating",
    )
    args = parser.parse_args(argv)

    report = measure(repeats=args.repeats, quick=args.quick)
    out = write_report(report, args.out)
    print(f"wrote {out}")
    if args.update_baseline:
        base = write_report(report, args.baseline)
        print(f"baseline updated: {base}")
        return 0
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run --update-baseline first")
        return 1
    gate = compare(
        report,
        load_json(baseline_path),
        rel_tol=args.tolerance,
        wall_ratio_limit=args.wall_ratio_limit or None,
    )
    print(gate.render())
    return 0 if gate.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
