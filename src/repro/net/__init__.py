"""repro.net -- the asyncio message-passing runtime.

The deployment tier of the repo: the tree-barrier and MB protocols as
real message protocols over length-prefixed JSON frames, running as N
asyncio tasks (one per node) over an in-memory, TCP or Unix-socket
transport, with transport-level fault injection driven by the same
:class:`~repro.chaos.plan.FaultPlan` schema the simulated engines use.
``NetConfig(shards=...)`` scales past one event loop: the node set is
partitioned across worker processes with batched cross-shard links
(:mod:`repro.net.shard`).  See ``API.md`` ("repro.net") for the frame
format and the guarantees.
"""

from repro.net.faults import MAX_DROP_ATTEMPTS, FaultyTransport
from repro.net.frames import (
    DedupIndex,
    FrameDecoder,
    FrameError,
    LamportClock,
    Message,
    append_frame,
    encode_canonical,
    encode_frame,
    frame_digest,
    pack_record,
    unpack_record,
)
from repro.net.mbnode import MBRingNode
from repro.net.node import NetNode, Timing
from repro.net.runtime import (
    PROTOCOLS,
    TRANSPORTS,
    NetConfig,
    NetResult,
    run_async,
    run_sync,
)
from repro.net.shard import (
    SHARD_TRANSPORTS,
    ShardFabric,
    ShardLink,
    ShardTransport,
    cross_edges,
    partition_nodes,
    run_sharded,
)
from repro.net.trace import (
    PROTOCOL_KINDS,
    check_merged,
    digest_projection,
    merge_traces,
    monitor_stream,
    trace_digest,
)
from repro.net.transport import (
    MemHub,
    MemTransport,
    TcpTransport,
    Transport,
    TransportClosed,
    create_mem_transports,
    create_tcp_transports,
    have_af_unix,
    normalize_address,
)
from repro.net.tree import TreeBarrierNode, tree_children, tree_parent

__all__ = [
    "MAX_DROP_ATTEMPTS",
    "FaultyTransport",
    "DedupIndex",
    "FrameDecoder",
    "FrameError",
    "LamportClock",
    "Message",
    "append_frame",
    "encode_canonical",
    "encode_frame",
    "frame_digest",
    "pack_record",
    "unpack_record",
    "MBRingNode",
    "NetNode",
    "Timing",
    "PROTOCOLS",
    "TRANSPORTS",
    "NetConfig",
    "NetResult",
    "run_async",
    "run_sync",
    "SHARD_TRANSPORTS",
    "ShardFabric",
    "ShardLink",
    "ShardTransport",
    "cross_edges",
    "partition_nodes",
    "run_sharded",
    "PROTOCOL_KINDS",
    "check_merged",
    "digest_projection",
    "merge_traces",
    "monitor_stream",
    "trace_digest",
    "MemHub",
    "MemTransport",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "create_mem_transports",
    "create_tcp_transports",
    "have_af_unix",
    "normalize_address",
    "TreeBarrierNode",
    "tree_children",
    "tree_parent",
]
