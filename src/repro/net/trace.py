"""Cross-node trace merging, replay digests, and post-run monitoring.

Every node traces into its own :class:`~repro.obs.tracer.Tracer` with
Lamport-clock timestamps.  After the run the per-node JSONL streams are
merged into one causality-respecting sequence (:func:`merge_traces`)
and fed through the PR-4 guarantee monitors (:func:`check_merged`) --
the distributed runtime is checked by exactly the machinery that checks
the simulated engines.

:func:`trace_digest` is the replay identity: a SHA-256 over the
*deterministic projection* of the per-node streams -- protocol events
(phase/fault/detect/recovery) with their payload fields, in each node's
own emission order, with pids sorted and timestamps excluded.  For the
round-quantized tree protocol this projection is a pure function of
``(plan, config)``, so two runs of the same seed produce the same
digest even though wall-clock interleavings (and hence Lamport values)
differ.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.chaos.plan import FaultPlan
from repro.obs.events import (
    DETECT,
    FAULT,
    PHASE_END,
    PHASE_START,
    RECOVERY,
    ObsEvent,
)
from repro.obs.recorder import (
    PROTOCOL_KINDS,
    digest_of_rows,
    projection_row,
)
from repro.obs.tracer import Tracer

__all__ = [
    "PROTOCOL_KINDS",
    "merge_traces",
    "digest_projection",
    "trace_digest",
    "monitor_stream",
    "check_merged",
]


def merge_traces(
    streams: Mapping[int, Sequence[ObsEvent]]
) -> list[ObsEvent]:
    """One total order over all nodes' events.

    Sorted by ``(lamport time, pid, per-node index)`` -- Lamport stamps
    make the order causality-respecting, the pid and index break ties
    deterministically for any given set of streams.
    """
    keyed = []
    for pid in sorted(streams):
        for idx, event in enumerate(streams[pid]):
            keyed.append((event.time, -1 if event.pid is None else event.pid, idx, event))
    keyed.sort(key=lambda item: item[:3])
    return [item[3] for item in keyed]


def digest_projection(
    streams: Mapping[int, Sequence[ObsEvent]]
) -> list[list]:
    """The deterministic view :func:`trace_digest` hashes.  Row shape is
    owned by :func:`repro.obs.recorder.projection_row`, which flight
    recorders also accumulate incrementally -- the two paths must hash
    identically (gated by test)."""
    proj: list[list] = []
    for pid in sorted(streams):
        for event in streams[pid]:
            if event.kind in PROTOCOL_KINDS:
                proj.append(projection_row(event, pid))
    return proj


def trace_digest(streams: Mapping[int, Sequence[ObsEvent]]) -> str:
    """SHA-256 hex digest of the deterministic projection."""
    rows_by_pid: dict[int, list[list]] = {}
    for pid in sorted(streams):
        rows_by_pid[pid] = [
            projection_row(event, pid)
            for event in streams[pid]
            if event.kind in PROTOCOL_KINDS
        ]
    return digest_of_rows(rows_by_pid)


def monitor_stream(merged: Iterable[ObsEvent]) -> list[ObsEvent]:
    """What the guarantee monitors should see: node 0's phase narration
    (one narrator, as in every simulated engine) plus everyone's
    fault/detect/recovery events."""
    out = []
    for event in merged:
        if event.kind in (PHASE_START, PHASE_END):
            if event.pid == 0:
                out.append(event)
        elif event.kind in (FAULT, DETECT, RECOVERY):
            out.append(event)
    return out


def check_merged(
    merged: Sequence[ObsEvent],
    plan: FaultPlan,
    nphases: int | None,
    reached: bool,
):
    """Run the chaos guarantee monitors over a merged trace post-run.

    Returns ``(violations, spans)`` -- the stabilization spans are the
    Figure 7 quantity measured over Lamport time.
    """
    from repro.chaos.adapters import monitors_for
    from repro.chaos.monitors import MonitorSet

    events = monitor_stream(merged)
    tracer = Tracer()
    # Strict fail-safe checking (success-after-fault) only where Lamport
    # causality is exact: the tree's round-quantized faults.  MB's
    # concurrent completions make lamport comparison unreliable there.
    monitor_set = MonitorSet(
        tracer, monitors_for(plan, nphases, strict=nphases is None)
    )
    for event in events:
        tracer.emit(event.kind, event.time, event.pid, **event.data)
    end_time = events[-1].time if events else 0.0
    monitor_set.finish(reached, end_time)
    spans: list[float] = []
    for m in monitor_set.monitors:
        spans.extend(getattr(m, "spans", ()))
    return monitor_set.violations, spans
