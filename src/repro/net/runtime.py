"""The distributed runtime: N nodes, one event loop, real faults.

:func:`run_sync` (and its coroutine :func:`run_async`) is the single
entry point everything above uses -- the ``repro-experiments net run``
CLI, the ``net:tree`` / ``net:mb`` chaos adapters, the benchmark, and
the tests.  It builds the transport fabric (in-memory or TCP over
localhost), wraps it in :class:`~repro.net.faults.FaultyTransport` when
the :class:`~repro.chaos.plan.FaultPlan` carries link rates or
partition windows, schedules the plan's crash-restart faults, runs the
chosen protocol to completion under a wall-clock deadline, then merges
the per-node traces, computes the replay digest, and checks the
guarantee monitors post-run.

Nodes run as N asyncio tasks in one loop (the CI collapse of the
paper's N processes); the TCP path still crosses real sockets, so the
protocol code is deployment-shaped either way.
"""

from __future__ import annotations

import asyncio
import tempfile
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.chaos.plan import FaultPlan
from repro.net.faults import FaultyTransport
from repro.net.mbnode import MBRingNode
from repro.net.node import Timing
from repro.net.transport import (
    Transport,
    create_mem_transports,
    create_tcp_transports,
)
from repro.net.tree import TreeBarrierNode
from repro.net.trace import check_merged, merge_traces, trace_digest
from repro.obs.events import FAULT, PHASE_END, ObsEvent
from repro.obs.tracer import NullTracer, Tracer

PROTOCOLS = ("tree", "mb")
TRANSPORTS = ("mem", "tcp", "unix")


@dataclass(frozen=True)
class NetConfig:
    """One distributed run, fully specified.

    The telemetry plane: ``live=True`` (implied by ``obs_port``) swaps
    each node's unbounded tracer for a bounded
    :class:`~repro.obs.recorder.FlightRecorder` of ``ring_capacity``
    events and checks the guarantee monitors *while the run executes*
    (streaming Lamport merge; same verdicts as the post-hoc path, gated
    by test).  ``obs_port`` additionally serves ``/metrics``, ``/health``
    and ``/spans/recent`` from inside the loop (0 = ephemeral port,
    localhost-only).  ``tracing=False`` runs with ``NullTracer`` (the
    benchmark's baseline column); ``tracer_factory`` (pid -> tracer)
    overrides node tracers outright when the plane is off.

    Sharding: ``shards > 1`` routes the run to
    :func:`repro.net.shard.run_sharded` -- the node set is partitioned
    across that many worker processes, in-shard traffic stays on memory
    queues (``transport`` must be ``"mem"``), and cross-shard traffic
    rides batched socket links (``shard_transport``: ``"auto"`` picks
    Unix domain sockets when the platform has them, else TCP;
    ``batch_bytes`` is the link flush threshold).  The live HTTP plane
    and custom tracer factories are single-process features and are
    rejected with sharding.
    """

    nodes: int = 5
    barriers: int = 20
    protocol: str = "tree"
    transport: str = "mem"
    arity: int = 2
    nphases: int = 4  # MB phase-counter wrap
    seed: int = 0
    plan: FaultPlan | None = None
    #: The defensive frame layer (strict decode, payload validation,
    #: suspicion strikes, fail-safe degradation).  ``False`` restores
    #: the trusting pre-adversarial receive path -- the intolerant
    #: control that Byzantine chaos campaigns are expected to flag.
    defense: bool = True
    timing: Timing = field(default_factory=Timing)
    max_delay: float = 0.05
    timeout_s: float = 60.0
    trace_dir: str | None = None
    obs_port: int | None = None
    #: Called with the bound obs URL as soon as the HTTP plane is up --
    #: the only way to learn the port when ``obs_port=0`` (ephemeral),
    #: since the run blocks until completion.
    obs_announce: Any = None
    live: bool = False
    ring_capacity: int = 4096
    tracing: bool = True
    tracer_factory: Any = None
    shards: int = 1
    shard_transport: str = "auto"
    batch_bytes: int = 32768

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("a distributed run needs at least 2 nodes")
        if self.barriers < 1:
            raise ValueError("need at least one barrier round")
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; use {PROTOCOLS}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; use {TRANSPORTS}"
            )
        if self.plan is not None and self.plan.nprocs != self.nodes:
            raise ValueError(
                f"plan is for {self.plan.nprocs} processes, run has {self.nodes}"
            )
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.batch_bytes < 1:
            raise ValueError("batch_bytes must be >= 1")
        from repro.net.shard import SHARD_TRANSPORTS

        if self.shard_transport not in SHARD_TRANSPORTS:
            raise ValueError(
                f"unknown shard_transport {self.shard_transport!r}; "
                f"use {SHARD_TRANSPORTS}"
            )
        if self.shards > 1:
            if self.transport != "mem":
                raise ValueError(
                    "sharded runs keep in-shard traffic on the memory "
                    "transport; use transport='mem' with shards > 1"
                )
            if self.obs_port is not None:
                raise ValueError("the live HTTP plane is single-process; "
                                 "obs_port requires shards=1")
            if self.tracer_factory is not None:
                raise ValueError("tracer_factory is not picklable across "
                                 "shard workers; use shards=1")

    @property
    def live_mode(self) -> bool:
        """The telemetry plane runs when asked for, or when the HTTP
        endpoint needs it."""
        return self.live or self.obs_port is not None


@dataclass
class NetResult:
    """What one run did, monitors included."""

    config: NetConfig
    reached: bool
    completed: int
    successful_phases: int
    faults_fired: int
    digest: str
    end_time: float
    wall_s: float
    #: The run degraded into a fail-safe stop (some node condemned a
    #: peer, or died permanently).  A legitimate end state under
    #: uncorrectable faults: the barrier may go unreached, but a
    #: wrongful completion was never reported.
    failsafe_stop: bool = False
    violations: list[Any] = field(default_factory=list)
    spans: list[float] = field(default_factory=list)
    node_stats: dict[int, dict[str, int]] = field(default_factory=dict)
    link_stats: dict[str, int] = field(default_factory=dict)
    merged_events: list[ObsEvent] = field(default_factory=list)
    trace_paths: list[str] = field(default_factory=list)
    #: Digest + per-guarantee verdicts (+ plane accounting when live) --
    #: everything a scraper needs without recomputing from the trace.
    metrics_summary: dict[str, Any] = field(default_factory=dict)
    obs_url: str | None = None

    @property
    def ok(self) -> bool:
        return (self.reached or self.failsafe_stop) and not self.violations

    def to_json(self) -> dict[str, Any]:
        return {
            "protocol": self.config.protocol,
            "transport": self.config.transport,
            "nodes": self.config.nodes,
            "barriers": self.config.barriers,
            "seed": self.config.seed,
            "reached": self.reached,
            "failsafe_stop": self.failsafe_stop,
            "completed": self.completed,
            "successful_phases": self.successful_phases,
            "faults_fired": self.faults_fired,
            "digest": self.digest,
            "end_time": self.end_time,
            "wall_s": self.wall_s,
            "violations": [v.to_json() for v in self.violations],
            "spans": list(self.spans),
            "node_stats": {str(k): dict(v) for k, v in self.node_stats.items()},
            "link_stats": dict(self.link_stats),
            "trace_paths": list(self.trace_paths),
            "metrics": dict(self.metrics_summary),
        }

    def render(self) -> str:
        lines = [
            f"net run: {self.config.protocol} x{self.config.nodes} over "
            f"{self.config.transport}, {self.config.barriers} barriers "
            f"(seed {self.config.seed})",
            f"  completed={self.completed} reached={self.reached} "
            f"failsafe_stop={self.failsafe_stop} "
            f"faults={self.faults_fired} wall={self.wall_s:.2f}s",
            f"  digest={self.digest}",
        ]
        verdicts = self.metrics_summary.get("verdicts")
        if verdicts:
            pretty = " ".join(f"{k}={v}" for k, v in sorted(verdicts.items()))
            lines.append(f"  verdicts: {pretty}")
        if self.obs_url:
            lines.append(f"  obs: {self.obs_url} (live plane)")
        if self.link_stats:
            pretty = " ".join(f"{k}={v}" for k, v in sorted(self.link_stats.items()))
            lines.append(f"  link: {pretty}")
        resends = sum(s.get("resends", 0) for s in self.node_stats.values())
        dups = sum(s.get("dup_filtered", 0) for s in self.node_stats.values())
        lines.append(f"  reliability: resends={resends} dup_filtered={dups}")
        for v in self.violations:
            lines.append(f"  VIOLATION {v}")
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _fault_schedules(
    plan: FaultPlan | None,
) -> tuple[dict[int, list[float]], dict[int, list[float]], dict[int, list[float]]]:
    """Per-node strike times split by fault class: ``reset`` events are
    crash-restarts, ``crash`` events are permanent fail-stops, and
    ``byzantine`` events are lie-mode activations."""
    resets: dict[int, list[float]] = {}
    permanents: dict[int, list[float]] = {}
    byzantines: dict[int, list[float]] = {}
    if plan is not None:
        for event in plan.events:
            bucket = {
                "reset": resets,
                "crash": permanents,
                "byzantine": byzantines,
            }[event.kind]
            bucket.setdefault(event.pid, []).append(event.when)
    return resets, permanents, byzantines


async def run_async(config: NetConfig) -> NetResult:
    if config.shards > 1:
        from repro.net.shard import run_sharded

        # The sharded coordinator blocks on pipes and process joins;
        # keep this loop responsive while it runs.
        return await asyncio.to_thread(run_sharded, config)
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    # -- fabric --------------------------------------------------------
    raw: list[Transport]
    sockdir: tempfile.TemporaryDirectory | None = None
    if config.transport in ("tcp", "unix"):
        if config.transport == "unix":
            # Falls back to TCP on platforms without AF_UNIX.
            sockdir = tempfile.TemporaryDirectory(prefix="net-unix-")
        raw = list(
            await create_tcp_transports(
                config.nodes,
                unix_dir=sockdir.name if sockdir is not None else None,
            )
        )
    else:
        raw = list(create_mem_transports(config.nodes))
    plan = config.plan
    faulty = bool(
        plan is not None and ((plan.link is not None and plan.link.any) or plan.partitions)
    )
    transports: list[Transport] = raw
    if faulty:
        clock = lambda: loop.time() - t0  # noqa: E731
        transports = [
            FaultyTransport(t, plan, clock=clock, max_delay=config.max_delay)
            for t in raw
        ]

    # -- telemetry plane ----------------------------------------------
    nphases = None if config.protocol == "tree" else config.nphases
    check_plan = plan if plan is not None else FaultPlan(nprocs=config.nodes)
    plane = None
    server = None
    tracers: dict[int, Any]
    if config.live_mode:
        from repro.obs.live import LivePlane

        plane = LivePlane(
            config.nodes,
            plan=check_plan,
            nphases=nphases,
            ring_capacity=config.ring_capacity,
        )
        tracers = {pid: plane.tracer_for(pid) for pid in range(config.nodes)}
        if config.obs_port is not None:
            from repro.obs.http import ObsHttpServer

            server = await ObsHttpServer(plane, port=config.obs_port).start()
            if config.obs_announce is not None:
                config.obs_announce(server.url)
    elif config.tracer_factory is not None:
        tracers = {pid: config.tracer_factory(pid) for pid in range(config.nodes)}
    elif not config.tracing:
        tracers = {pid: NullTracer() for pid in range(config.nodes)}
    else:
        tracers = {pid: Tracer() for pid in range(config.nodes)}

    # -- nodes ---------------------------------------------------------
    crashes, permanents, byzantines = _fault_schedules(plan)
    plan_seed = plan.seed if plan is not None else config.seed
    fail_stop_aware = bool(permanents)
    nodes: list[Any] = []
    mains = []
    for pid in range(config.nodes):
        if config.protocol == "tree":
            node = TreeBarrierNode(
                pid,
                config.nodes,
                transports[pid],
                barriers=config.barriers,
                arity=config.arity,
                crash_rounds=[max(0, int(w)) for w in crashes.get(pid, ())],
                permanent_rounds=[
                    max(0, int(w)) for w in permanents.get(pid, ())
                ],
                byzantine_rounds=[
                    max(0, int(w)) for w in byzantines.get(pid, ())
                ],
                tracer=tracers[pid],
                timing=config.timing,
                defense=config.defense,
                plan_seed=plan_seed,
                fail_stop_aware=fail_stop_aware,
            )
            mains.append(node.run_rounds())
        else:
            node = MBRingNode(
                pid,
                config.nodes,
                transports[pid],
                barriers=config.barriers,
                nphases=config.nphases,
                crash_times=crashes.get(pid, ()),
                permanent_times=permanents.get(pid, ()),
                byzantine_times=byzantines.get(pid, ()),
                tracer=tracers[pid],
                timing=config.timing,
                defense=config.defense,
                plan_seed=plan_seed,
                fail_stop_aware=fail_stop_aware,
            )
            mains.append(node.run_protocol())
        nodes.append(node)

    # -- run -----------------------------------------------------------
    if plane is not None:
        live_plane = plane

        async def _with_done_mark(node_pid: int, coro: Any) -> None:
            try:
                await coro
            finally:
                # A finished (or cancelled) node must stop gating the
                # streaming merge watermark.
                live_plane.mark_done(node_pid)

        mains = [_with_done_mark(pid, coro) for pid, coro in enumerate(mains)]
    wall_start = _time.perf_counter()
    gathered = asyncio.gather(*mains)
    timed_out = False
    try:
        await asyncio.wait_for(gathered, config.timeout_s)
    except asyncio.TimeoutError:
        timed_out = True
        gathered.cancel()
        try:
            await gathered
        except (asyncio.CancelledError, Exception):
            pass
    finally:
        for node in nodes:
            await node.stop()
        for transport in transports:
            await transport.close()
        if sockdir is not None:
            sockdir.cleanup()
    wall_s = _time.perf_counter() - wall_start

    # -- post-run ------------------------------------------------------
    if config.protocol == "tree":
        completed = min(node.round for node in nodes)
        reached = all(node.round >= config.barriers for node in nodes)
    else:
        completed = nodes[0].completed
        reached = nodes[0].completed >= config.barriers
    reached = reached and not timed_out
    failsafe_stop = any(
        getattr(node, "failsafe", False) or getattr(node, "dead", False)
        for node in nodes
    )

    if plane is not None:
        # The streaming path already merged, monitored and digested;
        # full per-node streams may be ring-truncated, so everything
        # derives from the plane's (complete) merged view.
        plane.finish(reached)
        if server is not None:
            await server.stop()
        merged = list(plane.merged or [])
        digest = plane.digest()
        violations, spans = list(plane.violations), list(plane.spans)
        successful = sum(
            1
            for e in merged
            if e.kind == PHASE_END and e.pid == 0 and e.data.get("success")
        )
        faults_fired = sum(1 for e in merged if e.kind == FAULT)
    else:
        streams = {pid: tracers[pid].events for pid in tracers}
        merged = merge_traces(streams)
        digest = trace_digest(streams)
        violations, spans = check_merged(merged, check_plan, nphases, reached)
        successful = sum(
            1
            for e in streams[0]
            if e.kind == PHASE_END and e.data.get("success")
        )
        faults_fired = sum(
            1 for events in streams.values() for e in events if e.kind == FAULT
        )
    link_stats: dict[str, int] = {}
    if faulty:
        for transport in transports:
            for key, value in transport.stats.items():  # type: ignore[attr-defined]
                link_stats[key] = link_stats.get(key, 0) + value

    trace_paths: list[str] = []
    if config.trace_dir is not None:
        out = Path(config.trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        for pid, tracer in tracers.items():
            if plane is not None:
                path = out / f"flight-{pid}.snapshot.jsonl"
                plane.recorders[pid].dump_snapshot(path)
            elif hasattr(tracer, "dump_jsonl"):
                path = out / f"trace-{pid}.jsonl"
                tracer.dump_jsonl(path)
            else:
                continue
            trace_paths.append(str(path))
        merged_path = out / "merged.jsonl"
        Tracer.from_events(merged).dump_jsonl(merged_path)
        trace_paths.append(str(merged_path))

    metrics_summary = _metrics_summary(
        check_plan, nphases, digest, violations, spans, plane
    )

    return NetResult(
        config=config,
        reached=reached,
        completed=completed,
        successful_phases=successful,
        faults_fired=faults_fired,
        digest=digest,
        end_time=merged[-1].time if merged else 0.0,
        wall_s=wall_s,
        failsafe_stop=failsafe_stop,
        violations=list(violations),
        spans=list(spans),
        node_stats={node.node_id: dict(node.stats) for node in nodes},
        link_stats=link_stats,
        merged_events=merged,
        trace_paths=trace_paths,
        metrics_summary=metrics_summary,
        obs_url=server.url if server is not None else None,
    )


def _metrics_summary(
    check_plan: FaultPlan,
    nphases: int | None,
    digest: str,
    violations: list[Any],
    spans: list[float],
    plane: Any,
) -> dict[str, Any]:
    """The scrape-ready run summary: digest + per-guarantee verdicts,
    plus ring/merge accounting when the live plane ran."""
    from repro.chaos.adapters import monitors_for

    checked = sorted(
        {
            m.guarantee
            for m in monitors_for(check_plan, nphases, strict=nphases is None)
        }
    )
    verdicts = {guarantee: "pass" for guarantee in checked}
    for violation in violations:
        verdicts[violation.guarantee] = "fail"
    summary: dict[str, Any] = {
        "digest": digest,
        "verdicts": verdicts,
        "violations_total": len(violations),
        "stabilization_spans": len(spans),
        "live": plane is not None,
    }
    if plane is not None:
        summary["rings"] = {
            str(pid): stats for pid, stats in plane.ring_stats().items()
        }
        summary["merged_released"] = plane.merger.released
        summary["spans_finished"] = dict(plane.folder.finished)
    return summary


def run_sync(config: NetConfig) -> NetResult:
    """Run a distributed barrier job to completion (blocking).

    Dispatches transparently: ``shards > 1`` runs the process-per-shard
    coordinator (:func:`repro.net.shard.run_sharded`), everything else
    runs the single-loop path.
    """
    if config.shards > 1:
        from repro.net.shard import run_sharded

        return run_sharded(config)
    return asyncio.run(run_async(config))
