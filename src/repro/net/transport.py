"""Point-to-point transports behind one ABC.

A :class:`Transport` moves opaque frame bodies between node ids.  Two
implementations share it:

* :class:`MemTransport` -- an in-process hub of asyncio queues, the CI
  workhorse: zero sockets, microsecond latency, and a ``drain`` that
  models in-flight loss on crash;
* :class:`TcpTransport` -- real sockets: every node runs an asyncio
  server (TCP on an ephemeral localhost port, or -- with ``unix://``
  addresses -- a Unix domain socket, which skips the TCP stack for
  same-host links), peers dial lazily on first send, and the
  :mod:`repro.net.frames` codec turns the byte stream back into frames.
  A ``HELLO`` frame opens each connection so the receiver can attribute
  the stream to a node id.  On platforms without ``AF_UNIX`` the
  factory falls back to TCP transparently (see :func:`have_af_unix`).

Both are single-event-loop objects; the runtime runs N nodes as N
tasks in one loop (the paper's N processes, collapsed for CI -- the
protocol code cannot tell the difference, and the TCP path exercises
real sockets either way).
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
from typing import Mapping, Union

from repro.net.frames import FrameDecoder, FrameError, encode_frame

#: One transport address: ``"tcp://host:port"`` or ``"unix://path"``
#: (legacy ``(host, port)`` tuples are accepted and normalized).
Address = Union[str, "tuple[str, int]"]


def have_af_unix() -> bool:
    """True when this platform can bind Unix domain sockets."""
    return hasattr(socket, "AF_UNIX")


def normalize_address(address: Address) -> str:
    """Canonical string form of an address (tuples become ``tcp://``)."""
    if isinstance(address, tuple):
        host, port = address
        return f"tcp://{host}:{port}"
    if address.startswith(("tcp://", "unix://")):
        return address
    raise ValueError(f"unrecognized transport address {address!r}")


async def open_address(address: str) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial a normalized address (TCP or Unix domain socket)."""
    if address.startswith("unix://"):
        return await asyncio.open_unix_connection(address[len("unix://"):])
    hostport = address[len("tcp://"):]
    host, _, port = hostport.rpartition(":")
    return await asyncio.open_connection(host, int(port))


class TransportClosed(ConnectionError):
    """Send/recv on a transport after ``close``."""


class Transport:
    """Frame-level point-to-point messaging for one node."""

    def __init__(self, node_id: int, nprocs: int) -> None:
        self.node_id = node_id
        self.nprocs = nprocs

    async def send(self, dst: int, body: bytes) -> None:
        """Queue ``body`` for delivery to ``dst`` (best effort)."""
        raise NotImplementedError

    async def recv(self, timeout: float | None = None) -> tuple[int, bytes] | None:
        """Next ``(src, body)``; None on timeout."""
        raise NotImplementedError

    def drain(self) -> int:
        """Discard everything queued for this node (in-flight loss at a
        crash); returns the number of frames dropped."""
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# In-memory
# ----------------------------------------------------------------------
class MemHub:
    """The shared switch fabric of a set of :class:`MemTransport`."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.queues: list[asyncio.Queue[tuple[int, bytes]]] = [
            asyncio.Queue() for _ in range(nprocs)
        ]

    def transports(self) -> list["MemTransport"]:
        return [MemTransport(i, self) for i in range(self.nprocs)]


class MemTransport(Transport):
    """One node's port on a :class:`MemHub`."""

    def __init__(self, node_id: int, hub: MemHub) -> None:
        super().__init__(node_id, hub.nprocs)
        self._hub = hub
        self._closed = False

    async def send(self, dst: int, body: bytes) -> None:
        if self._closed:
            raise TransportClosed(f"node {self.node_id}: transport closed")
        if not 0 <= dst < self.nprocs:
            raise ValueError(f"destination {dst} out of range")
        self._hub.queues[dst].put_nowait((self.node_id, body))

    async def recv(self, timeout: float | None = None) -> tuple[int, bytes] | None:
        if self._closed:
            raise TransportClosed(f"node {self.node_id}: transport closed")
        queue = self._hub.queues[self.node_id]
        if timeout is None:
            return await queue.get()
        try:
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def drain(self) -> int:
        queue = self._hub.queues[self.node_id]
        dropped = 0
        while not queue.empty():
            queue.get_nowait()
            dropped += 1
        return dropped

    async def close(self) -> None:
        self._closed = True


# ----------------------------------------------------------------------
# TCP
# ----------------------------------------------------------------------
#: First frame on every TCP connection: identifies the dialing node.
_HELLO_KIND = "__hello__"


def _hello(node_id: int) -> bytes:
    return json.dumps({"k": _HELLO_KIND, "node": node_id}).encode()


class TcpTransport(Transport):
    """Length-prefixed frames over real sockets (TCP or Unix domain).

    Create the full set via :func:`create_tcp_transports`, which starts
    every node's server on an ephemeral port (or a per-node socket path
    under ``unix_dir``) first and then shares the address map, so tests
    never race on fixed port numbers.
    """

    def __init__(
        self,
        node_id: int,
        nprocs: int,
        host: str = "127.0.0.1",
        unix_path: str | None = None,
    ) -> None:
        super().__init__(node_id, nprocs)
        self.host = host
        self.port: int | None = None
        #: Bind a Unix domain socket here instead of TCP (requires
        #: ``AF_UNIX``; :func:`create_tcp_transports` gates on it).
        self.unix_path = unix_path
        self.address: str | None = None
        self._server: asyncio.base_events.Server | None = None
        self._addresses: dict[int, str] = {}
        self._inbox: asyncio.Queue[tuple[int, bytes]] = asyncio.Queue()
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: set[asyncio.Task] = set()
        self._dial_locks: dict[int, asyncio.Lock] = {}
        self._closed = False
        #: Hostile/garbage connections dropped by the reader (bad
        #: framing, oversized length header, unparseable HELLO).
        self.quarantined = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> str:
        """Bind the node's server; returns its normalized address."""
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, self.unix_path
            )
            self.address = f"unix://{self.unix_path}"
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, 0
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self.address = f"tcp://{self.host}:{self.port}"
        return self.address

    def set_addresses(self, addresses: Mapping[int, Address]) -> None:
        self._addresses = {
            pid: normalize_address(addr) for pid, addr in addresses.items()
        }

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        src: int | None = None
        decoder = FrameDecoder()
        try:
            while not self._closed:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for body in decoder.feed(chunk):
                    if src is None:
                        src = self._attribute(body)
                        if src is None:
                            return  # not one of ours: drop the stream
                        continue
                    self._inbox.put_nowait((src, body))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except FrameError:
            # A peer sent garbage framing (oversized length header,
            # unframeable bytes).  The stream cannot resync, so the
            # defensive move is to drop the connection -- never to let
            # the error escape through this reader task.
            self.quarantined += 1
        except asyncio.CancelledError:
            # Teardown: close() cancels pending readers; finish quietly
            # so the event loop doesn't log the cancellation.
            pass
        finally:
            writer.close()

    def _attribute(self, body: bytes) -> int | None:
        """Validate a HELLO frame; None (and a quarantine count) for
        anything a hostile dialer could send instead."""
        try:
            record = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            self.quarantined += 1
            return None
        if not isinstance(record, dict) or record.get("k") != _HELLO_KIND:
            self.quarantined += 1
            return None
        node = record.get("node")
        if (
            not isinstance(node, int)
            or isinstance(node, bool)
            or not 0 <= node < self.nprocs
        ):
            self.quarantined += 1
            return None
        return node

    # -- sending -------------------------------------------------------
    async def _writer_for(self, dst: int) -> asyncio.StreamWriter:
        writer = self._writers.get(dst)
        if writer is not None and not writer.is_closing():
            return writer
        lock = self._dial_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._writers.get(dst)
            if writer is not None and not writer.is_closing():
                return writer
            _reader, writer = await open_address(self._addresses[dst])
            writer.write(encode_frame(_hello(self.node_id)))
            await writer.drain()
            self._writers[dst] = writer
            return writer

    async def send(self, dst: int, body: bytes) -> None:
        if self._closed:
            raise TransportClosed(f"node {self.node_id}: transport closed")
        try:
            writer = await self._writer_for(dst)
            writer.write(encode_frame(body))
            await writer.drain()
        except (ConnectionError, OSError):
            # The peer is down or restarting: TCP loss is exactly the
            # fault class the protocols' resend machinery masks.
            self._writers.pop(dst, None)

    async def recv(self, timeout: float | None = None) -> tuple[int, bytes] | None:
        if self._closed:
            raise TransportClosed(f"node {self.node_id}: transport closed")
        if timeout is None:
            return await self._inbox.get()
        try:
            return await asyncio.wait_for(self._inbox.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def drain(self) -> int:
        dropped = 0
        while not self._inbox.empty():
            self._inbox.get_nowait()
            dropped += 1
        return dropped

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = list(self._reader_tasks)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass


async def create_tcp_transports(
    nprocs: int, host: str = "127.0.0.1", unix_dir: str | None = None
) -> list[TcpTransport]:
    """Start ``nprocs`` socket transports and share the address map.

    With ``unix_dir`` (and a platform that has ``AF_UNIX``) every node
    binds ``<unix_dir>/node-<id>.sock`` instead of a TCP port -- the
    same-host fast path.  Platforms without ``AF_UNIX`` fall back to
    TCP silently, so callers can always ask for ``unix_dir``.
    """
    use_unix = unix_dir is not None and have_af_unix()
    transports = [
        TcpTransport(
            i,
            nprocs,
            host,
            unix_path=os.path.join(unix_dir, f"node-{i}.sock")  # type: ignore[arg-type]
            if use_unix
            else None,
        )
        for i in range(nprocs)
    ]
    addresses: dict[int, str] = {}
    for t in transports:
        addresses[t.node_id] = await t.start()
    for t in transports:
        t.set_addresses(addresses)
    return transports


def create_mem_transports(nprocs: int) -> list[MemTransport]:
    """An in-memory fabric for ``nprocs`` nodes (one shared hub)."""
    return MemHub(nprocs).transports()
