"""Program MB deployed on the asyncio runtime.

The protocol brain is :class:`repro.simmpi.mb_impl.MBMachine` -- the
same sequence-number/control-position/phase state machine the
simulated-MPI deployment runs -- driven here by *real* asynchronous
messages: every state change (and every quiet ``push_interval``) pushes
the machine's exported state to both ring neighbours, and receiving a
push feeds :meth:`MBMachine.on_neighbor_state`.  The pushes are
idempotent, so the periodic retransmission is the entire loss-tolerance
story, exactly as in the paper's deployment sketch.

A crash-restart here *is* the MB detectable fault: :meth:`MBMachine.
reset` (``sn := BOT``, ``cp := error``, copies wiped) plus an inbox
drain -- the protocol's own repeat/re-execution machinery masks it.
A strike at ``when`` is due once the rank has completed ``when``
barriers -- progress-based, so a seeded plan lands mid-run at any
machine speed, but *not* quantized to the protocol's own structure:
the machine is wherever the ring's interleaving put it when the check
fires.  The MB run is monitored for guarantees rather than
digest-replayed, since its re-execution narration legitimately depends
on message interleaving.

Rank 0 narrates phase instances exactly like the simulated deployment
(:func:`repro.simmpi.mb_impl.mb_barrier_program`), counts globally
successful phases, and raises the ``done`` flag that floods the ring
inside the retransmitted pushes.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.barrier.control import CP
from repro.gc.domains import BOT, TOP
from repro.net.frames import Message
from repro.net.node import NetNode, Timing
from repro.net.transport import Transport
from repro.obs.tracer import NullTracer, Tracer
from repro.simmpi.mb_impl import MBMachine

#: Wire names for the CP enum and the special sequence numbers.
_CP_BY_NAME = {cp.name: cp for cp in CP}
_SPECIAL = {"BOT": BOT, "TOP": TOP}


def _encode_sn(value: object) -> object:
    if value is BOT:
        return "BOT"
    if value is TOP:
        return "TOP"
    return value


def _decode_sn(value: object) -> object:
    if isinstance(value, str):
        return _SPECIAL[value]
    return value


class MBRingNode(NetNode):
    """One rank of the MB ring over the asyncio transport."""

    def __init__(
        self,
        node_id: int,
        nprocs: int,
        transport: Transport,
        barriers: int,
        nphases: int = 4,
        crash_times: Sequence[float] = (),
        permanent_times: Sequence[float] = (),
        byzantine_times: Sequence[float] = (),
        tracer: Tracer | NullTracer | None = None,
        timing: Timing | None = None,
        defense: bool = True,
        plan_seed: int = 0,
        fail_stop_aware: bool = False,
    ) -> None:
        super().__init__(
            node_id,
            nprocs,
            transport,
            tracer,
            timing,
            defense=defense,
            plan_seed=plan_seed,
            fail_stop_aware=fail_stop_aware,
        )
        self.barriers = barriers
        self.machine = MBMachine(
            rank=node_id,
            size=nprocs,
            nphases=nphases,
            l_domain=2 * nprocs,
        )
        self._crash_times = sorted(crash_times)
        #: Progress marks at which this rank dies for good / turns
        #: Byzantine (same completed-barriers clock as ``crash_times``).
        self._permanent_times = sorted(permanent_times)
        self._byz_times = sorted(byzantine_times)
        self.completed = 0
        self.reexecutions = 0
        self._open_phase: int | None = None
        self._busy_task: asyncio.Task | None = None

    # -- topology ------------------------------------------------------
    @property
    def pred(self) -> int:
        return (self.node_id - 1) % self.nprocs

    @property
    def succ(self) -> int:
        return (self.node_id + 1) % self.nprocs

    def neighbors(self) -> list[int]:
        return sorted({self.pred, self.succ} - {self.node_id})

    # -- state pushes --------------------------------------------------
    def _state_payload(self) -> dict:
        sn, cp, ph, done = self.machine.exported_state()
        return {"sn": _encode_sn(sn), "cp": cp.name, "ph": ph, "done": done}

    async def _push(self) -> None:
        payload = self._state_payload()
        for peer in self.neighbors():
            await self.send_msg(peer, "push", payload)

    def handle(self, msg: Message) -> None:
        if msg.kind != "push":
            return
        if self.note_peer_incarnation(msg.src, msg.incarnation):
            # First push of a restarted neighbour: the detectable
            # fault's detection, exactly once per restart.
            if self.tracer.enabled:
                self.tracer.detect(
                    float(self.clock.tick()),
                    self.node_id,
                    peer=msg.src,
                    incarnation=msg.incarnation,
                )
        p = msg.payload
        sn, cp, ph = p.get("sn"), p.get("cp"), p.get("ph")
        if isinstance(sn, str) and sn not in _SPECIAL:
            return  # trusting mode: ignore garbage rather than raise
        if cp not in _CP_BY_NAME:
            return
        if not isinstance(ph, int) or isinstance(ph, bool):
            return
        self.machine.on_neighbor_state(
            msg.src,
            _decode_sn(sn),
            _CP_BY_NAME[cp],
            ph,
            bool(p.get("done", False)),
        )

    # -- defense -------------------------------------------------------
    def validate_msg(self, msg: Message) -> str | None:
        """Schema-only validation for the MB ring.

        MB's narration legitimately depends on message interleaving, so
        (unlike the tree's durable-round rule) there is no semantic
        predicate that is provably hostile without false-strike risk on
        honest ranks.  The schema envelope is still exact: an honest
        rank's exported state always wire-encodes inside it.
        """
        kind, src, p = msg.kind, msg.src, msg.payload
        if kind == "hb":
            return None
        if kind != "push":
            return "unknown-kind"
        if src not in self.neighbors():
            return "topology"
        sn = p.get("sn")
        if isinstance(sn, str):
            if sn not in _SPECIAL:
                return "schema"
        elif not isinstance(sn, int) or isinstance(sn, bool) or not (
            0 <= sn < self.machine.l_domain
        ):
            return "schema"
        if p.get("cp") not in _CP_BY_NAME:
            return "schema"
        ph = p.get("ph")
        if (
            not isinstance(ph, int)
            or isinstance(ph, bool)
            or not 0 <= ph < self.machine.nphases
        ):
            return "schema"
        if not isinstance(p.get("done", False), bool):
            return "schema"
        return None

    # -- Byzantine lie palette -----------------------------------------
    def distort(self, dst, kind, payload):
        """Lie in the state pushes; leave the framework channel alone.

        A Byzantine rank's exported state is arbitrary (the paper's
        ``?`` assignments), and arbitrary values land outside the honest
        wire envelope, so every variant is schema-invalid at a defending
        receiver: condemnation -- never a silent wrong phase count -- is
        the deterministic outcome.  Keyed on the exported protocol
        position, not the attempt, so every retransmission of one state
        lies identically.
        """
        if kind != "push":
            return kind, payload
        from repro.net.faults import _decision

        pick = int(
            _decision(
                self.plan_seed,
                "byz-mb",
                (self.node_id, payload.get("ph"), payload.get("cp")),
                0,
            )
            * 3
        )
        if pick == 0:
            return kind, {**payload, "cp": "?"}
        if pick == 1:
            return kind, {**payload, "ph": self.machine.nphases + 1}
        return kind, {**payload, "sn": "?"}

    # -- crash path ----------------------------------------------------
    def _crash_due(self) -> bool:
        """A strike at ``when`` is due once this rank has completed
        ``when`` barriers -- progress-based, so a seeded plan lands
        mid-run at any machine speed."""
        return bool(
            self._crash_times and self.completed >= self._crash_times[0]
        )

    def _narrate_crash(self) -> None:
        if self._open_phase is not None:
            # Rank 0's in-flight instance dies; MB will re-execute it.
            if self.tracer.enabled:
                self.tracer.phase_end(
                    float(self.clock.tick()), self._open_phase, False
                )
            self._open_phase = None

    async def _apply_crash(self) -> None:
        self._crash_times.pop(0)
        if self._busy_task is not None:
            self._busy_task.cancel()
            self._busy_task = None
        self.machine.reset()
        await self.crash_restart()
        # The reset machine rejoins the ring; MB's own repeat /
        # re-execution machinery takes it from here.
        if self.tracer.enabled:
            self.tracer.recovery(
                float(self.clock.tick()), self.node_id, completed=self.completed
            )

    # -- the protocol --------------------------------------------------
    def _drain_machine_events(self) -> None:
        narrate = self.tracer.enabled and self.node_id == 0
        while self.machine.events:
            event = self.machine.events.pop(0)
            if event == "enter-execute":
                if narrate and self._open_phase is None:
                    self._open_phase = self.machine.ph
                    self.tracer.phase_start(
                        float(self.clock.tick()), self._open_phase
                    )
                if self.timing.work and self._busy_task is None:
                    self.machine.busy = True
                    self._busy_task = self.spawn(self._work())
            elif event == "phase-complete":
                self.completed += 1
                if narrate and self._open_phase is not None:
                    self.tracer.phase_end(
                        float(self.clock.tick()), self._open_phase, True
                    )
                    self._open_phase = None
            elif event == "re-execute":
                self.reexecutions += 1
                if narrate and self._open_phase is not None:
                    self.tracer.phase_end(
                        float(self.clock.tick()), self._open_phase, False
                    )
                    self._open_phase = None

    async def _work(self) -> None:
        await asyncio.sleep(self.timing.work)
        self.machine.busy = False
        self._busy_task = None
        self._wake.set()

    async def _push_loop(self) -> None:
        """Periodic state retransmission -- MB's loss masking.  It keeps
        running after this rank's main loop returns (until the runtime
        stops the node), so the ``done`` flag reliably floods to ranks
        that are still circling."""
        while self._running:
            await asyncio.sleep(self.timing.push_interval)
            await self._push()

    def start_loops(self) -> None:
        super().start_loops()
        self.spawn(self._push_loop())

    async def run_protocol(self) -> None:
        """Drive the machine until the ring has completed ``barriers``
        globally successful phases (rank 0 decides, ``done`` floods)."""
        self.start_loops()
        interval = self.timing.push_interval
        await self._push()
        while True:
            if self.failsafe:
                # Fail-safe stop: close rank 0's in-flight instance as
                # failed and stop progressing -- the ring may end short
                # of ``barriers`` but never wrongly reports one.
                self._narrate_crash()
                return
            if self._byz_times and self.completed >= self._byz_times[0]:
                self._byz_times.pop(0)
                self.activate_byzantine()
            if self._permanent_times and self.completed >= self._permanent_times[0]:
                await self.fail_stop()
                return
            if self._crash_due():
                await self._apply_crash()
                await self._push()
            changed = self.machine.run_enabled()
            self._drain_machine_events()
            if self.node_id == 0 and self.completed >= self.barriers:
                self.machine.done = True
            if self.machine.done:
                # One farewell push; the push loop keeps flooding the
                # flag until every rank has wound down.
                await self._push()
                return
            if changed:
                await self._push()
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), interval)
            except asyncio.TimeoutError:
                pass
