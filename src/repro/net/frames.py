"""Wire format of the asyncio runtime: length-prefixed JSON frames.

One frame is ``<4-byte big-endian length><canonical JSON object>``.
The JSON object is a :class:`Message` envelope: protocol kind, source,
destination, per-link sequence number, sender incarnation, and a
Lamport clock sample, plus a free-form payload dict.  Canonical
encoding (sorted keys, no whitespace) means a message has exactly one
byte representation, which the fault injector exploits to make
per-message drop/delay decisions a pure function of content -- the
root of the runtime's replay determinism.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

#: Frame length prefix: 4-byte unsigned big-endian.
_LEN = struct.Struct(">I")

#: Upper bound on a frame body; anything larger is a protocol error.
MAX_FRAME = 1 << 20

#: Cross-shard record header: (src node, dst node) routed over one link.
_RECORD_HDR = struct.Struct(">II")

#: The canonical-JSON encoder, built once: ``json.dumps(..., sort_keys=
#: True, separators=(",", ":"))`` constructs a fresh ``JSONEncoder`` per
#: call, which is measurable at millions of messages (see the ``frames``
#: micro-bench in ``benchmarks/bench_net.py``).  Byte-for-byte the same
#: output as the per-call form.
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))

encode_canonical = _ENCODER.encode


class FrameError(ValueError):
    """Malformed frame or envelope."""


def encode_frame(body: bytes) -> bytes:
    """Wrap ``body`` in the length prefix (one pre-sized buffer, no
    intermediate concatenation)."""
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    out = bytearray(_LEN.size + len(body))
    _LEN.pack_into(out, 0, len(body))
    out[_LEN.size:] = body
    return bytes(out)


def append_frame(buffer: bytearray, body: bytes) -> None:
    """Append one length-prefixed frame to ``buffer`` in place -- the
    batching primitive: many frames accumulate in one buffer and leave
    in one syscall."""
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    offset = len(buffer)
    buffer.extend(b"\x00\x00\x00\x00")
    _LEN.pack_into(buffer, offset, len(body))
    buffer.extend(body)


def pack_record(src: int, dst: int, body: bytes) -> bytes:
    """A routed cross-shard record: ``(src, dst)`` header + frame body.
    Link peers exchange these inside ordinary length-prefixed frames, so
    :class:`FrameDecoder` splits a batched byte stream back into them."""
    out = bytearray(_RECORD_HDR.size + len(body))
    _RECORD_HDR.pack_into(out, 0, src, dst)
    out[_RECORD_HDR.size:] = body
    return bytes(out)


def unpack_record(record: bytes) -> tuple[int, int, bytes]:
    """Invert :func:`pack_record`; raises :class:`FrameError` on a
    truncated header."""
    if len(record) < _RECORD_HDR.size:
        raise FrameError(f"record of {len(record)} bytes has no routing header")
    src, dst = _RECORD_HDR.unpack_from(record)
    return src, dst, record[_RECORD_HDR.size:]


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get whole frames.

    This is the stream side of the codec (TCP delivers bytes, not
    frames); the in-memory transport hands frames around whole and
    never needs it.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> Iterator[bytes]:
        """Consume ``chunk``; yield every frame body it completes."""
        self._buffer.extend(chunk)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME}")
            end = _LEN.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_LEN.size:end])
            del self._buffer[:end]
            yield body

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet framed."""
        return len(self._buffer)


@dataclass(frozen=True)
class Message:
    """The protocol envelope every frame carries.

    ``seq`` is per ``(src, dst, incarnation)`` and monotone, which is
    what receiver-side dedup keys on; ``lamport`` stamps the sender's
    logical clock so merged traces have a causal order.
    """

    kind: str
    src: int
    dst: int
    seq: int
    incarnation: int = 0
    lamport: int = 0
    payload: Mapping[str, Any] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Canonical JSON body (stable byte representation)."""
        record = {
            "k": self.kind,
            "s": self.src,
            "d": self.dst,
            "q": self.seq,
            "i": self.incarnation,
            "lc": self.lamport,
            "p": dict(self.payload),
        }
        return encode_canonical(record).encode()

    #: The envelope's wire keys; strict decode rejects anything else.
    _KEYS = frozenset({"k", "s", "d", "q", "i", "lc", "p"})

    @classmethod
    def from_bytes(cls, body: bytes, strict: bool = False) -> "Message":
        """Decode and schema-validate an envelope.

        Every field is type- and range-checked (a hostile peer may send
        anything), so a decoded :class:`Message` is safe to index on:
        ``src``/``dst``/``seq``/``incarnation``/``lamport`` are
        non-negative ints, ``kind`` a short string, ``payload`` a dict.
        ``strict=True`` additionally rejects unknown keys and
        non-canonical encodings (whitespace, key order, duplicate
        keys), so one logical message keeps exactly one byte
        representation even against an adversary.
        """
        try:
            record = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"undecodable frame body: {exc}") from exc
        if not isinstance(record, dict):
            raise FrameError(
                f"envelope is not an object: {type(record).__name__}"
            )
        kind = record.get("k")
        if not isinstance(kind, str) or not 1 <= len(kind) <= 32:
            raise FrameError(f"bad message kind {kind!r}")
        fields: dict[str, int] = {}
        for key, name, default in (
            ("s", "src", None),
            ("d", "dst", None),
            ("q", "seq", None),
            ("i", "incarnation", 0),
            ("lc", "lamport", 0),
        ):
            value = record.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise FrameError(f"bad {name} field {value!r}")
            fields[name] = value
        payload = record.get("p", {})
        if not isinstance(payload, dict):
            raise FrameError(
                f"payload is not an object: {type(payload).__name__}"
            )
        if strict:
            unknown = set(record) - cls._KEYS
            if unknown:
                raise FrameError(f"unknown envelope keys {sorted(unknown)}")
            if encode_canonical(record).encode() != body:
                raise FrameError("non-canonical envelope encoding")
        return cls(kind=kind, payload=payload, **fields)

    @property
    def dedup_key(self) -> tuple[int, int, int]:
        return (self.src, self.incarnation, self.seq)


def frame_digest(body: bytes) -> bytes:
    """Stable identity of a frame body (fault decisions hash this)."""
    return hashlib.sha256(body).digest()


#: Max tracked sequence numbers above the low-water mark per sender
#: incarnation.  Legitimate gaps come from loss/reorder and stay tiny
#: (resends advance the mark); a forged far-future seq would otherwise
#: pin an entry in the sparse set for the rest of the run.
MAX_SEQ_WINDOW = 4096


class DedupIndex:
    """Receiver-side exactly-once filter over ``(src, inc, seq)``.

    Sequence numbers are monotone per sender incarnation, but loss and
    reordering mean they arrive with gaps and out of order, so the
    index keeps, per ``(src, inc)``, a low-water mark plus the sparse
    set of seen sequence numbers above it -- O(1) amortized and bounded
    by the reorder window rather than the run length.

    Memory stays bounded against adversarial traffic too: dead
    incarnations are pruned (and floored, so replays from a sender's
    previous lives are filtered without re-tracking them) when the
    runtime observes an incarnation bump, and sequence numbers more
    than :data:`MAX_SEQ_WINDOW` above the mark are refused outright.
    """

    def __init__(self) -> None:
        #: (src, inc) -> [low-water mark, set of seen seqs > mark]
        self._seen: dict[tuple[int, int], list[Any]] = {}
        #: src -> lowest incarnation still accepted.
        self._floor: dict[int, int] = {}

    def accept(self, src: int, incarnation: int, seq: int) -> bool:
        """True exactly once per (src, incarnation, seq)."""
        if incarnation < self._floor.get(src, 0):
            return False  # replayed traffic from a pruned incarnation
        key = (src, incarnation)
        entry = self._seen.get(key)
        if entry is None:
            entry = self._seen[key] = [-1, set()]
        mark, above = entry
        if seq <= mark or seq in above:
            return False
        if seq > mark + MAX_SEQ_WINDOW:
            return False  # forged far-future seq: refuse to track it
        above.add(seq)
        while mark + 1 in above:
            mark += 1
            above.discard(mark)
        entry[0] = mark
        return True

    def forget_older_incarnations(self, src: int, incarnation: int) -> None:
        """Drop state for a sender's previous lives (post-restart) and
        floor the sender so those lives cannot be re-tracked."""
        self._floor[src] = max(self._floor.get(src, 0), incarnation)
        for key in [k for k in self._seen if k[0] == src and k[1] < incarnation]:
            del self._seen[key]

    @property
    def tracked(self) -> int:
        """Live (src, incarnation) entries (memory-bound tests)."""
        return len(self._seen)


class LamportClock:
    """The runtime's logical clock: one per node, ticked on every local
    event and advanced past every received stamp, so the merged trace
    of all nodes has a causality-respecting total order."""

    def __init__(self) -> None:
        self.value = 0

    def tick(self) -> int:
        self.value += 1
        return self.value

    def update(self, remote: int) -> int:
        self.value = max(self.value, remote) + 1
        return self.value
