"""The sharded runtime: process-per-shard event loops at 1000+ nodes.

One asyncio loop tops out at a few dozen protocol nodes: every node's
resend and heartbeat timer competes for the same GIL, round latency
grows with N, and once it crosses the resend interval the runtime
enters a message-amplification feedback (resends beget work beget
longer rounds beget more resends) that diverges outright around a
couple hundred nodes.  :func:`run_sharded` splits the node set across
``config.shards`` worker processes -- each running its *own* event
loop over the existing, unchanged node classes -- so the per-loop node
count stays in the regime where the timers are honest.

Topology-aware partitioning (:func:`partition_nodes`) keeps protocol
edges inside shards: the tree protocol is cut at the shallowest heap
level with at least ``shards`` subtree roots (whole subtrees stay
together, so only O(shards) edges cross), the ring is cut into
contiguous arcs (exactly ``shards`` cross edges).  In-shard traffic
rides the same :class:`~repro.net.transport.MemTransport`-style queues
as the single-loop runtime; cross-shard traffic rides one
:class:`ShardLink` per shard pair -- a Unix-domain (or TCP) socket
carrying length-prefixed *routing records* (``(src, dst)`` header +
frame body, :func:`~repro.net.frames.pack_record`).  Links batch: a
record appends to a per-link buffer that flushes on a size boundary
(``config.batch_bytes``) or at the end of the current event-loop turn,
so a resend burst of hundreds of messages leaves in a handful of
syscalls.

Every existing guarantee survives sharding:

* **Replay determinism** -- :class:`~repro.net.faults.FaultyTransport`
  decisions are pure hashes of ``(seed, channel, message identity,
  attempt)`` made on the *sender's* wrapper, so the same plan yields
  the same drops/dups/delays no matter which loop the sender runs in.
  Two sharded runs with one seed, and a sharded vs a single-loop run,
  produce identical trace digests (gated by test and CI).
* **Telemetry** -- each worker runs a
  :class:`~repro.obs.recorder.FlightRecorder` per node with
  ``protocol_log=True``, ships the O(rounds) protocol events and
  digest rows back over the result pipe, and the coordinator
  Lamport-merges them into the PR-1 event schema and runs the PR-4
  guarantee monitors post-hoc -- same verdicts, same digest algebra
  (event times are Lamport stamps, so cross-process merge order is
  exact, not wall-clock-approximate).
* **Config surface** -- ``NetConfig(shards=..., shard_transport=...)``
  and :func:`~repro.net.runtime.run_sync` dispatches here
  transparently.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import tempfile
import time as _time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.net.frames import FrameDecoder, append_frame, pack_record, unpack_record
from repro.net.transport import (
    Transport,
    TransportClosed,
    have_af_unix,
    open_address,
)
from repro.obs.events import FAULT, PHASE_END, ObsEvent

#: Seconds the coordinator grants workers on top of ``timeout_s`` for
#: interpreter start-up, imports and result shipping.
STARTUP_GRACE = 30.0

SHARD_TRANSPORTS = ("auto", "unix", "tcp")


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def partition_nodes(
    nodes: int, shards: int, protocol: str = "tree", arity: int = 2
) -> list[int]:
    """Map every pid to a shard, keeping protocol edges local.

    Tree: contiguous pid blocks would put almost *every* heap edge
    (parent of ``p`` is ``(p-1)//arity``) across shards, so instead the
    tree is cut at the shallowest level with >= ``shards`` subtree
    roots; the roots are distributed in contiguous runs, every deeper
    pid inherits its depth-``d`` ancestor's shard, and every shallower
    pid follows its leftmost descendant (which keeps each
    parent--leftmost-child edge local: only O(shards) edges cross).

    Ring (mb): contiguous arcs, exactly ``shards`` cross edges.
    """
    if shards <= 1:
        return [0] * nodes
    shards = min(shards, nodes)
    if protocol != "tree":
        return [pid * shards // nodes for pid in range(nodes)]

    # Smallest heap level whose *existing* population covers the shards.
    base, width = 0, 1
    while True:
        existing = max(0, min(nodes, base + width) - base)
        if existing >= shards:
            break
        if base + width >= nodes:
            # Ragged tiny tree: no level is wide enough; arcs are fine.
            return [pid * shards // nodes for pid in range(nodes)]
        base += width
        width = width * arity if arity > 1 else 1
    roots = list(range(base, min(base + width, nodes)))
    root_shard = {r: i * shards // len(roots) for i, r in enumerate(roots)}

    def anchor(pid: int) -> int:
        p = pid
        while p >= base + width:  # below the cut: climb to the ancestor
            p = (p - 1) // arity if arity > 1 else p - 1
        while p < base:  # above the cut: follow the leftmost child chain
            p = arity * p + 1 if arity > 1 else p + 1
        return p if p in root_shard else roots[-1]

    return [root_shard[anchor(pid)] for pid in range(nodes)]


def cross_edges(partition: list[int], protocol: str, arity: int = 2) -> int:
    """Count protocol edges whose endpoints land on different shards."""
    n = len(partition)
    crossing = 0
    if protocol == "tree":
        for pid in range(1, n):
            parent = (pid - 1) // arity if arity > 1 else pid - 1
            if partition[pid] != partition[parent]:
                crossing += 1
    else:
        for pid in range(n):
            if partition[pid] != partition[(pid + 1) % n]:
                crossing += 1
    return crossing


# ----------------------------------------------------------------------
# Worker-side fabric
# ----------------------------------------------------------------------
class ShardLink:
    """One batched byte pipe to a peer shard.

    ``send_record`` appends a length-prefixed routing record to the
    link buffer; the buffer flushes when it crosses ``batch_bytes`` or
    -- via ``loop.call_soon`` -- at the end of the current event-loop
    turn, whichever comes first.  Many protocol messages therefore
    share each ``write`` syscall, which is what amortizes the wire
    cost of cutting the topology.
    """

    def __init__(self, address: str, batch_bytes: int) -> None:
        self.address = address
        self.batch_bytes = max(1, batch_bytes)
        self._writer: asyncio.StreamWriter | None = None
        self._buffer = bytearray()
        self._flush_scheduled = False
        self._dial_lock = asyncio.Lock()
        self._closed = False
        self.stats = {"records": 0, "flushes": 0, "bytes": 0}

    async def _ensure_writer(self) -> asyncio.StreamWriter:
        if self._writer is not None and not self._writer.is_closing():
            return self._writer
        async with self._dial_lock:
            if self._writer is None or self._writer.is_closing():
                _reader, self._writer = await open_address(self.address)
            return self._writer

    async def send_record(self, record: bytes) -> None:
        if self._closed:
            return
        try:
            await self._ensure_writer()
        except (ConnectionError, OSError):
            return  # peer shard is tearing down; resends will retry
        append_frame(self._buffer, record)
        self.stats["records"] += 1
        if len(self._buffer) >= self.batch_bytes:
            self._flush()
            if self._writer is not None:
                try:
                    await self._writer.drain()  # backpressure on bursts
                except (ConnectionError, OSError):
                    pass
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._turn_flush)

    def _turn_flush(self) -> None:
        self._flush_scheduled = False
        self._flush()

    def _flush(self) -> None:
        if not self._buffer or self._writer is None or self._writer.is_closing():
            return
        payload = bytes(self._buffer)
        self._buffer.clear()
        try:
            self._writer.write(payload)
        except (ConnectionError, OSError):
            return
        self.stats["flushes"] += 1
        self.stats["bytes"] += len(payload)

    async def close(self) -> None:
        self._closed = True
        self._flush()
        if self._writer is not None:
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass
            self._writer = None


class ShardFabric:
    """One worker's switch: local queues + links + the link listener.

    Routing is record-addressed -- every cross-shard frame carries its
    ``(src, dst)`` header -- so the listener needs no HELLO handshake:
    any peer's batched stream demultiplexes straight into the local
    per-node queues.
    """

    def __init__(
        self,
        shard_id: int,
        partition: list[int],
        batch_bytes: int,
        unix_path: str | None,
    ) -> None:
        self.shard_id = shard_id
        self.partition = partition
        self.batch_bytes = batch_bytes
        self.unix_path = unix_path
        self.local_pids = [
            pid for pid, shard in enumerate(partition) if shard == shard_id
        ]
        self.queues: dict[int, asyncio.Queue[tuple[int, bytes]]] = {
            pid: asyncio.Queue() for pid in self.local_pids
        }
        self.links: dict[int, ShardLink] = {}
        self.address: str | None = None
        self._server: asyncio.base_events.Server | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self._closed = False

    # -- listener ------------------------------------------------------
    async def start(self) -> str:
        """Bind this shard's link listener; returns its address."""
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, self.unix_path
            )
            self.address = f"unix://{self.unix_path}"
        else:
            self._server = await asyncio.start_server(
                self._on_connection, "127.0.0.1", 0
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = f"tcp://127.0.0.1:{port}"
        return self.address

    def connect(self, addresses: Mapping[int, str]) -> None:
        """Learn the peer shards' listener addresses (links dial lazily)."""
        for shard, address in addresses.items():
            if shard != self.shard_id:
                self.links[shard] = ShardLink(address, self.batch_bytes)

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        decoder = FrameDecoder()
        try:
            while not self._closed:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    src, dst, body = unpack_record(frame)
                    queue = self.queues.get(dst)
                    if queue is not None:  # else: stale route, drop
                        queue.put_nowait((src, body))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()

    # -- node ports ----------------------------------------------------
    def transports(self) -> dict[int, "ShardTransport"]:
        return {pid: ShardTransport(pid, self) for pid in self.local_pids}

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for link in self.links.values():
            await link.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = list(self._reader_tasks)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass

    def link_stats(self) -> dict[str, int]:
        totals = {"xshard_records": 0, "xshard_flushes": 0, "xshard_bytes": 0}
        for link in self.links.values():
            totals["xshard_records"] += link.stats["records"]
            totals["xshard_flushes"] += link.stats["flushes"]
            totals["xshard_bytes"] += link.stats["bytes"]
        return totals


class ShardTransport(Transport):
    """One node's port on a :class:`ShardFabric`: local sends are queue
    puts (exactly :class:`~repro.net.transport.MemTransport` semantics),
    remote sends become routing records on the peer shard's link."""

    def __init__(self, node_id: int, fabric: ShardFabric) -> None:
        super().__init__(node_id, len(fabric.partition))
        self.fabric = fabric
        self._closed = False

    async def send(self, dst: int, body: bytes) -> None:
        if self._closed:
            raise TransportClosed(f"node {self.node_id}: transport closed")
        if not 0 <= dst < self.nprocs:
            raise ValueError(f"destination {dst} out of range")
        shard = self.fabric.partition[dst]
        if shard == self.fabric.shard_id:
            self.fabric.queues[dst].put_nowait((self.node_id, body))
        else:
            link = self.fabric.links.get(shard)
            if link is not None:
                await link.send_record(pack_record(self.node_id, dst, body))

    async def recv(self, timeout: float | None = None) -> tuple[int, bytes] | None:
        if self._closed:
            raise TransportClosed(f"node {self.node_id}: transport closed")
        queue = self.fabric.queues[self.node_id]
        if timeout is None:
            return await queue.get()
        try:
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def drain(self) -> int:
        queue = self.fabric.queues[self.node_id]
        dropped = 0
        while not queue.empty():
            queue.get_nowait()
            dropped += 1
        return dropped

    async def close(self) -> None:
        self._closed = True  # the fabric outlives individual node ports


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs, picklable for ``spawn``."""

    shard_id: int
    shards: int
    partition: tuple[int, ...]
    config: Any  # NetConfig (picklable once tracer_factory is None)
    unix_path: str | None


def _worker_main(spec: ShardSpec, conn: Any) -> None:
    """Process entry point (top-level for the spawn pickler)."""
    try:
        payload = asyncio.run(_worker_async(spec, conn))
        conn.send(("result", payload))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


async def _worker_async(spec: ShardSpec, conn: Any) -> dict[str, Any]:
    from repro.net.faults import FaultyTransport
    from repro.net.mbnode import MBRingNode
    from repro.net.runtime import _fault_schedules
    from repro.net.tree import TreeBarrierNode
    from repro.obs.recorder import FlightRecorder
    from repro.obs.tracer import NullTracer

    config = spec.config
    fabric = ShardFabric(
        spec.shard_id, list(spec.partition), config.batch_bytes, spec.unix_path
    )
    address = await fabric.start()
    conn.send(("address", spec.shard_id, address))
    # Blocking recv is safe here: no protocol task runs yet, and peers
    # only dial after everyone has the address map.
    op, addresses, epoch = conn.recv()
    if op != "go":
        raise RuntimeError(f"unexpected coordinator message {op!r}")
    fabric.connect(addresses)

    plan = config.plan
    faulty = bool(
        plan is not None
        and ((plan.link is not None and plan.link.any) or plan.partitions)
    )
    ports = fabric.transports()
    transports: dict[int, Any] = dict(ports)
    if faulty:
        # Epoch-relative wall clock: one timeline for partition windows
        # across every worker (sub-ms skew; windows are seconds-wide).
        clock = lambda: _time.time() - epoch  # noqa: E731
        transports = {
            pid: FaultyTransport(t, plan, clock=clock, max_delay=config.max_delay)
            for pid, t in ports.items()
        }

    tracers: dict[int, Any]
    if not config.tracing:
        tracers = {pid: NullTracer() for pid in fabric.local_pids}
    else:
        capacity = config.ring_capacity if config.live_mode else 65536
        tracers = {
            pid: FlightRecorder(capacity=capacity, pid=pid, protocol_log=True)
            for pid in fabric.local_pids
        }

    crashes, permanents, byzantines = _fault_schedules(plan)
    # Mirrors the single-loop runtime's node wiring exactly: fault
    # schedules, defense switch, plan seed and fail-stop awareness must
    # match or sharded digests diverge from single-loop ones.
    plan_seed = plan.seed if plan is not None else config.seed
    fail_stop_aware = bool(permanents)
    nodes: dict[int, Any] = {}
    mains = []
    for pid in fabric.local_pids:
        if config.protocol == "tree":
            node = TreeBarrierNode(
                pid,
                config.nodes,
                transports[pid],
                barriers=config.barriers,
                arity=config.arity,
                crash_rounds=[max(0, int(w)) for w in crashes.get(pid, ())],
                permanent_rounds=[
                    max(0, int(w)) for w in permanents.get(pid, ())
                ],
                byzantine_rounds=[
                    max(0, int(w)) for w in byzantines.get(pid, ())
                ],
                tracer=tracers[pid],
                timing=config.timing,
                defense=config.defense,
                plan_seed=plan_seed,
                fail_stop_aware=fail_stop_aware,
            )
            mains.append(node.run_rounds())
        else:
            node = MBRingNode(
                pid,
                config.nodes,
                transports[pid],
                barriers=config.barriers,
                nphases=config.nphases,
                crash_times=crashes.get(pid, ()),
                permanent_times=permanents.get(pid, ()),
                byzantine_times=byzantines.get(pid, ()),
                tracer=tracers[pid],
                timing=config.timing,
                defense=config.defense,
                plan_seed=plan_seed,
                fail_stop_aware=fail_stop_aware,
            )
            mains.append(node.run_protocol())
        nodes[pid] = node

    wall_start = _time.perf_counter()
    gathered = asyncio.gather(*mains)
    timed_out = False
    try:
        await asyncio.wait_for(gathered, config.timeout_s)
    except asyncio.TimeoutError:
        timed_out = True
        gathered.cancel()
        try:
            await gathered
        except (asyncio.CancelledError, Exception):
            pass
    finally:
        for node in nodes.values():
            await node.stop()
        for transport in transports.values():
            await transport.close()
        await fabric.close()
    wall_s = _time.perf_counter() - wall_start

    link_stats = fabric.link_stats()
    if faulty:
        for transport in transports.values():
            for key, value in transport.stats.items():
                link_stats[key] = link_stats.get(key, 0) + value

    trace_paths: list[str] = []
    rows: dict[int, list] = {pid: [] for pid in fabric.local_pids}
    events: dict[int, list[ObsEvent]] = {pid: [] for pid in fabric.local_pids}
    rings: dict[int, dict[str, int]] = {}
    if config.tracing:
        for pid, tracer in tracers.items():
            rows[pid] = tracer.rows
            events[pid] = list(tracer.protocol_events)
            rings[pid] = {"appended": tracer.appended, "dropped": tracer.dropped}
        if config.trace_dir is not None:
            out = Path(config.trace_dir)
            out.mkdir(parents=True, exist_ok=True)
            for pid, tracer in tracers.items():
                path = out / f"flight-{pid}.snapshot.jsonl"
                tracer.dump_snapshot(path)
                trace_paths.append(str(path))

    return {
        "shard_id": spec.shard_id,
        "timed_out": timed_out,
        "failsafe_stop": any(
            getattr(node, "failsafe", False) or getattr(node, "dead", False)
            for node in nodes.values()
        ),
        "rounds": {
            pid: (node.round if config.protocol == "tree" else node.completed)
            for pid, node in nodes.items()
        },
        "rows": rows,
        "events": events,
        "rings": rings,
        "node_stats": {pid: dict(node.stats) for pid, node in nodes.items()},
        "link_stats": link_stats,
        "wall_s": wall_s,
        "trace_paths": trace_paths,
    }


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def run_sharded(config: Any) -> Any:
    """Run ``config`` across ``config.shards`` worker processes.

    Blocking, like :func:`~repro.net.runtime.run_sync` (which dispatches
    here when ``shards > 1``).  The coordinator spawns workers, brokers
    the link-address handshake, then collects per-shard results and
    rebuilds a :class:`~repro.net.runtime.NetResult`: digest from the
    shipped projection rows, monitors over the Lamport-merged protocol
    events, stats summed.
    """
    from repro.chaos.plan import FaultPlan
    from repro.net.runtime import NetResult, _metrics_summary
    from repro.net.trace import check_merged, merge_traces
    from repro.obs.recorder import digest_of_rows
    from repro.obs.tracer import Tracer

    shards = min(config.shards, config.nodes)
    partition = partition_nodes(config.nodes, shards, config.protocol, config.arity)
    if config.shard_transport == "unix" and not have_af_unix():
        raise RuntimeError("shard_transport='unix' but this platform lacks AF_UNIX")
    use_unix = config.shard_transport == "unix" or (
        config.shard_transport == "auto" and have_af_unix()
    )

    ctx = multiprocessing.get_context("spawn")
    wall_start = _time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="shard-") as sockdir:
        procs: list[Any] = []
        conns: list[Any] = []
        try:
            for shard_id in range(shards):
                parent_conn, child_conn = ctx.Pipe()
                spec = ShardSpec(
                    shard_id=shard_id,
                    shards=shards,
                    partition=tuple(partition),
                    config=config,
                    unix_path=os.path.join(sockdir, f"shard-{shard_id}.sock")
                    if use_unix
                    else None,
                )
                proc = ctx.Process(
                    target=_worker_main, args=(spec, child_conn), daemon=True
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)

            deadline = _time.monotonic() + STARTUP_GRACE
            addresses: dict[int, str] = {}
            for conn in conns:
                msg = _pipe_recv(conn, deadline, "address handshake")
                if msg[0] == "error":
                    raise RuntimeError(f"shard worker failed:\n{msg[1]}")
                _op, shard_id, address = msg
                addresses[shard_id] = address

            epoch = _time.time()
            for conn in conns:
                conn.send(("go", addresses, epoch))

            # The run clock starts at "go": grant the workers their
            # protocol deadline plus shipping slack from here.  Slack is
            # generous because a worker that hits its own timeout still
            # has to cancel nodes, drain queues and pickle results.
            deadline = (
                _time.monotonic()
                + config.timeout_s
                + max(STARTUP_GRACE, config.timeout_s)
            )
            payloads: list[dict[str, Any]] = []
            for conn in conns:
                msg = _pipe_recv(conn, deadline, "shard result")
                if msg[0] == "error":
                    raise RuntimeError(f"shard worker failed:\n{msg[1]}")
                payloads.append(msg[1])
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
    wall_total = _time.perf_counter() - wall_start

    # -- merge ---------------------------------------------------------
    rounds: dict[int, int] = {}
    rows_by_pid: dict[int, list] = {}
    events_by_pid: dict[int, list[ObsEvent]] = {}
    node_stats: dict[int, dict[str, int]] = {}
    link_stats: dict[str, int] = {}
    rings: dict[str, dict[str, int]] = {}
    shard_walls: list[float] = []
    trace_paths: list[str] = []
    timed_out = False
    failsafe_stop = False
    for payload in payloads:
        timed_out = timed_out or payload["timed_out"]
        failsafe_stop = failsafe_stop or payload.get("failsafe_stop", False)
        rounds.update(payload["rounds"])
        rows_by_pid.update(payload["rows"])
        events_by_pid.update(payload["events"])
        node_stats.update(payload["node_stats"])
        for pid, stats in payload["rings"].items():
            rings[str(pid)] = stats
        for key, value in payload["link_stats"].items():
            link_stats[key] = link_stats.get(key, 0) + value
        shard_walls.append(payload["wall_s"])
        trace_paths.extend(payload["trace_paths"])

    if config.protocol == "tree":
        completed = min(rounds.values())
        reached = all(r >= config.barriers for r in rounds.values())
    else:
        completed = rounds.get(0, 0)
        reached = completed >= config.barriers
    reached = reached and not timed_out

    merged = merge_traces(events_by_pid)
    digest = digest_of_rows(rows_by_pid)
    nphases = None if config.protocol == "tree" else config.nphases
    check_plan = (
        config.plan if config.plan is not None else FaultPlan(nprocs=config.nodes)
    )
    violations, spans = check_merged(merged, check_plan, nphases, reached)
    successful = sum(
        1
        for e in events_by_pid.get(0, [])
        if e.kind == PHASE_END and e.data.get("success")
    )
    faults_fired = sum(
        1 for events in events_by_pid.values() for e in events if e.kind == FAULT
    )

    if config.trace_dir is not None and config.tracing:
        out = Path(config.trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        merged_path = out / "merged.jsonl"
        Tracer.from_events(merged).dump_jsonl(merged_path)
        trace_paths.append(str(merged_path))

    metrics_summary = _metrics_summary(
        check_plan, nphases, digest, violations, spans, None
    )
    metrics_summary["shards"] = {
        "count": shards,
        "transport": "unix" if use_unix else "tcp",
        "partition_cross_edges": cross_edges(partition, config.protocol, config.arity),
        "shard_walls": shard_walls,
        "coordinator_wall_s": wall_total,
    }
    if rings:
        metrics_summary["rings"] = rings

    return NetResult(
        config=config,
        reached=reached,
        completed=completed,
        successful_phases=successful,
        faults_fired=faults_fired,
        digest=digest,
        end_time=merged[-1].time if merged else 0.0,
        # Protocol wall: the slowest shard's run phase; spawn/import
        # overhead is excluded (reported separately in metrics).
        wall_s=max(shard_walls) if shard_walls else wall_total,
        failsafe_stop=failsafe_stop,
        violations=list(violations),
        spans=list(spans),
        node_stats=node_stats,
        link_stats=link_stats,
        merged_events=merged,
        trace_paths=trace_paths,
        metrics_summary=metrics_summary,
    )


def _pipe_recv(conn: Any, deadline: float, what: str) -> Any:
    """Receive one pipe message before ``deadline`` (monotonic)."""
    remaining = deadline - _time.monotonic()
    if remaining <= 0 or not conn.poll(remaining):
        raise TimeoutError(f"timed out waiting for {what}")
    try:
        return conn.recv()
    except EOFError as exc:
        raise RuntimeError(f"shard worker died before sending {what}") from exc
