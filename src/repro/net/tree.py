"""The tree barrier as an explicit message protocol.

This is the deployment of the paper's RB-on-trees discipline over real
(lossy, reordering, partitionable) channels: each barrier round *r* is
an arrive wave up the tree and a release wave down it.

* a node reliably resends ``arrive(r)`` to its parent until it sees a
  ``release(r')`` with ``r' >= r``;
* a parent answers a *stale* arrive (``r`` < its round) with a direct
  one-shot ``release(r)`` -- the idempotent reply that heals any loss
  or crash on the downstream path;
* releases are resent until the child acks (``rack``), and both waves
  are monotone (tracked as per-peer high-water marks), so duplicates
  and reordering are harmless by construction.

Crash-restart is the paper's detectable-fault reset path: the node
loses every volatile table (arrivals, acks, dedup, pending resends, the
inbox), keeps only its durable round counter -- the stable phase
counter of Herman-style phase clocks -- and comes back as a new
incarnation announcing itself with reliable ``resync`` messages.
Neighbours answer ``sync`` (emitting one ``detect`` per restart), the
restarted node emits ``recovery``, and the round it was executing is
simply re-run.  Crash points are quantized to round entry, which is
what makes a seeded run replay to an identical trace digest: every
narrated event is a function of the node's own round sequence, never of
message timing.

Only the root narrates phase instances (``phase_start`` /
``phase_end``), mirroring how the simulated engines are monitored; a
root crash mid-instance closes the instance as failed and re-executes
it -- masking made visible in the trace.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.net.frames import Message
from repro.net.node import NetNode, Timing
from repro.net.transport import Transport
from repro.obs.tracer import NullTracer, Tracer


def tree_parent(node_id: int, arity: int) -> int | None:
    return None if node_id == 0 else (node_id - 1) // arity


def tree_children(node_id: int, arity: int, nprocs: int) -> list[int]:
    lo = arity * node_id + 1
    return [c for c in range(lo, lo + arity) if c < nprocs]


class TreeBarrierNode(NetNode):
    """One process of the distributed tree barrier."""

    def __init__(
        self,
        node_id: int,
        nprocs: int,
        transport: Transport,
        barriers: int,
        arity: int = 2,
        crash_rounds: Sequence[int] = (),
        permanent_rounds: Sequence[int] = (),
        byzantine_rounds: Sequence[int] = (),
        tracer: Tracer | NullTracer | None = None,
        timing: Timing | None = None,
        defense: bool = True,
        plan_seed: int = 0,
        fail_stop_aware: bool = False,
    ) -> None:
        super().__init__(
            node_id,
            nprocs,
            transport,
            tracer,
            timing,
            defense=defense,
            plan_seed=plan_seed,
            fail_stop_aware=fail_stop_aware,
        )
        self.barriers = barriers
        self.arity = arity
        self.parent = tree_parent(node_id, arity)
        self.children = tree_children(node_id, arity, nprocs)
        self._crashes = sorted(crash_rounds)
        #: Rounds at whose entry this node crashes *permanently*.
        self._permanent = sorted(permanent_rounds)
        #: Rounds at whose entry this node turns Byzantine.
        self._byz_rounds = sorted(byzantine_rounds)
        #: Durable round counter (the stable phase clock): the next
        #: round to complete.  Everything else is volatile.
        self.round = 0
        self.completed = 0
        # -- volatile protocol tables --
        self._last_arrive: dict[int, int] = {}
        self._max_release = -1
        self._release_acked: dict[int, int] = {}
        self._synced: set[int] = set()
        self._open_phase: int | None = None  # root's in-flight instance

    # -- protocol state ------------------------------------------------
    def neighbors(self) -> list[int]:
        peers = list(self.children)
        if self.parent is not None:
            peers.append(self.parent)
        return peers

    def reset_volatile(self) -> None:
        super().reset_volatile()
        self._last_arrive = {}
        self._max_release = -1
        self._release_acked = {}
        self._synced = set()

    # -- handlers ------------------------------------------------------
    def handle(self, msg: Message) -> None:
        kind, src, p = msg.kind, msg.src, msg.payload
        if kind in ("arrive", "release", "rack"):
            r = p.get("round")
            if not isinstance(r, int) or isinstance(r, bool):
                return  # trusting mode: ignore garbage rather than raise
        if kind == "arrive":
            if r > self._last_arrive.get(src, -1):
                self._last_arrive[src] = r
            if r < self.round:
                # Stale arrive: the child missed (or we lost) the
                # release for a finished round -- answer directly.
                self.spawn(self.send_msg(src, "release", {"round": r}))
        elif kind == "release":
            if r > self._max_release:
                self._max_release = r
            self.spawn(self.send_msg(src, "rack", {"round": r}))
        elif kind == "rack":
            if r > self._release_acked.get(src, -1):
                self._release_acked[src] = r
        elif kind == "resync":
            if self.note_peer_incarnation(src, msg.incarnation):
                if self.tracer.enabled:
                    self.tracer.detect(
                        float(self.clock.tick()),
                        self.node_id,
                        peer=src,
                        incarnation=msg.incarnation,
                    )
            self.spawn(
                self.send_msg(
                    src, "sync", {"round": self.round, "ack": msg.incarnation}
                )
            )
        elif kind == "sync":
            if p.get("ack", -1) == self.incarnation:
                self._synced.add(src)
        # hb needs no handler: receipt already fed dedup and the clock.

    # -- defense -------------------------------------------------------
    def validate_msg(self, msg: Message) -> str | None:
        """Reject every frame an honest peer could not send *right now*.

        The load-bearing invariant is the durable round counter: it
        survives crash-restart (only the volatile tables reset), and a
        child can never be ahead of its parent (releases gate round
        advance), so every honest ``arrive``/``release``/``rack``
        carries ``round <= self.round`` -- even mid-recovery.  A higher
        round is therefore a *proof* of misbehaviour, never a race.
        """
        kind, src, p = msg.kind, msg.src, msg.payload
        if kind == "hb":
            return None
        if kind in ("arrive", "release", "rack"):
            r = p.get("round")
            if not isinstance(r, int) or isinstance(r, bool) or r < 0:
                return "schema"
            if kind == "release":
                if src != self.parent:
                    return "topology"
            elif src not in self.children:
                return "topology"
            if r > self.round:
                return "future-round"
            return None
        if kind == "resync":
            return None if src in self.neighbors() else "topology"
        if kind == "sync":
            if src not in self.neighbors():
                return "topology"
            for key in ("round", "ack"):
                v = p.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    return "schema"
            return None
        return "unknown-kind"

    # -- Byzantine lie palette -----------------------------------------
    def distort(self, dst, kind, payload):
        """Lie on the protocol waves; leave the framework channel alone.

        Each lie is keyed on ``(plan_seed, pid, kind, round)`` -- *not*
        on the attempt -- so every resend of a round's wave lies
        identically and the barrier pinches at the first lying round,
        a pure function of the seed.  Every variant is invalid at *any*
        receiver state (non-int, negative, or a round no honest run can
        reach): invalidity must not depend on the receiver's current
        round, because activation also distorts the previous round's
        still-resending wave, and a relative lie like ``r+1`` riding
        such a resend would be receiver-valid -- a forged arrival that
        wrongly completes a round and makes the pinch timing-dependent.
        """
        if kind not in ("arrive", "release", "rack"):
            return kind, payload
        from repro.net.faults import _decision

        r = payload.get("round", 0)
        pick = int(
            _decision(self.plan_seed, "byz-tree", (self.node_id, kind, r), 0) * 3
        )
        if pick == 0:
            return kind, {"round": "?"}
        if pick == 1:
            return kind, {"round": -1}
        return kind, {"round": 1_000_000_000 + r}

    # -- crash path ----------------------------------------------------
    def _narrate_crash(self) -> None:
        if self._open_phase is not None:
            # The instance the root was executing dies with it.
            if self.tracer.enabled:
                self.tracer.phase_end(
                    float(self.clock.tick()), self._open_phase, False
                )
            self._open_phase = None

    async def _maybe_crash(self) -> bool:
        """Fire the next scheduled crash if this round is due."""
        if not (self._crashes and self._crashes[0] <= self.round):
            return False
        self._crashes.pop(0)
        await self.crash_restart()
        await self._resync()
        return True

    def _maybe_byzantine(self) -> None:
        """Turn hostile at the scheduled round's entry."""
        if self._byz_rounds and self._byz_rounds[0] <= self.round:
            self._byz_rounds.pop(0)
            self.activate_byzantine()

    def _permanent_due(self) -> bool:
        return bool(self._permanent and self._permanent[0] <= self.round)

    async def _resync(self) -> None:
        """Announce the new incarnation until every neighbour confirms."""
        inc = self.incarnation
        for peer in self.neighbors():
            self.spawn(
                self.send_until(
                    peer,
                    "resync",
                    {},
                    lambda peer=peer: peer in self._synced
                    or peer in self.condemned
                    or self.incarnation != inc
                    or self.failsafe,
                )
            )
        # Condemned neighbours (permanently dead or Byzantine) can never
        # confirm; a fail-safe stop abandons the handshake entirely.
        await self.wait_for(
            lambda: self._synced >= (set(self.neighbors()) - self.condemned)
            or self.failsafe
        )
        if self.tracer.enabled:
            self.tracer.recovery(
                float(self.clock.tick()), self.node_id, round=self.round
            )

    # -- the protocol --------------------------------------------------
    async def run_rounds(self) -> None:
        """Complete ``barriers`` rounds, surviving the configured faults."""
        self.start_loops()
        work = self.timing.work
        while self.round < self.barriers and not self.failsafe:
            r = self.round
            if self.parent is None and self._open_phase is None:
                self._open_phase = r
                if self.tracer.enabled:
                    self.tracer.phase_start(float(self.clock.tick()), r)
            self._maybe_byzantine()
            if self._permanent_due():
                await self.fail_stop()
                return
            if await self._maybe_crash():
                continue  # re-enter the (re-executed) current round
            if work:
                await asyncio.sleep(work)
            # Arrive wave: every child's subtree has reached round r.
            await self.wait_for(
                lambda: all(
                    self._last_arrive.get(c, -1) >= r for c in self.children
                )
                or self.failsafe
            )
            if self.failsafe:
                break
            if self.parent is None:
                if self.tracer.enabled:
                    self.tracer.phase_end(float(self.clock.tick()), r, True)
                self._open_phase = None
            else:
                self.spawn(
                    self.send_until(
                        self.parent,
                        "arrive",
                        {"round": r},
                        lambda: self._max_release >= r
                        or self.round > r  # a crash re-arms via resync
                        or self.failsafe,
                    )
                )
                await self.wait_for(
                    lambda: self._max_release >= r or self.failsafe
                )
                if self.failsafe:
                    break
            self.round = r + 1
            self.completed = self.round
            # Release wave: resend to each child until acked.
            for child in self.children:
                self.spawn(
                    self.send_until(
                        child,
                        "release",
                        {"round": r},
                        lambda child=child: self._release_acked.get(child, -1)
                        >= r
                        or self.failsafe,
                    )
                )
        if self.failsafe:
            # Fail-safe stop (Section 7): the run may end without the
            # barrier, but a wrongful completion is never narrated --
            # the root closes its in-flight instance as *failed*.
            if self._open_phase is not None:
                if self.tracer.enabled:
                    self.tracer.phase_end(
                        float(self.clock.tick()), self._open_phase, False
                    )
                self._open_phase = None
            return
        # Let the final release wave settle (bounded; acks normally
        # arrive within one resend interval).
        try:
            await asyncio.wait_for(
                self.wait_for(
                    lambda: all(
                        self._release_acked.get(c, -1) >= self.barriers - 1
                        for c in self.children
                    )
                ),
                self.timing.finish_timeout,
            )
        except asyncio.TimeoutError:
            pass
