"""Transport-level fault injection driven by a :class:`FaultPlan`.

:class:`FaultyTransport` wraps any :class:`~repro.net.transport.Transport`
and perturbs the send path with the plan's link rates -- drop,
duplicate, delay, reorder -- plus wholesale partition windows
(:class:`~repro.chaos.plan.PartitionWindow`) and the adversarial
channels: ``corruption`` flips a seeded byte inside the encoded frame
(the receiver must quarantine it, never crash), ``forge`` injects an
extra hostile envelope next to the real one -- either an exact replay
or a src-spoofed impersonation.  Crash-restart faults are the
*runtime's* job (they kill protocol state, not messages); the wrapper
owns everything that can happen to a frame in flight.

Determinism: every per-message decision is a pure function of
``(plan.seed, src, dst, message identity, attempt)`` via SHA-256 -- no
shared RNG stream whose consumption order could depend on task
scheduling.  The message identity is the envelope's ``(kind,
incarnation, seq)`` (falling back to the body digest for non-envelope
frames), and ``attempt`` counts how often this transport has sent that
identity, so a resend of a dropped message is a *new* coin flip and
repeated resends get through with probability 1.  A hard cap
(``max_drop_attempts``) makes that liveness guarantee unconditional,
and it covers the adversarial channels too: no logical message is
corrupted (or shadowed by forgeries) forever -- after the cap, resends
deliver the clean frame only.

With an empty plan (no link rates, no partitions) the wrapper is
byte-identical to the inner transport: the send path forwards the
exact body with no decision, no hash, and no reordering.
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Callable

from repro.chaos.plan import FaultPlan, LinkPlan
from repro.net.frames import FrameError, Message, frame_digest
from repro.net.transport import Transport

#: After this many drops of one logical message, deliver unconditionally.
MAX_DROP_ATTEMPTS = 6


def _decision(seed: int, channel: str, key: tuple, attempt: int) -> float:
    """A uniform [0, 1) draw fully determined by its arguments."""
    material = repr((seed, channel, key, attempt)).encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultyTransport(Transport):
    """A lossy, reordering, partitionable view of an inner transport."""

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan | None = None,
        clock: Callable[[], float] | None = None,
        max_delay: float = 0.05,
    ) -> None:
        super().__init__(inner.node_id, inner.nprocs)
        self.inner = inner
        self.plan = plan
        self.link: LinkPlan = (
            plan.link if plan is not None and plan.link is not None else LinkPlan()
        )
        self.partitions = plan.partitions if plan is not None else ()
        self.seed = plan.seed if plan is not None else 0
        self.clock = clock or (lambda: 0.0)
        self.max_delay = max_delay
        self.active = bool(self.link.any or self.partitions)
        #: message identity -> sends so far (the attempt counter).
        self._attempts: dict[tuple, int] = {}
        self._delay_tasks: set[asyncio.Task] = set()
        self.stats = {
            "sent": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "reordered": 0,
            "partitioned": 0,
            "corrupted": 0,
            "forged": 0,
        }

    # ------------------------------------------------------------------
    def _identity(self, dst: int, body: bytes) -> tuple:
        try:
            msg = Message.from_bytes(body)
            return (msg.src, dst, msg.kind, msg.incarnation, msg.seq)
        except FrameError:
            return (self.node_id, dst, frame_digest(body))

    def _partitioned(self, dst: int) -> bool:
        now = self.clock()
        return any(w.cuts(self.node_id, dst, now) for w in self.partitions)

    async def send(self, dst: int, body: bytes) -> None:
        if not self.active:
            await self.inner.send(dst, body)
            return
        self.stats["sent"] += 1
        if self._partitioned(dst):
            self.stats["partitioned"] += 1
            return
        key = self._identity(dst, body)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1

        link = self.link
        if (
            link.loss
            and attempt < MAX_DROP_ATTEMPTS
            and _decision(self.seed, "drop", key, attempt) < link.loss
        ):
            self.stats["dropped"] += 1
            return
        copies = 1
        if link.duplication and _decision(self.seed, "dup", key, attempt) < (
            link.duplication
        ):
            self.stats["duplicated"] += 1
            copies = 2
        hold = 0.0
        if link.delay and _decision(self.seed, "delay?", key, attempt) < link.delay:
            self.stats["delayed"] += 1
            hold = self.max_delay * _decision(self.seed, "delay", key, attempt)
        if link.reorder and _decision(self.seed, "reorder?", key, attempt) < (
            link.reorder
        ):
            # Reordering is a short extra hold: later traffic overtakes.
            self.stats["reordered"] += 1
            hold += self.max_delay * _decision(self.seed, "reorder", key, attempt)
        wire = body
        if (
            link.corruption
            and attempt < MAX_DROP_ATTEMPTS
            and _decision(self.seed, "corrupt?", key, attempt) < link.corruption
        ):
            self.stats["corrupted"] += 1
            wire = self._corrupt(body, key, attempt)
        for _ in range(copies):
            if hold > 0.0:
                self._spawn_delayed(dst, wire, hold)
            else:
                await self.inner.send(dst, wire)
        if (
            link.forge
            and attempt < MAX_DROP_ATTEMPTS
            and _decision(self.seed, "forge?", key, attempt) < link.forge
        ):
            forged = self._forge(dst, body, key, attempt)
            if forged is not None:
                self.stats["forged"] += 1
                await self.inner.send(dst, forged)

    def _corrupt(self, body: bytes, key: tuple, attempt: int) -> bytes:
        """Flip one seeded byte.  The canonical encoding is pure ASCII,
        so setting the high bit guarantees the result is invalid UTF-8:
        a corrupted frame always fails decode (and gets quarantined)
        rather than sometimes passing as a different valid frame."""
        if not body:
            return body
        offset = int(_decision(self.seed, "corrupt-off", key, attempt) * len(body))
        mask = 0x80 | (1 + int(_decision(self.seed, "corrupt-xor", key, attempt) * 127))
        mutated = bytearray(body)
        mutated[offset] ^= mask
        return bytes(mutated)

    def _forge(
        self, dst: int, body: bytes, key: tuple, attempt: int
    ) -> bytes | None:
        """An adversarial extra envelope alongside the real one: an
        exact replay (the dedup index must filter it) or a src-spoofed
        impersonation (the receiver must quarantine the src mismatch).
        Both decisions are pure hashes of the message identity."""
        try:
            msg = Message.from_bytes(body)
        except FrameError:
            return None  # non-envelope frame: nothing to impersonate
        if _decision(self.seed, "forge-mode", key, attempt) < 0.5:
            return body  # replay attack: byte-identical duplicate
        if self.nprocs < 2:
            return body
        shift = 1 + int(
            _decision(self.seed, "forge-src", key, attempt) * (self.nprocs - 1)
        )
        spoofed = Message(
            kind=msg.kind,
            src=(self.node_id + shift) % self.nprocs,
            dst=dst,
            seq=msg.seq,
            incarnation=msg.incarnation,
            lamport=msg.lamport,
            payload=msg.payload,
        )
        return spoofed.to_bytes()

    def _spawn_delayed(self, dst: int, body: bytes, hold: float) -> None:
        async def deliver() -> None:
            await asyncio.sleep(hold)
            try:
                await self.inner.send(dst, body)
            except ConnectionError:
                pass  # the run ended while this frame was in flight

        task = asyncio.ensure_future(deliver())
        self._delay_tasks.add(task)
        task.add_done_callback(self._delay_tasks.discard)

    # -- passthroughs --------------------------------------------------
    async def recv(self, timeout: float | None = None) -> tuple[int, bytes] | None:
        return await self.inner.recv(timeout)

    def drain(self) -> int:
        return self.inner.drain()

    async def close(self) -> None:
        for task in list(self._delay_tasks):
            task.cancel()
        self._delay_tasks.clear()
        await self.inner.close()
