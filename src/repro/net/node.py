"""Node plumbing shared by the message-level barrier protocols.

:class:`NetNode` owns everything a protocol needs under it: the
transport, per-destination sequence numbers, receiver-side exactly-once
dedup, the Lamport clock that stamps every traced event, heartbeats,
bounded-exponential-backoff reliable sends, and the crash-restart
scaffolding (volatile-state wipe + inbox drain + incarnation bump).

Protocols subclass it twice: :class:`repro.net.tree.TreeBarrierNode`
(the RB-on-trees discipline as explicit arrive/release waves) and
:class:`repro.net.mbnode.MBRingNode` (the MB machine over retransmitted
state pushes).  Both narrate through a per-node
:class:`repro.obs.tracer.Tracer` using the shared event schema, so the
chaos monitors read a distributed run exactly like every simulated one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Coroutine, Mapping

from repro.net.frames import DedupIndex, FrameError, LamportClock, Message
from repro.net.transport import Transport, TransportClosed
from repro.obs.tracer import NullTracer, Tracer, ensure_tracer

#: Message kind -> the integer tag used for traced msg_send/msg_recv.
KIND_TAGS: dict[str, int] = {
    "arrive": 1,
    "release": 2,
    "rack": 3,
    "resync": 4,
    "sync": 5,
    "hb": 6,
    "push": 7,
}


@dataclass(frozen=True)
class Timing:
    """The runtime's knobs, all in wall-clock seconds.

    ``resend`` grows by ``backoff`` per attempt up to ``resend_max``
    (the paper's bounded exponential backoff); ``push_interval`` is the
    MB ring's state-push cadence (its retransmission mechanism).
    """

    resend: float = 0.04
    backoff: float = 2.0
    resend_max: float = 0.4
    hb_interval: float = 0.25
    restart_delay: float = 0.03
    push_interval: float = 0.02
    work: float = 0.0
    finish_timeout: float = 2.0


class NetNode:
    """One distributed process: transport + clocks + reliability."""

    def __init__(
        self,
        node_id: int,
        nprocs: int,
        transport: Transport,
        tracer: Tracer | NullTracer | None = None,
        timing: Timing | None = None,
    ) -> None:
        self.node_id = node_id
        self.nprocs = nprocs
        self.transport = transport
        self.tracer = ensure_tracer(tracer)
        self.timing = timing or Timing()
        self.clock = LamportClock()
        self.dedup = DedupIndex()
        self.incarnation = 0
        self._seq: dict[int, int] = {}
        self._tasks: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._running = True
        #: Highest incarnation seen per peer (survives our own crash so
        #: detect events stay exactly-once per restart).
        self._peer_inc: dict[int, int] = {}
        self.stats = {
            "sent": 0,
            "received": 0,
            "dup_filtered": 0,
            "resends": 0,
            "hb_sent": 0,
            "crashes": 0,
        }

    # -- task management -----------------------------------------------
    def spawn(self, coro: Coroutine[Any, Any, Any]) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def stop(self) -> None:
        """Cancel every helper task (end of run or crash)."""
        self._running = False
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()

    # -- sending -------------------------------------------------------
    def _next_seq(self, dst: int) -> int:
        seq = self._seq.get(dst, 0)
        self._seq[dst] = seq + 1
        return seq

    async def send_msg(
        self, dst: int, kind: str, payload: Mapping[str, Any] | None = None
    ) -> None:
        """One best-effort message (reliability is the caller's loop)."""
        msg = Message(
            kind=kind,
            src=self.node_id,
            dst=dst,
            seq=self._next_seq(dst),
            incarnation=self.incarnation,
            lamport=self.clock.tick(),
            payload=payload or {},
        )
        self.stats["sent"] += 1
        if self.tracer.enabled and kind != "hb":
            self.tracer.msg_send(
                float(msg.lamport), self.node_id, dst, tag=KIND_TAGS.get(kind, 0)
            )
        try:
            await self.transport.send(dst, msg.to_bytes())
        except TransportClosed:
            pass  # the run is tearing down

    async def send_until(
        self,
        dst: int,
        kind: str,
        payload: Mapping[str, Any],
        done: Callable[[], bool],
    ) -> None:
        """Resend ``kind`` to ``dst`` with bounded exponential backoff
        until ``done()`` -- the runtime's only reliability primitive."""
        delay = self.timing.resend
        first = True
        while self._running and not done():
            await self.send_msg(dst, kind, payload)
            if not first:
                self.stats["resends"] += 1
            first = False
            await asyncio.sleep(delay)
            delay = min(delay * self.timing.backoff, self.timing.resend_max)

    # -- receiving -----------------------------------------------------
    async def _recv_loop(self) -> None:
        while self._running:
            try:
                item = await self.transport.recv(timeout=self.timing.hb_interval)
            except TransportClosed:
                return
            if item is None:
                continue
            src, body = item
            try:
                msg = Message.from_bytes(body)
            except FrameError:
                continue  # corrupted or foreign frame: drop (loss-tolerant)
            if not self.dedup.accept(msg.src, msg.incarnation, msg.seq):
                self.stats["dup_filtered"] += 1
                continue
            self.stats["received"] += 1
            stamp = self.clock.update(msg.lamport)
            if self.tracer.enabled and msg.kind != "hb":
                self.tracer.msg_recv(
                    float(stamp),
                    msg.src,
                    self.node_id,
                    tag=KIND_TAGS.get(msg.kind, 0),
                )
            self.handle(msg)
            self._wake.set()

    def handle(self, msg: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # -- heartbeats ----------------------------------------------------
    def neighbors(self) -> list[int]:  # pragma: no cover - interface
        raise NotImplementedError

    async def _hb_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self.timing.hb_interval)
            for peer in self.neighbors():
                self.stats["hb_sent"] += 1
                await self.send_msg(peer, "hb")

    def start_loops(self) -> None:
        self.spawn(self._recv_loop())
        self.spawn(self._hb_loop())

    # -- waiting -------------------------------------------------------
    async def wait_for(
        self, cond: Callable[[], bool], poll: float = 0.25
    ) -> None:
        """Block until ``cond()`` holds; woken by message arrival, with
        a poll fallback against lost wakeups."""
        while not cond():
            self._wake.clear()
            if cond():
                return
            try:
                await asyncio.wait_for(self._wake.wait(), poll)
            except asyncio.TimeoutError:
                pass

    # -- crash-restart -------------------------------------------------
    def reset_volatile(self) -> None:
        """Protocol-specific state wipe; extended by subclasses."""
        self.dedup = DedupIndex()
        self._seq = {}

    def _narrate_crash(self) -> None:
        """Hook: close any narration the fault interrupts.  Runs right
        after the ``fault`` event so monitors see fault-then-failure."""

    async def crash_restart(self) -> None:
        """A detectable fault: lose volatile state and in-flight input,
        come back as a new incarnation after ``restart_delay``."""
        self.stats["crashes"] += 1
        if self.tracer.enabled:
            self.tracer.fault(
                float(self.clock.tick()), self.node_id, detectable=True
            )
        self._narrate_crash()
        running = self._running
        await self.stop()
        self.transport.drain()
        self.reset_volatile()
        self.incarnation += 1
        await asyncio.sleep(self.timing.restart_delay)
        self._running = running
        self.start_loops()

    # -- resync narration ----------------------------------------------
    def note_peer_incarnation(self, peer: int, incarnation: int) -> bool:
        """Record a peer's restart; True (exactly once per restart) when
        this is news -- the caller emits the ``detect`` event."""
        if incarnation > self._peer_inc.get(peer, 0):
            self._peer_inc[peer] = incarnation
            return True
        return False
