"""Node plumbing shared by the message-level barrier protocols.

:class:`NetNode` owns everything a protocol needs under it: the
transport, per-destination sequence numbers, receiver-side exactly-once
dedup, the Lamport clock that stamps every traced event, heartbeats,
bounded-exponential-backoff reliable sends, and the crash-restart
scaffolding (volatile-state wipe + inbox drain + incarnation bump).

It also owns the *defensive frame layer* (on by default): every
received frame is strictly decoded and schema-validated, and anything a
hostile peer could have sent -- garbage bytes, a src-spoofed envelope,
a protocol-invalid payload -- is rejected with a structured
``quarantine`` trace event instead of an exception.  Provably-invalid
frames whose source is authentic (the transport's channel attribution
matches the envelope) accrue *suspicion strikes* against that peer,
with seeded-jitter backoff between strikes; at :data:`STRIKE_LIMIT` the
peer is condemned (one ``detect`` per node per condemned peer -- a
deterministic, race-free digest row set) and the node degrades into a
*fail-safe stop*: it floods ``fsafe`` to its neighbours, stops making
progress, and the run ends having never wrongly reported a barrier
completion (the paper's Section 7 fail-safe guarantee).  Spoofed or
undecodable frames do *not* strike -- they are network faults, and
honest peers must never be condemned for them.

Protocols subclass it twice: :class:`repro.net.tree.TreeBarrierNode`
(the RB-on-trees discipline as explicit arrive/release waves) and
:class:`repro.net.mbnode.MBRingNode` (the MB machine over retransmitted
state pushes).  Both narrate through a per-node
:class:`repro.obs.tracer.Tracer` using the shared event schema, so the
chaos monitors read a distributed run exactly like every simulated one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Coroutine, Mapping

from repro.net.frames import DedupIndex, FrameError, LamportClock, Message
from repro.net.transport import Transport, TransportClosed
from repro.obs.tracer import NullTracer, Tracer, ensure_tracer

#: Message kind -> the integer tag used for traced msg_send/msg_recv.
KIND_TAGS: dict[str, int] = {
    "arrive": 1,
    "release": 2,
    "rack": 3,
    "resync": 4,
    "sync": 5,
    "hb": 6,
    "push": 7,
    "fsafe": 8,
    "fack": 9,
}

#: Authentic provably-invalid frames from one peer before condemnation.
STRIKE_LIMIT = 3

#: Base backoff applied to a struck peer (doubles per strike, plus a
#: seeded jitter drawn from the plan seed).
STRIKE_BACKOFF = 0.05


@dataclass(frozen=True)
class Timing:
    """The runtime's knobs, all in wall-clock seconds.

    ``resend`` grows by ``backoff`` per attempt up to ``resend_max``
    (the paper's bounded exponential backoff); ``push_interval`` is the
    MB ring's state-push cadence (its retransmission mechanism).
    """

    resend: float = 0.04
    backoff: float = 2.0
    resend_max: float = 0.4
    hb_interval: float = 0.25
    restart_delay: float = 0.03
    push_interval: float = 0.02
    work: float = 0.0
    finish_timeout: float = 2.0


class NetNode:
    """One distributed process: transport + clocks + reliability."""

    def __init__(
        self,
        node_id: int,
        nprocs: int,
        transport: Transport,
        tracer: Tracer | NullTracer | None = None,
        timing: Timing | None = None,
        defense: bool = True,
        plan_seed: int = 0,
        fail_stop_aware: bool = False,
    ) -> None:
        self.node_id = node_id
        self.nprocs = nprocs
        self.transport = transport
        self.tracer = ensure_tracer(tracer)
        self.timing = timing or Timing()
        self.clock = LamportClock()
        self.dedup = DedupIndex()
        self.incarnation = 0
        self._seq: dict[int, int] = {}
        self._tasks: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._running = True
        #: Highest incarnation seen per peer (survives our own crash so
        #: detect events stay exactly-once per restart).
        self._peer_inc: dict[int, int] = {}
        # -- defensive frame layer --
        #: Validate frames and strike hostile peers (off = the trusting
        #: pre-adversarial behaviour, kept as the intolerant control).
        self.defense = defense
        #: Seeds the strike-backoff jitter and Byzantine lie palette.
        self.plan_seed = plan_seed
        #: Watch for permanently-silent neighbours (set only when the
        #: plan contains permanent crashes, so benign runs are
        #: byte-identical to the pre-adversarial runtime).
        self.fail_stop_aware = fail_stop_aware
        #: Peers this node has condemned (Byzantine or permanently dead).
        self.condemned: set[int] = set()
        #: Fail-safe stop engaged: stop making progress, never complete.
        self.failsafe = False
        #: Permanently stopped (the Section 7 ``up := false`` state).
        self.dead = False
        #: This node sends protocol-valid but semantically wrong frames.
        self.byzantine_active = False
        self._strikes: dict[int, int] = {}
        self._suspect_until: dict[int, float] = {}
        self._fsafe_acked: dict[int, bool] = {}
        self._last_heard: dict[int, float] = {}
        self.stats = {
            "sent": 0,
            "received": 0,
            "dup_filtered": 0,
            "resends": 0,
            "hb_sent": 0,
            "crashes": 0,
            "quarantined": 0,
            "strikes": 0,
        }

    # -- task management -----------------------------------------------
    def spawn(self, coro: Coroutine[Any, Any, Any]) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def stop(self) -> None:
        """Cancel every helper task (end of run or crash)."""
        self._running = False
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()

    # -- sending -------------------------------------------------------
    def _next_seq(self, dst: int) -> int:
        seq = self._seq.get(dst, 0)
        self._seq[dst] = seq + 1
        return seq

    async def send_msg(
        self, dst: int, kind: str, payload: Mapping[str, Any] | None = None
    ) -> None:
        """One best-effort message (reliability is the caller's loop)."""
        payload = dict(payload or {})
        if self.byzantine_active:
            kind, payload = self.distort(dst, kind, payload)
        msg = Message(
            kind=kind,
            src=self.node_id,
            dst=dst,
            seq=self._next_seq(dst),
            incarnation=self.incarnation,
            lamport=self.clock.tick(),
            payload=payload,
        )
        self.stats["sent"] += 1
        if self.tracer.enabled and kind != "hb":
            self.tracer.msg_send(
                float(msg.lamport), self.node_id, dst, tag=KIND_TAGS.get(kind, 0)
            )
        try:
            await self.transport.send(dst, msg.to_bytes())
        except TransportClosed:
            pass  # the run is tearing down

    async def send_until(
        self,
        dst: int,
        kind: str,
        payload: Mapping[str, Any],
        done: Callable[[], bool],
    ) -> None:
        """Resend ``kind`` to ``dst`` with bounded exponential backoff
        until ``done()`` -- the runtime's only reliability primitive."""
        delay = self.timing.resend
        first = True
        while self._running and not done():
            await self.send_msg(dst, kind, payload)
            if not first:
                self.stats["resends"] += 1
            first = False
            await asyncio.sleep(delay)
            delay = min(delay * self.timing.backoff, self.timing.resend_max)

    # -- receiving -----------------------------------------------------
    async def _recv_loop(self) -> None:
        while self._running:
            try:
                item = await self.transport.recv(timeout=self.timing.hb_interval)
            except TransportClosed:
                return
            if item is None:
                continue
            src, body = item
            # Any frame on this channel -- even garbage -- proves the
            # channel peer's process is alive (a permanently-crashed
            # node sends nothing at all), so it feeds silence tracking.
            self._last_heard[src] = self._now()
            try:
                msg = Message.from_bytes(body, strict=self.defense)
            except FrameError as exc:
                # Corrupted or foreign frame.  A decode failure is a
                # *network* fault (nobody's authenticated identity is
                # attached to garbage bytes), so it quarantines without
                # striking anyone.
                self.quarantine("decode", peer=src, detail=str(exc)[:80])
                continue
            if self.defense and msg.src != src:
                # The envelope claims a sender the channel disproves: a
                # forged impersonation.  The *channel* peer is not the
                # forger (the network injected it), so no strike -- but
                # the frame must never reach dedup or the protocol,
                # else it poisons the claimed sender's sequence space.
                self.quarantine("src-spoof", peer=src, claimed=msg.src)
                continue
            if self.defense and src in self.condemned:
                self.quarantine("condemned", peer=src)
                continue
            if self.defense and self._backing_off(src):
                self.quarantine("backoff", peer=src)
                continue
            if not self.dedup.accept(msg.src, msg.incarnation, msg.seq):
                self.stats["dup_filtered"] += 1
                continue
            self.stats["received"] += 1
            stamp = self.clock.update(msg.lamport)
            if self.tracer.enabled and msg.kind != "hb":
                self.tracer.msg_recv(
                    float(stamp),
                    msg.src,
                    self.node_id,
                    tag=KIND_TAGS.get(msg.kind, 0),
                )
            if self._handle_system(msg):
                self._wake.set()
                continue
            if self.defense:
                reason = self.validate_msg(msg)
                if reason is not None:
                    self.quarantine(reason, peer=src, msg_kind=msg.kind)
                    self._strike(src)
                    continue
            self.handle(msg)
            self._wake.set()

    def handle(self, msg: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def validate_msg(self, msg: Message) -> str | None:
        """Protocol-level payload validation hook (defense on only).

        Returns None for a frame an honest peer could have sent *right
        now*, else a short quarantine reason.  A non-None return is a
        proof of misbehaviour: the frame's source is authentic (the
        channel attribution matched), so the peer is struck.
        """
        return None

    # -- defensive layer -----------------------------------------------
    def _now(self) -> float:
        return asyncio.get_event_loop().time()

    def quarantine(self, reason: str, peer: int | None = None, **data: Any) -> None:
        """Reject a frame with a structured trace event, never a raise."""
        self.stats["quarantined"] += 1
        if self.tracer.enabled:
            self.tracer.quarantine(
                float(self.clock.value), self.node_id, reason, peer=peer, **data
            )

    def _backing_off(self, peer: int) -> bool:
        until = self._suspect_until.get(peer)
        return until is not None and self._now() < until

    def _strike(self, peer: int) -> None:
        """One suspicion strike; condemnation at :data:`STRIKE_LIMIT`."""
        count = self._strikes.get(peer, 0) + 1
        self._strikes[peer] = count
        self.stats["strikes"] += 1
        if count >= STRIKE_LIMIT:
            self.condemn(peer)
            return
        from repro.net.faults import _decision

        jitter = _decision(
            self.plan_seed, "strike-backoff", (self.node_id, peer), count
        )
        hold = STRIKE_BACKOFF * (2 ** (count - 1)) * (1.0 + jitter)
        self._suspect_until[peer] = self._now() + hold

    def condemn(self, peer: int) -> None:
        """Mark ``peer`` hostile/dead and degrade into fail-safe stop.

        Every node emits exactly one ``detect`` per condemned peer
        (locally or on learning it from the ``fsafe`` flood), so the
        digest rows this adds are a pure function of the condemned set,
        not of message timing.
        """
        if peer in self.condemned:
            return
        self.condemned.add(peer)
        if self.tracer.enabled:
            self.tracer.detect(
                float(self.clock.tick()),
                self.node_id,
                peer=peer,
                condemned=True,
            )
        self._enter_failsafe()

    def _enter_failsafe(self) -> None:
        if self.failsafe:
            self._wake.set()
            return
        self.failsafe = True
        for nb in self.neighbors():
            self.spawn(
                self.send_until(
                    nb,
                    "fsafe",
                    {"c": sorted(self.condemned)},
                    lambda nb=nb: self._fsafe_acked.get(nb, False),
                )
            )
        self._wake.set()

    def _handle_system(self, msg: Message) -> bool:
        """Base-layer kinds (the fail-safe flood); True when consumed."""
        if msg.kind == "fsafe":
            pids = msg.payload.get("c")
            if not isinstance(pids, list) or not all(
                isinstance(p, int) and not isinstance(p, bool) and 0 <= p < self.nprocs
                for p in pids
            ):
                self.quarantine("schema", peer=msg.src, msg_kind="fsafe")
                return True
            self.spawn(self.send_msg(msg.src, "fack", {"c": pids}))
            for pid in pids:
                self.condemn(pid)
            return True
        if msg.kind == "fack":
            self._fsafe_acked[msg.src] = True
            return True
        return False

    # -- Byzantine mode ------------------------------------------------
    def distort(
        self, dst: int, kind: str, payload: dict[str, Any]
    ) -> tuple[str, dict[str, Any]]:
        """The Byzantine lie palette; subclasses override per protocol.

        Every decision must be a pure hash of ``(plan_seed, identity,
        protocol position)`` -- never of attempt counts or wall time --
        so sharded and single-loop runs distort identically.
        """
        return kind, payload

    def activate_byzantine(self) -> None:
        """Turn hostile (the Section 7 ``good := false`` moment); emits
        the fault event exactly once.  The node keeps *running* the
        protocol -- its narration and receive path stay framework-honest
        -- but every outgoing protocol frame goes through the lie
        palette from here on."""
        if self.byzantine_active:
            return
        self.byzantine_active = True
        if self.tracer.enabled:
            self.tracer.fault(
                float(self.clock.tick()),
                self.node_id,
                detectable=False,
                mode="byzantine",
            )

    # -- permanent crash -----------------------------------------------
    async def fail_stop(self) -> None:
        """A *permanent* crash (Section 7 ``up := false``): lose
        everything and never come back.  Peers notice only through
        silence (see ``_silence_loop``)."""
        self.stats["crashes"] += 1
        if self.tracer.enabled:
            self.tracer.fault(
                float(self.clock.tick()),
                self.node_id,
                detectable=True,
                mode="crash",
            )
        self._narrate_crash()
        self.dead = True
        await self.stop()
        self.transport.drain()

    async def _silence_loop(self) -> None:
        """Condemn a neighbour that has been silent far longer than the
        heartbeat interval -- the only way a permanent crash is ever
        observable.  Spawned only when ``fail_stop_aware`` (the plan
        schedules permanent crashes), so benign runs are untouched."""
        dead_after = 4.0 * self.timing.hb_interval
        for nb in self.neighbors():
            self._last_heard.setdefault(nb, self._now())
        while self._running and not self.failsafe:
            await asyncio.sleep(self.timing.hb_interval)
            now = self._now()
            for nb in self.neighbors():
                heard = self._last_heard.get(nb)
                if (
                    heard is not None
                    and now - heard > dead_after
                    and nb not in self.condemned
                ):
                    self.condemn(nb)

    # -- heartbeats ----------------------------------------------------
    def neighbors(self) -> list[int]:  # pragma: no cover - interface
        raise NotImplementedError

    async def _hb_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self.timing.hb_interval)
            for peer in self.neighbors():
                self.stats["hb_sent"] += 1
                await self.send_msg(peer, "hb")

    def start_loops(self) -> None:
        self.spawn(self._recv_loop())
        self.spawn(self._hb_loop())
        if self.fail_stop_aware:
            self.spawn(self._silence_loop())

    # -- waiting -------------------------------------------------------
    async def wait_for(
        self, cond: Callable[[], bool], poll: float = 0.25
    ) -> None:
        """Block until ``cond()`` holds; woken by message arrival, with
        a poll fallback against lost wakeups."""
        while not cond():
            self._wake.clear()
            if cond():
                return
            try:
                await asyncio.wait_for(self._wake.wait(), poll)
            except asyncio.TimeoutError:
                pass

    # -- crash-restart -------------------------------------------------
    def reset_volatile(self) -> None:
        """Protocol-specific state wipe; extended by subclasses."""
        self.dedup = DedupIndex()
        self._seq = {}
        self._strikes = {}
        self._suspect_until = {}
        self._fsafe_acked = {}

    def _narrate_crash(self) -> None:
        """Hook: close any narration the fault interrupts.  Runs right
        after the ``fault`` event so monitors see fault-then-failure."""

    async def crash_restart(self) -> None:
        """A detectable fault: lose volatile state and in-flight input,
        come back as a new incarnation after ``restart_delay``."""
        self.stats["crashes"] += 1
        if self.tracer.enabled:
            self.tracer.fault(
                float(self.clock.tick()), self.node_id, detectable=True
            )
        self._narrate_crash()
        running = self._running
        await self.stop()
        self.transport.drain()
        self.reset_volatile()
        self.incarnation += 1
        await asyncio.sleep(self.timing.restart_delay)
        self._running = running
        self.start_loops()

    # -- resync narration ----------------------------------------------
    def note_peer_incarnation(self, peer: int, incarnation: int) -> bool:
        """Record a peer's restart; True (exactly once per restart) when
        this is news -- the caller emits the ``detect`` event.

        A restart is also the memory-bound point: the dedup index drops
        (and floors) the peer's dead incarnations, and the peer's
        strike history resets -- a fresh incarnation starts trusted.
        """
        if incarnation > self._peer_inc.get(peer, 0):
            self._peer_inc[peer] = incarnation
            self.dedup.forget_older_incarnations(peer, incarnation)
            self._strikes.pop(peer, None)
            self._suspect_until.pop(peer, None)
            return True
        return False
