"""``python -m repro.experiments`` forwards to the CLI."""

import sys

from repro.experiments.cli import main

sys.exit(main())
