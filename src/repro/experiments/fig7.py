"""Figure 7: simulated recovery from undetectable faults.

Mean recovery time from an arbitrary state, vs latency ``c`` in
[0, 0.05] and tree height ``h`` in [1, 7] (process counts 2..128).  The
paper's quoted points: ~0.56 time units at 32 processes, c = 0.01;
below one time unit at 128 processes, c = 0.05; always below the
analytical envelope (5hc plus work in progress, at most ~1.25 under the
operating assumption).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.model import recovery_time_bound
from repro.experiments.report import ExperimentResult
from repro.experiments.sweep import SweepExecutor, run_grid
from repro.protosim.recovery import RecoveryExperiment

DEFAULT_C = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05)
DEFAULT_H = (1, 2, 3, 4, 5, 6, 7)

POINT_FN = "repro.experiments.fig7:simulate_recovery_mean"


def simulate_recovery_mean(h: int, c: float, trials: int, seed: int) -> float:
    return RecoveryExperiment(h=h, c=c, seed=seed).run(trials=trials).mean_time


def run(
    h_values: Sequence[int] = DEFAULT_H,
    c_values: Sequence[float] = DEFAULT_C,
    trials: int = 30,
    seed: int = 0,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig7",
        title="Simulated: recovery from undetectable faults (mean time)",
        columns=("c",) + tuple(f"h={h}" for h in h_values),
        paper_claims=[
            "recovery time increases with latency and with process count",
            "~0.56 units at (32 procs, c=0.01); <1 unit at (128, c=0.05)",
            "simulated recovery below the analytical worst case",
        ],
        notes=[
            f"{trials} perturb-and-recover trials per point, seed={seed}",
            "analytical envelope: 5hc + work in progress",
        ],
    )
    grid = [
        dict(h=h, c=c, trials=trials, seed=seed)
        for c in c_values
        for h in h_values
    ]
    means = run_grid(POINT_FN, grid, executor)
    nh = len(h_values)
    for i, c in enumerate(c_values):
        result.add(c, *means[i * nh : (i + 1) * nh])
    result.notes.append(
        "5hc bounds at c=0.05: "
        + ", ".join(f"h={h}:{recovery_time_bound(h, 0.05):.2f}" for h in h_values)
    )
    return result
