"""Extension experiments beyond the paper's figures.

Three sensitivity sweeps on design parameters the paper fixes:

* **arity** -- barrier latency vs tree fan-out at fixed process count
  (the paper uses binary trees; higher fan-out trades height against
  root contention, which the wave model prices as depth only);
* **severity** -- recovery time vs the *fraction* of processes hit by
  the undetectable fault (the paper always perturbs everything);
* **push interval** -- the distributed MB implementation's completion
  time vs its retransmission interval under message loss (the masking
  is free of charge only if the timers are tuned).
"""

from __future__ import annotations

from statistics import mean
from typing import Sequence

import numpy as np

from repro.barrier.control import CP
from repro.des.network import LinkFaults
from repro.experiments.report import ExperimentResult
from repro.protosim.recovery import _PERTURB_STATES
from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig
from repro.topology.graphs import kary_tree


def arity_sweep(
    nprocs: int = 64,
    arities: Sequence[int] = (2, 3, 4, 8),
    c: float = 0.02,
    phases: int = 50,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext-arity",
        title=f"Extension: barrier time vs tree arity ({nprocs} procs)",
        columns=("arity", "height", "time/phase", "1+3hc"),
    )
    for arity in arities:
        topo = kary_tree(nprocs, arity)
        sim = FTTreeBarrierSim(
            topology=topo, config=SimConfig(latency=c, seed=0)
        )
        metrics = sim.run(phases=phases)
        result.add(
            arity,
            topo.height,
            metrics.time_per_phase,
            1 + 3 * topo.height * c,
        )
    return result


def severity_sweep(
    h: int = 5,
    c: float = 0.01,
    fractions: Sequence[float] = (0.125, 0.25, 0.5, 1.0),
    trials: int = 30,
    seed: int = 0,
) -> ExperimentResult:
    """Recovery time when only a fraction of the processes is hit."""
    result = ExperimentResult(
        exp_id="ext-severity",
        title=f"Extension: recovery vs perturbation severity (h={h}, c={c:g})",
        columns=("fraction", "mean recovery", "max recovery"),
        notes=[f"{trials} trials per point, seed={seed}"],
    )
    nprocs = 2**h
    topology = kary_tree(nprocs, 2)
    base = np.random.SeedSequence(seed)
    for fraction in fractions:
        times = []
        for child in base.spawn(trials):
            trial_seed = int(child.generate_state(1)[0])
            rng = np.random.default_rng(trial_seed)
            sim = FTTreeBarrierSim(
                topology=topology,
                config=SimConfig(latency=c, early_abort=False, seed=trial_seed),
            )
            victims = rng.choice(
                nprocs, size=max(1, int(round(fraction * nprocs))), replace=False
            )
            for pid in victims:
                node = sim.nodes[pid]
                node.state = _PERTURB_STATES[
                    int(rng.integers(0, len(_PERTURB_STATES)))
                ]
                node.phase = int(rng.integers(0, 8))
                node.work_end = (
                    rng.uniform(0.0, 1.0) if node.state is CP.EXECUTE else -1.0
                )
            recovered_at: list[float] = []
            sim.start_state_hook = lambda t, _r=recovered_at: _r.append(t)
            stage1 = float(rng.uniform(0.0, h * c))
            first = sim.nodes[0]
            if all(
                n.state is CP.READY and n.phase == first.phase
                for n in sim.nodes
            ):
                times.append(stage1)
                continue
            sim.sim.at(stage1, sim._root_step)
            sim.sim.run(stop=lambda: bool(recovered_at), max_events=2_000_000)
            times.append(recovered_at[0])
        result.add(fraction, mean(times), max(times))
    return result


def push_interval_sweep(
    nprocs: int = 4,
    intervals: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
    loss: float = 0.08,
    phases: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Distributed MB: completion time vs retransmission interval."""
    from repro.simmpi import Runtime
    from repro.simmpi.mb_impl import mb_barrier_program

    result = ExperimentResult(
        exp_id="ext-push-interval",
        title=f"Extension: distributed MB vs push interval (loss={loss:g})",
        columns=("interval", "completion time", "messages"),
        notes=[f"{nprocs} ranks, {phases} phases, seed={seed}"],
    )
    for interval in intervals:
        runtime = Runtime(
            nprocs=nprocs,
            latency=0.01,
            seed=seed,
            link_faults=LinkFaults(loss=loss),
        )
        logs = runtime.run(
            lambda comm, _i=interval: mb_barrier_program(
                comm, phases=phases, push_interval=_i
            )
        )
        assert all(l.completed == phases for l in logs)
        result.add(interval, runtime.sim.now, runtime.network.messages_sent)
    return result


def availability_sweep(
    h: int = 5,
    c: float = 0.01,
    rates: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    phases: int = 300,
    seed: int = 3,
) -> ExperimentResult:
    """Operation under *continuous* undetectable perturbation.

    The paper perturbs once and measures recovery (Figure 7); here
    arbitrary-state scrambles keep arriving at rate ``g`` while the
    barrier runs.  Throughput degrades gracefully (the protocol keeps
    re-stabilizing) and incorrectly-completed barriers -- completions a
    scramble forged past the root -- stay rare, the continuous-time
    face of Lemma 4.1.4's bounded damage.
    """
    result = ExperimentResult(
        exp_id="ext-availability",
        title=f"Extension: throughput under continuous scrambles (h={h})",
        columns=("g", "throughput", "scrambles", "incorrect completions"),
        notes=[f"{phases} phases per point, seed={seed}"],
    )
    for g in rates:
        sim = FTTreeBarrierSim(
            nprocs=2**h,
            config=SimConfig(
                latency=c, undetectable_frequency=g, seed=seed
            ),
        )
        metrics = sim.run(phases=phases, max_time=phases * 40.0)
        result.add(
            g,
            metrics.successful_phases / metrics.total_time,
            sim.scrambles_injected,
            sim.incorrect_completions,
        )
    return result


def run(seed: int = 0) -> ExperimentResult:
    """Bundle the sweeps into one report (CLI entry)."""
    combined = ExperimentResult(
        exp_id="sensitivity",
        title="Extension sweeps: arity / severity / push interval / availability",
        columns=("sweep", "x", "y"),
    )
    for res in (
        arity_sweep(),
        severity_sweep(seed=seed),
        push_interval_sweep(seed=seed),
        availability_sweep(),
    ):
        for row in res.rows:
            combined.add(res.exp_id, row[0], row[1])
        combined.notes.append(f"{res.exp_id}: {res.title}")
    return combined
