"""Extension experiments beyond the paper's figures.

Three sensitivity sweeps on design parameters the paper fixes:

* **arity** -- barrier latency vs tree fan-out at fixed process count
  (the paper uses binary trees; higher fan-out trades height against
  root contention, which the wave model prices as depth only);
* **severity** -- recovery time vs the *fraction* of processes hit by
  the undetectable fault (the paper always perturbs everything);
* **push interval** -- the distributed MB implementation's completion
  time vs its retransmission interval under message loss (the masking
  is free of charge only if the timers are tuned).

Each sweep exposes its grid point as a module-level function routed
through :class:`~repro.experiments.sweep.SweepExecutor`, so the sweeps
parallelize and cache like the figures do.
"""

from __future__ import annotations

from statistics import mean
from typing import Sequence

import numpy as np

from repro.barrier.control import CP
from repro.des.network import LinkFaults
from repro.experiments.report import ExperimentResult
from repro.experiments.sweep import SweepExecutor, run_grid
from repro.protosim.recovery import _PERTURB_STATES
from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig
from repro.topology.graphs import kary_tree

ARITY_FN = "repro.experiments.sensitivity:arity_point"
SEVERITY_FN = "repro.experiments.sensitivity:severity_point"
PUSH_FN = "repro.experiments.sensitivity:push_interval_point"
AVAIL_FN = "repro.experiments.sensitivity:availability_point"


def arity_point(nprocs: int, arity: int, c: float, phases: int) -> list:
    topo = kary_tree(nprocs, arity)
    sim = FTTreeBarrierSim(topology=topo, config=SimConfig(latency=c, seed=0))
    metrics = sim.run(phases=phases)
    return [topo.height, metrics.time_per_phase, 1 + 3 * topo.height * c]


def arity_sweep(
    nprocs: int = 64,
    arities: Sequence[int] = (2, 3, 4, 8),
    c: float = 0.02,
    phases: int = 50,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext-arity",
        title=f"Extension: barrier time vs tree arity ({nprocs} procs)",
        columns=("arity", "height", "time/phase", "1+3hc"),
    )
    grid = [dict(nprocs=nprocs, arity=a, c=c, phases=phases) for a in arities]
    for arity, row in zip(arities, run_grid(ARITY_FN, grid, executor)):
        result.add(arity, *row)
    return result


def severity_point(
    h: int, c: float, fraction: float, trials: int, seed: int, child_base: int
) -> list:
    """Mean/max recovery time at one perturbation fraction.

    Trial ``t`` derives its seed from ``SeedSequence(seed)``'s child
    number ``child_base + t``.  Spawning children by explicit
    ``spawn_key`` reproduces the sequential ``base.spawn(trials)``
    streams the original in-line sweep used, so results are identical
    however the fractions are distributed over workers.
    """
    nprocs = 2**h
    topology = kary_tree(nprocs, 2)
    times = []
    for t in range(trials):
        child = np.random.SeedSequence(
            entropy=seed, spawn_key=(child_base + t,)
        )
        trial_seed = int(child.generate_state(1)[0])
        rng = np.random.default_rng(trial_seed)
        sim = FTTreeBarrierSim(
            topology=topology,
            config=SimConfig(latency=c, early_abort=False, seed=trial_seed),
        )
        victims = rng.choice(
            nprocs, size=max(1, int(round(fraction * nprocs))), replace=False
        )
        for pid in victims:
            node = sim.nodes[pid]
            node.state = _PERTURB_STATES[
                int(rng.integers(0, len(_PERTURB_STATES)))
            ]
            node.phase = int(rng.integers(0, 8))
            node.work_end = (
                rng.uniform(0.0, 1.0) if node.state is CP.EXECUTE else -1.0
            )
        recovered_at: list[float] = []
        sim.start_state_hook = lambda t_, _r=recovered_at: _r.append(t_)
        stage1 = float(rng.uniform(0.0, h * c))
        first = sim.nodes[0]
        if all(
            n.state is CP.READY and n.phase == first.phase for n in sim.nodes
        ):
            times.append(stage1)
            continue
        sim.sim.at(stage1, sim._root_step)
        sim.sim.run(stop=lambda: bool(recovered_at), max_events=2_000_000)
        times.append(recovered_at[0])
    return [mean(times), max(times)]


def severity_sweep(
    h: int = 5,
    c: float = 0.01,
    fractions: Sequence[float] = (0.125, 0.25, 0.5, 1.0),
    trials: int = 30,
    seed: int = 0,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Recovery time when only a fraction of the processes is hit."""
    result = ExperimentResult(
        exp_id="ext-severity",
        title=f"Extension: recovery vs perturbation severity (h={h}, c={c:g})",
        columns=("fraction", "mean recovery", "max recovery"),
        notes=[f"{trials} trials per point, seed={seed}"],
    )
    grid = [
        dict(
            h=h,
            c=c,
            fraction=fraction,
            trials=trials,
            seed=seed,
            child_base=i * trials,
        )
        for i, fraction in enumerate(fractions)
    ]
    for fraction, row in zip(fractions, run_grid(SEVERITY_FN, grid, executor)):
        result.add(fraction, *row)
    return result


def push_interval_point(
    nprocs: int, interval: float, loss: float, phases: int, seed: int
) -> list:
    from repro.simmpi import Runtime
    from repro.simmpi.mb_impl import mb_barrier_program

    runtime = Runtime(
        nprocs=nprocs,
        latency=0.01,
        seed=seed,
        link_faults=LinkFaults(loss=loss),
    )
    logs = runtime.run(
        lambda comm, _i=interval: mb_barrier_program(
            comm, phases=phases, push_interval=_i
        )
    )
    assert all(l.completed == phases for l in logs)
    return [runtime.sim.now, runtime.network.messages_sent]


def push_interval_sweep(
    nprocs: int = 4,
    intervals: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
    loss: float = 0.08,
    phases: int = 6,
    seed: int = 0,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Distributed MB: completion time vs retransmission interval."""
    result = ExperimentResult(
        exp_id="ext-push-interval",
        title=f"Extension: distributed MB vs push interval (loss={loss:g})",
        columns=("interval", "completion time", "messages"),
        notes=[f"{nprocs} ranks, {phases} phases, seed={seed}"],
    )
    grid = [
        dict(nprocs=nprocs, interval=i, loss=loss, phases=phases, seed=seed)
        for i in intervals
    ]
    for interval, row in zip(intervals, run_grid(PUSH_FN, grid, executor)):
        result.add(interval, *row)
    return result


def availability_point(h: int, c: float, g: float, phases: int, seed: int) -> list:
    sim = FTTreeBarrierSim(
        nprocs=2**h,
        config=SimConfig(latency=c, undetectable_frequency=g, seed=seed),
    )
    metrics = sim.run(phases=phases, max_time=phases * 40.0)
    return [
        metrics.successful_phases / metrics.total_time,
        sim.scrambles_injected,
        sim.incorrect_completions,
    ]


def availability_sweep(
    h: int = 5,
    c: float = 0.01,
    rates: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    phases: int = 300,
    seed: int = 3,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Operation under *continuous* undetectable perturbation.

    The paper perturbs once and measures recovery (Figure 7); here
    arbitrary-state scrambles keep arriving at rate ``g`` while the
    barrier runs.  Throughput degrades gracefully (the protocol keeps
    re-stabilizing) and incorrectly-completed barriers -- completions a
    scramble forged past the root -- stay rare, the continuous-time
    face of Lemma 4.1.4's bounded damage.
    """
    result = ExperimentResult(
        exp_id="ext-availability",
        title=f"Extension: throughput under continuous scrambles (h={h})",
        columns=("g", "throughput", "scrambles", "incorrect completions"),
        notes=[f"{phases} phases per point, seed={seed}"],
    )
    grid = [dict(h=h, c=c, g=g, phases=phases, seed=seed) for g in rates]
    for g, row in zip(rates, run_grid(AVAIL_FN, grid, executor)):
        result.add(g, *row)
    return result


def run(
    seed: int = 0, executor: SweepExecutor | None = None
) -> ExperimentResult:
    """Bundle the sweeps into one report (CLI entry)."""
    combined = ExperimentResult(
        exp_id="sensitivity",
        title="Extension sweeps: arity / severity / push interval / availability",
        columns=("sweep", "x", "y"),
    )
    for res in (
        arity_sweep(executor=executor),
        severity_sweep(seed=seed, executor=executor),
        push_interval_sweep(seed=seed, executor=executor),
        availability_sweep(executor=executor),
    ):
        for row in res.rows:
            combined.add(res.exp_id, row[0], row[1])
        combined.notes.append(f"{res.exp_id}: {res.title}")
    return combined
