"""Table 1: fault classification and appropriate tolerances -- executed.

Beyond rendering the classification, each row is *demonstrated* on a
live program:

* trivially masking -- ECC-corrected message corruption: the simulated
  MPI job computes the right answer with zero application-visible
  effect;
* masking -- CB under detectable faults: zero specification violations;
* stabilizing -- CB from an arbitrary state: convergence to the
  legitimate set;
* fail-safe -- CB with an uncorrectable crash: no barrier after the
  crash ever completes (and none completes incorrectly);
* intolerant -- an uncorrectable undetectable (Byzantine) process:
  the specification is (expectedly) violated or progress lost.
"""

from __future__ import annotations

import numpy as np

from repro.barrier.cb import cb_detectable_fault, cb_undetectable_fault, make_cb
from repro.barrier.legitimacy import cb_legitimate
from repro.barrier.spec import BarrierSpecChecker
from repro.experiments.report import ExperimentResult
from repro.extensions.classification import table1_rows
from repro.extensions.crash import byzantine_fault, crash_fault, with_byzantine, with_crash
from repro.extensions.failsafe import FailSafeMonitor, make_failsafe_cb
from repro.gc.faults import BernoulliSchedule, FaultInjector, OneShotSchedule
from repro.gc.properties import converges
from repro.gc.scheduler import RandomFairDaemon
from repro.gc.simulator import Simulator


def _demo_trivially_masking(seed: int) -> str:
    from repro.des.network import LinkFaults
    from repro.simmpi import Runtime

    def worker(comm):
        total = 0
        for _ in range(5):
            yield comm.compute(0.5)
            total += (yield comm.allreduce(1, op="sum"))
        return total

    # Corruption is corrected immediately (ECC): modelled as a corrupted
    # delivery that the transport layer repairs via retransmission, with
    # no application-visible effect.
    rt = Runtime(
        nprocs=8,
        seed=seed,
        link_faults=LinkFaults(corruption=0.05),
    )
    results = rt.run(worker)
    ok = all(r == 5 * 8 for r in results)
    return "every rank correct" if ok else "FAILED"


def _demo_masking(seed: int) -> str:
    program = make_cb(4, 3)
    injector = FaultInjector(
        program, cb_detectable_fault(), BernoulliSchedule(0.02), seed=seed
    )
    sim = Simulator(program, RandomFairDaemon(seed=seed), injector=injector)
    run = sim.run(max_steps=8000)
    report = BarrierSpecChecker(4, 3).check(run.trace, program.initial_state())
    return (
        f"{injector.count} faults, {len(report.violations)} violations, "
        f"{report.phases_completed} barriers"
    )


def _demo_stabilizing(seed: int) -> str:
    program = make_cb(4, 3)
    rng = np.random.default_rng(seed)
    ok = sum(
        converges(
            program,
            program.arbitrary_state(rng),
            lambda s: cb_legitimate(s, 3),
            max_steps=5000,
        )
        for _ in range(20)
    )
    return f"{ok}/20 arbitrary states converged"


def _demo_fail_safe(seed: int) -> str:
    program = make_failsafe_cb(4, 2)
    injector = FaultInjector(
        program, crash_fault(), OneShotSchedule(at_step=60), seed=seed
    )
    sim = Simulator(program, RandomFairDaemon(seed=seed), injector=injector)
    run = sim.run(max_steps=4000)
    verdict = FailSafeMonitor(4, 2).verdict(
        run.trace, program.initial_state(), run.state
    )
    return (
        f"crashed={verdict.crashed}, safety_ok={verdict.safety_ok}, "
        f"completions after crash={verdict.completions_after_crash}"
    )


def _demo_intolerant(seed: int) -> str:
    program = with_byzantine(make_cb(3, 2))
    injector = FaultInjector(
        program, byzantine_fault(), OneShotSchedule(at_step=40), seed=seed
    )
    sim = Simulator(program, RandomFairDaemon(seed=seed), injector=injector)
    run = sim.run(max_steps=4000)
    report = BarrierSpecChecker(3, 2).check(run.trace, program.initial_state())
    return (
        f"violations={len(report.violations)} (no tolerance is possible; "
        "spec violations expected)"
    )


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table1",
        title="Fault classification, appropriate tolerance, demonstration",
        columns=("correctability", "detectable", "undetectable"),
        paper_claims=[
            "each fault class receives the appropriate tolerance",
        ],
    )
    for row in table1_rows():
        result.add(*row)
    result.notes.extend(
        [
            f"trivially-masking demo: {_demo_trivially_masking(seed)}",
            f"masking demo: {_demo_masking(seed)}",
            f"stabilizing demo: {_demo_stabilizing(seed)}",
            f"fail-safe demo: {_demo_fail_safe(seed)}",
            f"intolerant demo: {_demo_intolerant(seed)}",
        ]
    )
    return result
