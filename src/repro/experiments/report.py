"""Result containers and plain-text rendering for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table/figure, as rows of data."""

    exp_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_claims: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return render_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = [str(c) for c in result.columns]
    body = [[_fmt(v) for v in row] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {result.exp_id}: {result.title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    if result.paper_claims:
        lines.append("paper claims:")
        lines.extend(f"  * {c}" for c in result.paper_claims)
    if result.notes:
        lines.append("notes:")
        lines.extend(f"  * {n}" for n in result.notes)
    return "\n".join(lines)


def shape_check(
    xs: Sequence[float], ys: Sequence[float], nondecreasing: bool = True, tol: float = 1e-9
) -> bool:
    """Is the series monotone (the 'shape' assertions in the tests)?"""
    if len(xs) != len(ys):
        raise ValueError("length mismatch")
    pairs = sorted(zip(xs, ys))
    values = [y for _x, y in pairs]
    if nondecreasing:
        return all(b >= a - tol for a, b in zip(values, values[1:]))
    return all(b <= a + tol for a, b in zip(values, values[1:]))
