"""Registry mapping experiment ids to their runners."""

from __future__ import annotations

from typing import Callable

from repro.experiments import fig3, fig4, fig5, fig6, fig7, sensitivity, table1
from repro.experiments.report import ExperimentResult

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table1": table1.run,
    "sensitivity": sensitivity.run,
}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
