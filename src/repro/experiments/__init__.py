"""Experiment runners -- one per table/figure of the paper.

Each ``figN`` module exposes ``run(...) -> ExperimentResult``; the
registry maps experiment ids to runners; the CLI regenerates any or all
of them::

    python -m repro.experiments all
    python -m repro.experiments fig5 --phases 500
"""

from repro.experiments.report import ExperimentResult, render_table
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["ExperimentResult", "render_table", "EXPERIMENTS", "run_experiment"]
