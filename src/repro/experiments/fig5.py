"""Figure 5: simulated effect of fault frequency and latency.

The same sweep as Figure 3, measured on the timed protocol simulation.
The paper: "the number of re-executions is the same as those predicted
analytically (cf. Figures 3 and 5)."
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.model import expected_instances
from repro.experiments.report import ExperimentResult
from repro.experiments.sweep import SweepExecutor, run_grid
from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig

DEFAULT_F = (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1)
DEFAULT_C = (0.0, 0.01, 0.05)

#: Sweep-point reference for :class:`~repro.experiments.sweep.SweepExecutor`.
POINT_FN = "repro.experiments.fig5:simulate_instances_per_phase"


def simulate_instances_per_phase(
    h: int, c: float, f: float, phases: int, seed: int
) -> float:
    sim = FTTreeBarrierSim(
        nprocs=2**h,
        config=SimConfig(latency=c, fault_frequency=f, seed=seed),
    )
    metrics = sim.run(phases=phases, max_time=phases * 40.0)
    return metrics.instances_per_phase


def run(
    h: int = 5,
    f_values: Sequence[float] = DEFAULT_F,
    c_values: Sequence[float] = DEFAULT_C,
    phases: int = 300,
    seed: int = 0,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig5",
        title="Simulated: instances per successful phase (h=%d)" % h,
        columns=("f",)
        + tuple(f"c={c:g} sim" for c in c_values)
        + tuple(f"c={c:g} analytic" for c in c_values),
        paper_claims=[
            "simulated re-executions match the analytical prediction",
        ],
        notes=[f"{phases} successful phases per point, seed={seed}"],
    )
    grid = [
        dict(h=h, c=c, f=f, phases=phases, seed=seed)
        for f in f_values
        for c in c_values
    ]
    sims = run_grid(POINT_FN, grid, executor)
    nc = len(c_values)
    for i, f in enumerate(f_values):
        analytics = [expected_instances(h, c, f) for c in c_values]
        result.add(f, *sims[i * nc : (i + 1) * nc], *analytics)
    from repro.analysis.model import instances_ci

    lo, hi = instances_ci(h, max(c_values), max(f_values), phases)
    result.notes.append(
        f"sampling band at the largest (c, f): analytic mean within "
        f"[{lo:.4f}, {hi:.4f}] at {phases} phases (95% normal approx)"
    )
    return result
