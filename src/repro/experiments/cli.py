"""Command-line entry point: regenerate the paper's tables and figures.

::

    repro-experiments all
    repro-experiments fig5 --phases 500 --seed 7
    python -m repro.experiments fig7 --trials 50
    python -m repro.experiments trace-report runs/trace.jsonl
    python -m repro.experiments metrics-report runs/trace.jsonl --format prom
    python -m repro.experiments causal-report runs/trace.jsonl
    python -m repro.experiments chaos run --runs 16 --out runs/chaos
    python -m repro.experiments chaos replay runs/chaos/repro-gc-cb-0.json
    repro-experiments net run --nodes 5 --transport mem --drop 0.1
    repro-experiments net run --nodes 8 --transport tcp \
        --partition 0.5:1.5:0,1,2,3|4,5,6,7 --seed 42
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment

#: Subcommands that consume a JSONL trace instead of regenerating a figure.
REPORT_COMMANDS = ("trace-report", "metrics-report", "causal-report")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Low-cost Fault-tolerance in "
            "Barrier Synchronizations' (Kulkarni & Arora, ICPP 1998)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", *REPORT_COMMANDS, "chaos", "net", "obs"],
        help="which table/figure to regenerate, one of the trace "
        "reports (trace-report: summary; metrics-report: aggregated "
        "metrics; causal-report: per-fault chains) over a JSONL trace, "
        "the chaos campaign engine (chaos run | chaos replay <file>), "
        "the asyncio message-passing runtime (net run), or the live "
        "telemetry plane (obs tail <url-or-trace>)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="JSONL trace file (the *-report subcommands), or the "
        "chaos/net/obs action: 'run' (default), 'replay' (chaos only), "
        "'tail' (obs only)",
    )
    parser.add_argument(
        "arg",
        nargs="?",
        default=None,
        help="reproducer file for 'chaos replay'; base URL of a live "
        "run (http://...) or a JSONL trace file/dir for 'obs tail'",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help="metrics-report / causal-report output format "
        "(prom = Prometheus text exposition; metrics-report only)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--phases",
        type=int,
        default=None,
        help="successful phases per simulated point (fig5/fig6)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="perturbation trials per point (fig7)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render an ASCII chart of each figure's series",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation sweeps "
        "(fig5/fig6/fig7/sensitivity); 1 = in-process serial. Results "
        "are bit-identical at any job count",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed sweep-point cache directory; points "
        "already present are loaded instead of re-simulated",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-point wall-clock deadline in seconds; a point that "
        "hangs is terminated (and retried, see --retries) instead of "
        "stalling the sweep",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="attempts beyond the first per sweep point (exponential "
        "backoff); points still failing are reported and skipped",
    )
    chaos = parser.add_argument_group("chaos campaigns")
    chaos.add_argument(
        "--runs",
        type=int,
        default=None,
        help="campaign runs (distributed round-robin over the targets)",
    )
    chaos.add_argument(
        "--engines",
        default=None,
        metavar="T1,T2,...",
        help="comma-separated campaign targets (default: the four "
        "guarded-command barriers; see repro.chaos.ADAPTERS)",
    )
    chaos.add_argument(
        "--detectable",
        type=int,
        default=None,
        help="detectable faults per campaign run",
    )
    chaos.add_argument(
        "--undetectable",
        type=int,
        default=None,
        help="undetectable faults per campaign run",
    )
    chaos.add_argument(
        "--permanent",
        type=int,
        default=None,
        help="permanent (non-restarting) crash faults per campaign run",
    )
    chaos.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="campaign config JSON (flag options override its fields)",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write report.json and reproducer files here",
    )
    chaos.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging minimization of failing schedules",
    )
    net = parser.add_argument_group("net runtime (repro.net)")
    net.add_argument(
        "--nodes", type=int, default=5, help="distributed node count"
    )
    net.add_argument(
        "--transport",
        choices=("mem", "tcp", "unix"),
        default="mem",
        help="in-memory fabric (CI default), real localhost TCP, or "
        "Unix domain sockets (falls back to TCP without AF_UNIX)",
    )
    net.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes: >1 partitions the nodes across that "
        "many event loops (cross-shard traffic on batched socket links)",
    )
    net.add_argument(
        "--shard-transport",
        choices=("auto", "unix", "tcp"),
        default="auto",
        help="cross-shard link transport (auto = Unix domain sockets "
        "when available, else TCP)",
    )
    net.add_argument(
        "--batch-bytes",
        type=int,
        default=32768,
        metavar="N",
        help="cross-shard link flush threshold; links also flush at "
        "every event-loop turn boundary",
    )
    net.add_argument(
        "--resend",
        type=float,
        default=None,
        metavar="S",
        help="resend timer override (scale runs want ~0.4 at n>=256; "
        "default 0.04 suits a few dozen nodes)",
    )
    net.add_argument(
        "--hb-interval",
        type=float,
        default=None,
        metavar="S",
        help="heartbeat interval override (scale runs want ~2.0)",
    )
    net.add_argument(
        "--protocol",
        choices=("tree", "mb"),
        default="tree",
        help="tree barrier (arrive/release waves) or the MB ring",
    )
    net.add_argument(
        "--barriers", type=int, default=20, help="barrier rounds to complete"
    )
    net.add_argument(
        "--arity", type=int, default=2, help="tree fan-out (tree protocol)"
    )
    net.add_argument(
        "--drop", type=float, default=0.0, help="per-message drop rate"
    )
    net.add_argument(
        "--dup", type=float, default=0.0, help="per-message duplication rate"
    )
    net.add_argument(
        "--delay", type=float, default=0.0, help="per-message delay rate"
    )
    net.add_argument(
        "--reorder", type=float, default=0.0, help="per-message reorder rate"
    )
    net.add_argument(
        "--partition",
        action="append",
        default=None,
        metavar="START:STOP:G1|G2[|...]",
        help="partition window, e.g. 0.5:1.5:0,1,2|3,4 -- cross-group "
        "messages drop for START<=t<STOP seconds (repeatable)",
    )
    net.add_argument(
        "--crash",
        action="append",
        default=None,
        metavar="PID:WHEN",
        help="crash-restart node PID at round/strike-time WHEN (repeatable)",
    )
    net.add_argument(
        "--fail-stop",
        action="append",
        default=None,
        metavar="PID:WHEN",
        help="permanently fail-stop node PID at WHEN -- crash with no "
        "restart, Section 7's detectable uncorrectable fault (repeatable)",
    )
    net.add_argument(
        "--byzantine",
        action="append",
        default=None,
        metavar="PID:WHEN|N",
        help="net run: turn node PID Byzantine at WHEN -- protocol-valid "
        "but semantically wrong frames, seeded lie palette (repeatable); "
        "chaos run: a bare count of Byzantine faults per campaign run",
    )
    net.add_argument(
        "--corrupt",
        type=float,
        default=0.0,
        metavar="RATE",
        help="per-frame byte-corruption rate at the transport (the "
        "receiver must quarantine, never raise)",
    )
    net.add_argument(
        "--forge",
        type=float,
        default=0.0,
        metavar="RATE",
        help="per-send forged-envelope rate: a seeded replayed or "
        "src-spoofed extra frame rides alongside the real one",
    )
    net.add_argument(
        "--no-defense",
        action="store_true",
        help="trust every frame (adversarial control): skip validation, "
        "suspicion strikes and the fail-safe degradation path",
    )
    net.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="FaultPlan JSON file (overrides the fault flags above)",
    )
    net.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="dump per-node and merged JSONL traces here (flight-"
        "recorder snapshots when the live plane is on)",
    )
    net.add_argument(
        "--work",
        type=float,
        default=None,
        metavar="S",
        help="simulated per-barrier work time in seconds (slows the "
        "run down so it can be watched live)",
    )
    obs = parser.add_argument_group("live telemetry plane (repro.obs.live)")
    obs.add_argument(
        "--live",
        action="store_true",
        help="net run: stream the Lamport merge through the guarantee "
        "monitors while nodes run (bounded flight recorders per node)",
    )
    obs.add_argument(
        "--obs-port",
        type=int,
        default=None,
        metavar="PORT",
        help="net run: serve /metrics, /health and /spans/recent on "
        "localhost:PORT during the run (implies --live; 0 = ephemeral)",
    )
    obs.add_argument(
        "--ring",
        type=int,
        default=4096,
        metavar="N",
        help="flight-recorder ring capacity per node (live plane)",
    )
    obs.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="S",
        help="obs tail: poll interval against a live endpoint",
    )
    return parser


#: Experiments whose runners accept a SweepExecutor.
SWEPT = ("fig5", "fig6", "fig7", "sensitivity")


def _kwargs_for(exp_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if exp_id in ("fig5", "fig6", "fig7", "table1", "sensitivity"):
        kwargs["seed"] = args.seed
    if exp_id in ("fig5", "fig6") and args.phases is not None:
        kwargs["phases"] = args.phases
    if exp_id == "fig7" and args.trials is not None:
        kwargs["trials"] = args.trials
    if exp_id in SWEPT and (
        args.jobs != 1
        or args.cache_dir is not None
        or args.timeout is not None
        or args.retries
    ):
        kwargs["executor"] = _executor_from(args)
    return kwargs


def _executor_from(args: argparse.Namespace):
    from repro.experiments.sweep import SweepExecutor

    return SweepExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
    )


def trace_report(path: str) -> int:
    """Summarize a structured JSONL trace to the paper's quantities."""
    from repro.obs.jsonl import read_jsonl
    from repro.obs.summary import summarize

    events = read_jsonl(path)
    print(summarize(events).render())
    return 0


def metrics_report(path: str, fmt: str = "text") -> int:
    """Aggregate a JSONL trace into the metrics registry and export it."""
    import json as _json

    from repro.obs.jsonl import read_jsonl
    from repro.obs.metrics import metrics_from_trace

    registry = metrics_from_trace(read_jsonl(path))
    if fmt == "json":
        print(_json.dumps(registry.to_json(), indent=2, sort_keys=True))
    elif fmt == "prom":
        sys.stdout.write(registry.render_prometheus())
    else:
        print(registry.render())
    return 0


def causal_report_cmd(path: str, fmt: str = "text") -> int:
    """Reconstruct per-fault causal chains from a JSONL trace."""
    import json as _json

    from repro.obs.causal import causal_report
    from repro.obs.jsonl import read_jsonl

    report = causal_report(read_jsonl(path))
    if fmt == "json":
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def chaos_cmd(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The campaign engine: ``chaos run`` / ``chaos replay <file>``.

    ``run`` exits non-zero when any guarantee was violated (the shrunk
    reproducers, if --out was given, tell you how); ``replay`` exits
    non-zero when the saved violation does *not* reappear.
    """
    import json as _json

    from repro.chaos import CampaignConfig, replay_file, run_campaign

    action = args.path or "run"
    if action == "replay":
        if args.arg is None:
            parser.error(
                "chaos replay requires a reproducer file "
                f"(usage: {parser.prog} chaos replay <file>)"
            )
        reproducer, outcome = replay_file(args.arg)
        saved = reproducer.violation
        print(
            f"replaying {reproducer.target}: {reproducer.plan.count} fault "
            f"event(s), expecting [{saved.guarantee}/{saved.kind}]"
        )
        for violation in outcome.violations:
            print(f"  observed: {violation}")
        reproduced = any(
            v.guarantee == saved.guarantee for v in outcome.violations
        )
        print("REPRODUCED" if reproduced else "NOT REPRODUCED")
        return 0 if reproduced else 1
    if action != "run":
        parser.error(f"unknown chaos action {action!r} (use: run | replay)")

    overrides: dict = {}
    if args.config is not None:
        with open(args.config, encoding="utf-8") as fh:
            overrides = CampaignConfig.from_json(_json.load(fh)).to_json()
        overrides.pop("version", None)
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.engines is not None:
        overrides["targets"] = tuple(
            t.strip() for t in args.engines.split(",") if t.strip()
        )
    if args.detectable is not None:
        overrides["detectable"] = args.detectable
    if args.undetectable is not None:
        overrides["undetectable"] = args.undetectable
    if args.byzantine:
        # The flag doubles as the net verb's PID:WHEN spec; a campaign
        # takes a bare per-run count.
        if len(args.byzantine) != 1 or ":" in args.byzantine[0]:
            parser.error(
                "chaos run takes --byzantine as a bare count "
                "(PID:WHEN specs are for 'net run')"
            )
        try:
            overrides["byzantine"] = int(args.byzantine[0])
        except ValueError:
            parser.error(f"bad --byzantine count {args.byzantine[0]!r}")
    if args.permanent is not None:
        overrides["permanent"] = args.permanent
    if args.seed:
        overrides["seed"] = args.seed
    if args.no_shrink:
        overrides["shrink"] = False
    config = CampaignConfig.from_json(overrides) if overrides else CampaignConfig()

    executor = None
    if (
        args.jobs != 1
        or args.cache_dir is not None
        or args.timeout is not None
        or args.retries
    ):
        executor = _executor_from(args)
    report = run_campaign(config, executor=executor, progress=print)
    print(report.render())
    if args.out is not None:
        for path in report.save(args.out):
            print(f"wrote {path}")
    return 0 if report.ok else 1


def _parse_partition(spec: str):
    """``START:STOP:G1|G2[|...]`` -> :class:`PartitionWindow`."""
    from repro.chaos.plan import PartitionWindow

    try:
        start_s, stop_s, groups_s = spec.split(":", 2)
        groups = tuple(
            tuple(int(pid) for pid in group.split(","))
            for group in groups_s.split("|")
        )
        return PartitionWindow(
            start=float(start_s), stop=float(stop_s), groups=groups
        )
    except (ValueError, IndexError) as exc:
        raise ValueError(
            f"bad partition spec {spec!r} "
            "(expected START:STOP:G1|G2, e.g. 0.5:1.5:0,1,2|3,4)"
        ) from exc


def _net_plan(args: argparse.Namespace):
    """The FaultPlan a ``net run`` invocation asked for (None = clean)."""
    import json as _json

    from repro.chaos.plan import FaultEvent, FaultPlan, LinkPlan

    if args.plan is not None:
        with open(args.plan, encoding="utf-8") as fh:
            return FaultPlan.from_json(_json.load(fh))
    link = None
    if (
        args.drop
        or args.dup
        or args.delay
        or args.reorder
        or args.corrupt
        or args.forge
    ):
        link = LinkPlan(
            loss=args.drop,
            duplication=args.dup,
            delay=args.delay,
            reorder=args.reorder,
            corruption=args.corrupt,
            forge=args.forge,
        )
    partitions = tuple(_parse_partition(s) for s in (args.partition or ()))

    def pid_when(spec: str, flag: str) -> tuple[int, float]:
        pid_s, sep, when_s = spec.partition(":")
        if not sep:
            raise ValueError(f"bad {flag} spec {spec!r} (expected PID:WHEN)")
        return int(pid_s), float(when_s)

    events = []
    for spec in args.crash or ():
        pid, when = pid_when(spec, "--crash")
        events.append(FaultEvent(pid=pid, when=when))
    for spec in args.fail_stop or ():
        pid, when = pid_when(spec, "--fail-stop")
        events.append(FaultEvent(pid=pid, when=when, kind="crash"))
    for spec in args.byzantine or ():
        pid, when = pid_when(spec, "--byzantine")
        events.append(
            FaultEvent(pid=pid, when=when, detectable=False, kind="byzantine")
        )
    if link is None and not partitions and not events:
        return None
    return FaultPlan(
        nprocs=args.nodes,
        events=tuple(events),
        seed=args.seed,
        link=link,
        partitions=partitions,
    )


def net_cmd(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The asyncio runtime: ``net run``.

    Runs the chosen protocol across ``--nodes`` asyncio tasks over the
    chosen transport, injecting the requested faults at the transport,
    and exits non-zero unless the run completed with zero guarantee
    violations.  The printed digest is the replay identity: for the
    tree protocol, the same seed and plan reproduce it exactly.
    """
    action = args.path or "run"
    if action != "run":
        parser.error(f"unknown net action {action!r} (use: run)")
    from dataclasses import replace

    from repro.errors import ObsPortInUseError
    from repro.net.node import Timing
    from repro.net.runtime import NetConfig, run_sync

    try:
        plan = _net_plan(args)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))
    timing_kw: dict = {}
    if args.work:
        timing_kw["work"] = args.work
    if args.resend is not None:
        # Scale the dependent timers with the resend interval so one
        # flag tunes a consistent profile (see EXPERIMENTS.md).
        timing_kw["resend"] = args.resend
        timing_kw["resend_max"] = 4 * args.resend
        timing_kw["finish_timeout"] = max(2.0, 10 * args.resend)
    if args.hb_interval is not None:
        timing_kw["hb_interval"] = args.hb_interval
    timing = Timing(**timing_kw)
    try:
        config = NetConfig(
            nodes=args.nodes,
            barriers=args.barriers,
            protocol=args.protocol,
            transport=args.transport,
            arity=args.arity,
            seed=args.seed,
            plan=plan,
            timing=timing,
            timeout_s=args.timeout if args.timeout is not None else 60.0,
            trace_dir=args.trace_dir,
            obs_port=args.obs_port,
            live=args.live,
            ring_capacity=args.ring,
            shards=args.shards,
            shard_transport=args.shard_transport,
            batch_bytes=args.batch_bytes,
            defense=not args.no_defense,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.obs_port is not None:
        # The URL is announced at bind time (not guessed up front), so
        # --obs-port 0 reports the ephemeral port the kernel picked.
        config = replace(
            config,
            obs_announce=lambda url: print(
                f"serving live telemetry on {url} "
                "(/metrics /health /spans/recent)",
                flush=True,
            ),
        )
    try:
        result = run_sync(config)
    except ObsPortInUseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    for path in result.trace_paths:
        print(f"wrote {path}")
    return 0 if result.ok else 1


def _tail_events(source: str):
    """Events for an offline ``obs tail``: a snapshot file, a JSONL
    trace, or a trace directory (merged.jsonl preferred, else per-node
    streams re-merged)."""
    from pathlib import Path

    from repro.net.trace import merge_traces
    from repro.obs.jsonl import read_jsonl
    from repro.obs.recorder import read_snapshot

    path = Path(source)
    if path.is_dir():
        merged = path / "merged.jsonl"
        if merged.exists():
            return read_jsonl(merged)
        streams = {}
        for child in sorted(path.glob("trace-*.jsonl")):
            pid = int(child.stem.split("-")[1])
            streams[pid] = read_jsonl(child)
        for child in sorted(path.glob("flight-*.snapshot.jsonl")):
            header, events = read_snapshot(child)
            streams[int(header["pid"])] = events
        if not streams:
            raise FileNotFoundError(f"no trace files under {source}")
        return merge_traces(streams)
    with open(path, encoding="utf-8") as fh:
        first = fh.readline()
    if '"flight-recorder-snapshot"' in first:
        header, events = read_snapshot(path)
        print(
            f"flight recorder pid={header['pid']}: "
            f"{header['retained']} retained of {header['appended']} "
            f"({header['dropped']} dropped, capacity {header['capacity']})"
        )
        return events
    return read_jsonl(path)


def _tail_replay(source: str) -> int:
    """Replay a recorded trace as a scrolling span feed + histogram."""
    from repro.obs.spans import BARRIER, SpanFolder
    from repro.viz.chart import ascii_histogram_of

    durations: list[float] = []

    def sink(span) -> None:
        print(span.render())
        if span.kind == BARRIER and span.duration is not None:
            durations.append(span.duration)

    events = _tail_events(source)
    folder = SpanFolder(sink=sink)
    folder.feed_all(events)
    folder.finish(events[-1].time if events else 0.0)
    counts_by_kind = " ".join(
        f"{kind}={count}" for kind, count in sorted(folder.finished.items())
    )
    print(f"spans: {counts_by_kind}")
    if durations:
        print("barrier durations (virtual time):")
        print(ascii_histogram_of(durations))
    return 0


def _tail_live(url: str, interval: float, timeout: float | None) -> int:
    """Attach to a running net job's endpoint and stream its spans."""
    import json as _json
    import urllib.error
    import urllib.request

    base = url.rstrip("/")

    def fetch(route: str):
        with urllib.request.urlopen(base + route, timeout=5.0) as resp:
            return _json.loads(resp.read().decode("utf-8"))

    seen_spans: set[int] = set()
    seen_violations = 0
    deadline = None if timeout is None else time.monotonic() + timeout
    attached = False
    failures = 0
    while True:
        try:
            health = fetch("/health")
            payload = fetch("/spans/recent")
            failures = 0
        except (urllib.error.URLError, ConnectionError, OSError):
            failures += 1
            # Tolerate a slow start; once attached, a dead endpoint
            # means the run is over.
            if attached or failures > max(3, int(5.0 / max(interval, 0.1))):
                break
            time.sleep(interval)
            continue
        if not attached:
            print(f"attached to {base} ({health['nodes']} nodes)")
            attached = True
        for span in payload["recent"]:
            if span["span_id"] not in seen_spans:
                seen_spans.add(span["span_id"])
                dur = span["duration"]
                dur_s = "" if dur is None else f" dur={dur:g}"
                pid = span["pid"]
                pid_s = "" if pid is None else f" pid={pid}"
                print(
                    f"[{span['start']:>10g}] {span['kind']:<13} "
                    f"{span['name']:<14} {span['status']}{pid_s}{dur_s}"
                )
        fresh = payload["violations"][seen_violations:]
        seen_violations += len(fresh)
        for violation in fresh:
            where = violation.get("span") or {}
            print(
                f"VIOLATION [{violation['guarantee']}/{violation['kind']}] "
                f"t={violation['time']:g}: {violation['message']}"
                + (f" (span {where.get('name')})" if where else "")
            )
        if health["status"] == "finished":
            print("run finished")
            break
        if deadline is not None and time.monotonic() >= deadline:
            print("tail timeout reached")
            break
        time.sleep(interval)
    if not attached:
        print(f"could not attach to {base}")
        return 1
    print(
        f"tailed {len(seen_spans)} span(s), "
        f"{seen_violations} violation(s)"
    )
    return 0 if seen_violations == 0 else 1


def obs_cmd(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The telemetry plane: ``obs tail <url-or-trace>``.

    With an ``http://`` argument, attaches to a live run's endpoint and
    streams spans/violations until the run finishes; with a file or
    directory, replays the recorded trace as the same feed.
    """
    action = args.path or "tail"
    if action != "tail":
        parser.error(f"unknown obs action {action!r} (use: tail)")
    if args.arg is None:
        parser.error(
            "obs tail requires a live URL or a trace file/dir "
            f"(usage: {parser.prog} obs tail http://127.0.0.1:9309)"
        )
    if args.arg.startswith(("http://", "https://")):
        return _tail_live(args.arg, args.interval, args.timeout)
    try:
        return _tail_replay(args.arg)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error raises


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream pager/head closed our stdout; the Unix convention
        # is a quiet exit, not a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "chaos":
        return chaos_cmd(args, parser)
    if args.experiment == "net":
        return net_cmd(args, parser)
    if args.experiment == "obs":
        return obs_cmd(args, parser)
    if args.experiment in REPORT_COMMANDS:
        if args.path is None:
            # A proper argparse error (usage + message, exit status 2)
            # instead of the old unhelpful path-less crash.
            parser.error(
                f"{args.experiment} requires a JSONL trace path "
                f"(usage: {parser.prog} {args.experiment} <trace.jsonl>)"
            )
        if args.experiment == "trace-report":
            return trace_report(args.path)
        if args.experiment == "metrics-report":
            return metrics_report(args.path, args.format)
        return causal_report_cmd(args.path, args.format)
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in targets:
        start = time.perf_counter()
        result = run_experiment(exp_id, **_kwargs_for(exp_id, args))
        elapsed = time.perf_counter() - start
        print(result.render())
        if args.chart and exp_id not in ("table1", "sensitivity"):
            print()
            print(chart_of(result))
        print(f"[{exp_id} regenerated in {elapsed:.1f}s]\n")
    return 0


def chart_of(result) -> str:
    """ASCII chart of an experiment's numeric series (first column is
    the x axis; the remaining numeric columns are the series)."""
    from repro.viz.chart import ascii_chart

    x = [float(v) for v in result.column(result.columns[0])]
    series = {
        name: [float(v) for v in result.column(name)]
        for name in result.columns[1:]
        if all(isinstance(v, (int, float)) for v in result.column(name))
    }
    return ascii_chart(x, series, title=result.title)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
