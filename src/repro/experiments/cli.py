"""Command-line entry point: regenerate the paper's tables and figures.

::

    repro-experiments all
    repro-experiments fig5 --phases 500 --seed 7
    python -m repro.experiments fig7 --trials 50
    python -m repro.experiments trace-report runs/trace.jsonl
    python -m repro.experiments metrics-report runs/trace.jsonl --format prom
    python -m repro.experiments causal-report runs/trace.jsonl
    python -m repro.experiments chaos run --runs 16 --out runs/chaos
    python -m repro.experiments chaos replay runs/chaos/repro-gc-cb-0.json
    repro-experiments net run --nodes 5 --transport mem --drop 0.1
    repro-experiments net run --nodes 8 --transport tcp \
        --partition 0.5:1.5:0,1,2,3|4,5,6,7 --seed 42
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment

#: Subcommands that consume a JSONL trace instead of regenerating a figure.
REPORT_COMMANDS = ("trace-report", "metrics-report", "causal-report")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Low-cost Fault-tolerance in "
            "Barrier Synchronizations' (Kulkarni & Arora, ICPP 1998)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", *REPORT_COMMANDS, "chaos", "net"],
        help="which table/figure to regenerate, one of the trace "
        "reports (trace-report: summary; metrics-report: aggregated "
        "metrics; causal-report: per-fault chains) over a JSONL trace, "
        "the chaos campaign engine (chaos run | chaos replay <file>), "
        "or the asyncio message-passing runtime (net run)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="JSONL trace file (the *-report subcommands), or the "
        "chaos/net action: 'run' (default) or 'replay' (chaos only)",
    )
    parser.add_argument(
        "arg",
        nargs="?",
        default=None,
        help="reproducer file for 'chaos replay'",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help="metrics-report / causal-report output format "
        "(prom = Prometheus text exposition; metrics-report only)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--phases",
        type=int,
        default=None,
        help="successful phases per simulated point (fig5/fig6)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="perturbation trials per point (fig7)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render an ASCII chart of each figure's series",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation sweeps "
        "(fig5/fig6/fig7/sensitivity); 1 = in-process serial. Results "
        "are bit-identical at any job count",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed sweep-point cache directory; points "
        "already present are loaded instead of re-simulated",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-point wall-clock deadline in seconds; a point that "
        "hangs is terminated (and retried, see --retries) instead of "
        "stalling the sweep",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="attempts beyond the first per sweep point (exponential "
        "backoff); points still failing are reported and skipped",
    )
    chaos = parser.add_argument_group("chaos campaigns")
    chaos.add_argument(
        "--runs",
        type=int,
        default=None,
        help="campaign runs (distributed round-robin over the targets)",
    )
    chaos.add_argument(
        "--engines",
        default=None,
        metavar="T1,T2,...",
        help="comma-separated campaign targets (default: the four "
        "guarded-command barriers; see repro.chaos.ADAPTERS)",
    )
    chaos.add_argument(
        "--detectable",
        type=int,
        default=None,
        help="detectable faults per campaign run",
    )
    chaos.add_argument(
        "--undetectable",
        type=int,
        default=None,
        help="undetectable faults per campaign run",
    )
    chaos.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="campaign config JSON (flag options override its fields)",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write report.json and reproducer files here",
    )
    chaos.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging minimization of failing schedules",
    )
    net = parser.add_argument_group("net runtime (repro.net)")
    net.add_argument(
        "--nodes", type=int, default=5, help="distributed node count"
    )
    net.add_argument(
        "--transport",
        choices=("mem", "tcp"),
        default="mem",
        help="in-memory fabric (CI default) or real localhost TCP",
    )
    net.add_argument(
        "--protocol",
        choices=("tree", "mb"),
        default="tree",
        help="tree barrier (arrive/release waves) or the MB ring",
    )
    net.add_argument(
        "--barriers", type=int, default=20, help="barrier rounds to complete"
    )
    net.add_argument(
        "--arity", type=int, default=2, help="tree fan-out (tree protocol)"
    )
    net.add_argument(
        "--drop", type=float, default=0.0, help="per-message drop rate"
    )
    net.add_argument(
        "--dup", type=float, default=0.0, help="per-message duplication rate"
    )
    net.add_argument(
        "--delay", type=float, default=0.0, help="per-message delay rate"
    )
    net.add_argument(
        "--reorder", type=float, default=0.0, help="per-message reorder rate"
    )
    net.add_argument(
        "--partition",
        action="append",
        default=None,
        metavar="START:STOP:G1|G2[|...]",
        help="partition window, e.g. 0.5:1.5:0,1,2|3,4 -- cross-group "
        "messages drop for START<=t<STOP seconds (repeatable)",
    )
    net.add_argument(
        "--crash",
        action="append",
        default=None,
        metavar="PID:WHEN",
        help="crash-restart node PID at round/strike-time WHEN (repeatable)",
    )
    net.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="FaultPlan JSON file (overrides the fault flags above)",
    )
    net.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="dump per-node and merged JSONL traces here",
    )
    return parser


#: Experiments whose runners accept a SweepExecutor.
SWEPT = ("fig5", "fig6", "fig7", "sensitivity")


def _kwargs_for(exp_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if exp_id in ("fig5", "fig6", "fig7", "table1", "sensitivity"):
        kwargs["seed"] = args.seed
    if exp_id in ("fig5", "fig6") and args.phases is not None:
        kwargs["phases"] = args.phases
    if exp_id == "fig7" and args.trials is not None:
        kwargs["trials"] = args.trials
    if exp_id in SWEPT and (
        args.jobs != 1
        or args.cache_dir is not None
        or args.timeout is not None
        or args.retries
    ):
        kwargs["executor"] = _executor_from(args)
    return kwargs


def _executor_from(args: argparse.Namespace):
    from repro.experiments.sweep import SweepExecutor

    return SweepExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
    )


def trace_report(path: str) -> int:
    """Summarize a structured JSONL trace to the paper's quantities."""
    from repro.obs.jsonl import read_jsonl
    from repro.obs.summary import summarize

    events = read_jsonl(path)
    print(summarize(events).render())
    return 0


def metrics_report(path: str, fmt: str = "text") -> int:
    """Aggregate a JSONL trace into the metrics registry and export it."""
    import json as _json

    from repro.obs.jsonl import read_jsonl
    from repro.obs.metrics import metrics_from_trace

    registry = metrics_from_trace(read_jsonl(path))
    if fmt == "json":
        print(_json.dumps(registry.to_json(), indent=2, sort_keys=True))
    elif fmt == "prom":
        sys.stdout.write(registry.render_prometheus())
    else:
        print(registry.render())
    return 0


def causal_report_cmd(path: str, fmt: str = "text") -> int:
    """Reconstruct per-fault causal chains from a JSONL trace."""
    import json as _json

    from repro.obs.causal import causal_report
    from repro.obs.jsonl import read_jsonl

    report = causal_report(read_jsonl(path))
    if fmt == "json":
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def chaos_cmd(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The campaign engine: ``chaos run`` / ``chaos replay <file>``.

    ``run`` exits non-zero when any guarantee was violated (the shrunk
    reproducers, if --out was given, tell you how); ``replay`` exits
    non-zero when the saved violation does *not* reappear.
    """
    import json as _json

    from repro.chaos import CampaignConfig, replay_file, run_campaign

    action = args.path or "run"
    if action == "replay":
        if args.arg is None:
            parser.error(
                "chaos replay requires a reproducer file "
                f"(usage: {parser.prog} chaos replay <file>)"
            )
        reproducer, outcome = replay_file(args.arg)
        saved = reproducer.violation
        print(
            f"replaying {reproducer.target}: {reproducer.plan.count} fault "
            f"event(s), expecting [{saved.guarantee}/{saved.kind}]"
        )
        for violation in outcome.violations:
            print(f"  observed: {violation}")
        reproduced = any(
            v.guarantee == saved.guarantee for v in outcome.violations
        )
        print("REPRODUCED" if reproduced else "NOT REPRODUCED")
        return 0 if reproduced else 1
    if action != "run":
        parser.error(f"unknown chaos action {action!r} (use: run | replay)")

    overrides: dict = {}
    if args.config is not None:
        with open(args.config, encoding="utf-8") as fh:
            overrides = CampaignConfig.from_json(_json.load(fh)).to_json()
        overrides.pop("version", None)
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.engines is not None:
        overrides["targets"] = tuple(
            t.strip() for t in args.engines.split(",") if t.strip()
        )
    if args.detectable is not None:
        overrides["detectable"] = args.detectable
    if args.undetectable is not None:
        overrides["undetectable"] = args.undetectable
    if args.seed:
        overrides["seed"] = args.seed
    if args.no_shrink:
        overrides["shrink"] = False
    config = CampaignConfig.from_json(overrides) if overrides else CampaignConfig()

    executor = None
    if (
        args.jobs != 1
        or args.cache_dir is not None
        or args.timeout is not None
        or args.retries
    ):
        executor = _executor_from(args)
    report = run_campaign(config, executor=executor, progress=print)
    print(report.render())
    if args.out is not None:
        for path in report.save(args.out):
            print(f"wrote {path}")
    return 0 if report.ok else 1


def _parse_partition(spec: str):
    """``START:STOP:G1|G2[|...]`` -> :class:`PartitionWindow`."""
    from repro.chaos.plan import PartitionWindow

    try:
        start_s, stop_s, groups_s = spec.split(":", 2)
        groups = tuple(
            tuple(int(pid) for pid in group.split(","))
            for group in groups_s.split("|")
        )
        return PartitionWindow(
            start=float(start_s), stop=float(stop_s), groups=groups
        )
    except (ValueError, IndexError) as exc:
        raise ValueError(
            f"bad partition spec {spec!r} "
            "(expected START:STOP:G1|G2, e.g. 0.5:1.5:0,1,2|3,4)"
        ) from exc


def _net_plan(args: argparse.Namespace):
    """The FaultPlan a ``net run`` invocation asked for (None = clean)."""
    import json as _json

    from repro.chaos.plan import FaultEvent, FaultPlan, LinkPlan

    if args.plan is not None:
        with open(args.plan, encoding="utf-8") as fh:
            return FaultPlan.from_json(_json.load(fh))
    link = None
    if args.drop or args.dup or args.delay or args.reorder:
        link = LinkPlan(
            loss=args.drop,
            duplication=args.dup,
            delay=args.delay,
            reorder=args.reorder,
        )
    partitions = tuple(_parse_partition(s) for s in (args.partition or ()))
    events = []
    for spec in args.crash or ():
        pid_s, _, when_s = spec.partition(":")
        events.append(FaultEvent(pid=int(pid_s), when=float(when_s)))
    if link is None and not partitions and not events:
        return None
    return FaultPlan(
        nprocs=args.nodes,
        events=tuple(events),
        seed=args.seed,
        link=link,
        partitions=partitions,
    )


def net_cmd(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The asyncio runtime: ``net run``.

    Runs the chosen protocol across ``--nodes`` asyncio tasks over the
    chosen transport, injecting the requested faults at the transport,
    and exits non-zero unless the run completed with zero guarantee
    violations.  The printed digest is the replay identity: for the
    tree protocol, the same seed and plan reproduce it exactly.
    """
    action = args.path or "run"
    if action != "run":
        parser.error(f"unknown net action {action!r} (use: run)")
    from repro.net.runtime import NetConfig, run_sync

    try:
        plan = _net_plan(args)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))
    config = NetConfig(
        nodes=args.nodes,
        barriers=args.barriers,
        protocol=args.protocol,
        transport=args.transport,
        arity=args.arity,
        seed=args.seed,
        plan=plan,
        timeout_s=args.timeout if args.timeout is not None else 60.0,
        trace_dir=args.trace_dir,
    )
    result = run_sync(config)
    print(result.render())
    for path in result.trace_paths:
        print(f"wrote {path}")
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "chaos":
        return chaos_cmd(args, parser)
    if args.experiment == "net":
        return net_cmd(args, parser)
    if args.experiment in REPORT_COMMANDS:
        if args.path is None:
            # A proper argparse error (usage + message, exit status 2)
            # instead of the old unhelpful path-less crash.
            parser.error(
                f"{args.experiment} requires a JSONL trace path "
                f"(usage: {parser.prog} {args.experiment} <trace.jsonl>)"
            )
        if args.experiment == "trace-report":
            return trace_report(args.path)
        if args.experiment == "metrics-report":
            return metrics_report(args.path, args.format)
        return causal_report_cmd(args.path, args.format)
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in targets:
        start = time.perf_counter()
        result = run_experiment(exp_id, **_kwargs_for(exp_id, args))
        elapsed = time.perf_counter() - start
        print(result.render())
        if args.chart and exp_id not in ("table1", "sensitivity"):
            print()
            print(chart_of(result))
        print(f"[{exp_id} regenerated in {elapsed:.1f}s]\n")
    return 0


def chart_of(result) -> str:
    """ASCII chart of an experiment's numeric series (first column is
    the x axis; the remaining numeric columns are the series)."""
    from repro.viz.chart import ascii_chart

    x = [float(v) for v in result.column(result.columns[0])]
    series = {
        name: [float(v) for v in result.column(name)]
        for name in result.columns[1:]
        if all(isinstance(v, (int, float)) for v in result.column(name))
    }
    return ascii_chart(x, series, title=result.title)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
