"""Command-line entry point: regenerate the paper's tables and figures.

::

    repro-experiments all
    repro-experiments fig5 --phases 500 --seed 7
    python -m repro.experiments fig7 --trials 50
    python -m repro.experiments trace-report runs/trace.jsonl
    python -m repro.experiments metrics-report runs/trace.jsonl --format prom
    python -m repro.experiments causal-report runs/trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment

#: Subcommands that consume a JSONL trace instead of regenerating a figure.
REPORT_COMMANDS = ("trace-report", "metrics-report", "causal-report")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Low-cost Fault-tolerance in "
            "Barrier Synchronizations' (Kulkarni & Arora, ICPP 1998)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", *REPORT_COMMANDS],
        help="which table/figure to regenerate, or one of the trace "
        "reports (trace-report: summary; metrics-report: aggregated "
        "metrics; causal-report: per-fault chains) over a JSONL trace",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="JSONL trace file (the *-report subcommands)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help="metrics-report / causal-report output format "
        "(prom = Prometheus text exposition; metrics-report only)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--phases",
        type=int,
        default=None,
        help="successful phases per simulated point (fig5/fig6)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="perturbation trials per point (fig7)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render an ASCII chart of each figure's series",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation sweeps "
        "(fig5/fig6/fig7/sensitivity); 1 = in-process serial. Results "
        "are bit-identical at any job count",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed sweep-point cache directory; points "
        "already present are loaded instead of re-simulated",
    )
    return parser


#: Experiments whose runners accept a SweepExecutor.
SWEPT = ("fig5", "fig6", "fig7", "sensitivity")


def _kwargs_for(exp_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if exp_id in ("fig5", "fig6", "fig7", "table1", "sensitivity"):
        kwargs["seed"] = args.seed
    if exp_id in ("fig5", "fig6") and args.phases is not None:
        kwargs["phases"] = args.phases
    if exp_id == "fig7" and args.trials is not None:
        kwargs["trials"] = args.trials
    if exp_id in SWEPT and (args.jobs != 1 or args.cache_dir is not None):
        from repro.experiments.sweep import SweepExecutor

        kwargs["executor"] = SweepExecutor(
            jobs=args.jobs, cache_dir=args.cache_dir
        )
    return kwargs


def trace_report(path: str) -> int:
    """Summarize a structured JSONL trace to the paper's quantities."""
    from repro.obs.jsonl import read_jsonl
    from repro.obs.summary import summarize

    events = read_jsonl(path)
    print(summarize(events).render())
    return 0


def metrics_report(path: str, fmt: str = "text") -> int:
    """Aggregate a JSONL trace into the metrics registry and export it."""
    import json as _json

    from repro.obs.jsonl import read_jsonl
    from repro.obs.metrics import metrics_from_trace

    registry = metrics_from_trace(read_jsonl(path))
    if fmt == "json":
        print(_json.dumps(registry.to_json(), indent=2, sort_keys=True))
    elif fmt == "prom":
        sys.stdout.write(registry.render_prometheus())
    else:
        print(registry.render())
    return 0


def causal_report_cmd(path: str, fmt: str = "text") -> int:
    """Reconstruct per-fault causal chains from a JSONL trace."""
    import json as _json

    from repro.obs.causal import causal_report
    from repro.obs.jsonl import read_jsonl

    report = causal_report(read_jsonl(path))
    if fmt == "json":
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment in REPORT_COMMANDS:
        if args.path is None:
            # A proper argparse error (usage + message, exit status 2)
            # instead of the old unhelpful path-less crash.
            parser.error(
                f"{args.experiment} requires a JSONL trace path "
                f"(usage: {parser.prog} {args.experiment} <trace.jsonl>)"
            )
        if args.experiment == "trace-report":
            return trace_report(args.path)
        if args.experiment == "metrics-report":
            return metrics_report(args.path, args.format)
        return causal_report_cmd(args.path, args.format)
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in targets:
        start = time.perf_counter()
        result = run_experiment(exp_id, **_kwargs_for(exp_id, args))
        elapsed = time.perf_counter() - start
        print(result.render())
        if args.chart and exp_id not in ("table1", "sensitivity"):
            print()
            print(chart_of(result))
        print(f"[{exp_id} regenerated in {elapsed:.1f}s]\n")
    return 0


def chart_of(result) -> str:
    """ASCII chart of an experiment's numeric series (first column is
    the x axis; the remaining numeric columns are the series)."""
    from repro.viz.chart import ascii_chart

    x = [float(v) for v in result.column(result.columns[0])]
    series = {
        name: [float(v) for v in result.column(name)]
        for name in result.columns[1:]
        if all(isinstance(v, (int, float)) for v in result.column(name))
    }
    return ascii_chart(x, series, title=result.title)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
