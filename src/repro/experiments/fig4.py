"""Figure 4: analytical overhead of fault-tolerance.

Fractional overhead of the fault-tolerant barrier over the intolerant
baseline vs latency ``c``, one series per fault frequency ``f``, for 32
processes (h = 5).  The paper's quoted points at c = 0.01: 4.5% (f=0),
5.7% (f=0.01), <=10.8% (f=0.05).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.model import overhead
from repro.experiments.report import ExperimentResult

DEFAULT_C = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05)
DEFAULT_F = (0.0, 0.01, 0.05)


def run(
    h: int = 5,
    c_values: Sequence[float] = DEFAULT_C,
    f_values: Sequence[float] = DEFAULT_F,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig4",
        title="Analytical: overhead of fault-tolerance (h=%d)" % h,
        columns=("c",) + tuple(f"f={f:g}" for f in f_values),
        paper_claims=[
            "overhead at c=0.01: 4.5% (f=0), 5.7% (f=0.01), <=10.8% (f=0.05)",
            "overhead grows with f (proportionally) and with c",
        ],
    )
    for c in c_values:
        result.add(c, *(overhead(h, c, f) for f in f_values))
    return result
