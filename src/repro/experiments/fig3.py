"""Figure 3: analytical effect of fault frequency and latency.

Instances executed per successful phase vs fault frequency ``f`` for 32
processes (h = 5), one series per latency ``c``.  The paper's quoted
points: at ``f <= 0.01`` fewer than 1.6% of phases re-execute; even at
``c = 0.05, f = 0.01`` the re-execution probability is ~1.7%.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.model import expected_instances
from repro.experiments.report import ExperimentResult

DEFAULT_F = (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1)
DEFAULT_C = (0.0, 0.01, 0.05)


def run(
    h: int = 5,
    f_values: Sequence[float] = DEFAULT_F,
    c_values: Sequence[float] = DEFAULT_C,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig3",
        title="Analytical: instances per successful phase (h=%d)" % h,
        columns=("f",) + tuple(f"c={c:g}" for c in c_values),
        paper_claims=[
            "instances/phase grow with f and with c",
            "f<=0.01 => <1.6% of phases re-executed (c=0.01)",
            "c=0.05, f=0.01 => ~1.7% re-execution probability",
        ],
    )
    for f in f_values:
        result.add(f, *(expected_instances(h, c, f) for c in c_values))
    return result
