"""Figure 6: simulated overhead of fault-tolerance.

The same sweep as Figure 4, measured on the timed simulations (the
fault-tolerant barrier under faults vs the intolerant baseline without,
as the paper compares).  The paper: "the overhead in the simulated
program is less than that predicted by analytical results ... if the
fault occurs early on in the phase ... processes may complete an
unsuccessful instance of the phase quickly."
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.model import overhead as analytic_overhead
from repro.experiments.report import ExperimentResult
from repro.experiments.sweep import SweepExecutor, run_grid
from repro.protosim.intolerant import IntolerantTreeBarrierSim
from repro.protosim.metrics import overhead_vs_baseline
from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig

DEFAULT_C = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05)
DEFAULT_F = (0.0, 0.01, 0.05)

POINT_FN = "repro.experiments.fig6:simulate_overhead"


def simulate_overhead(h: int, c: float, f: float, phases: int, seed: int) -> float:
    ft = FTTreeBarrierSim(
        nprocs=2**h,
        config=SimConfig(latency=c, fault_frequency=f, seed=seed),
    )
    ft_metrics = ft.run(phases=phases, max_time=phases * 40.0)
    base = IntolerantTreeBarrierSim(nprocs=2**h, latency=c, seed=seed)
    base_metrics = base.run(phases=phases, max_time=phases * 40.0)
    return overhead_vs_baseline(
        ft_metrics.time_per_phase, base_metrics.time_per_phase
    )


def run(
    h: int = 5,
    c_values: Sequence[float] = DEFAULT_C,
    f_values: Sequence[float] = DEFAULT_F,
    phases: int = 300,
    seed: int = 0,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig6",
        title="Simulated: overhead of fault-tolerance (h=%d)" % h,
        columns=("c",)
        + tuple(f"f={f:g} sim" for f in f_values)
        + tuple(f"f={f:g} analytic" for f in f_values),
        paper_claims=[
            "simulated overhead <= analytical overhead (early abort of "
            "failed instances)",
        ],
        notes=[f"{phases} successful phases per point, seed={seed}"],
    )
    grid = [
        dict(h=h, c=c, f=f, phases=phases, seed=seed)
        for c in c_values
        for f in f_values
    ]
    sims = run_grid(POINT_FN, grid, executor)
    nf = len(f_values)
    for i, c in enumerate(c_values):
        analytics = [analytic_overhead(h, c, f) for f in f_values]
        result.add(c, *sims[i * nf : (i + 1) * nf], *analytics)
    return result
