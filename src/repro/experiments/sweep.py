"""Parallel, cached execution of experiment parameter sweeps.

Every figure in the evaluation is a grid of independent simulation
points -- ``(h, c, f, phases, seed)`` tuples mapped through a pure
function.  :class:`SweepExecutor` runs such grids:

* **fan-out** -- points are dispatched to a ``multiprocessing`` pool
  (``jobs`` workers) in chunks; results always come back in input
  order, so the merged output is bit-identical to the serial run;
* **content-addressed caching** -- with a ``cache_dir``, each point's
  result is stored as JSON under the SHA-256 of its canonical
  ``(function, kwargs)`` encoding.  Re-running any sweep that shares
  points (same seed/grid) loads them instead of simulating;
* **determinism** -- points carry explicit seeds and reference their
  function by ``"module:function"`` name, so a point's digest -- and
  therefore its cached value -- is independent of process, interpreter
  session, and worker assignment.

Values are normalized through a JSON round-trip *in both the compute
and the cache-hit path*, which is what makes "parallel + cache" runs
bit-identical to serial ones: every result the caller sees has passed
through the same representation, whether it was computed here, in a
worker, or read back from disk.  Point functions must therefore return
JSON-serializable values (numbers, strings, lists, dicts).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a function reference plus JSON-able kwargs.

    ``fn`` is a ``"module:function"`` string (resolved lazily inside the
    worker, which keeps points picklable and avoids import cycles);
    ``kwargs`` is stored as a sorted tuple of items so equal points
    compare and hash equal.
    """

    fn: str
    kwargs: tuple[tuple[str, Any], ...]

    @classmethod
    def make(cls, fn: str, **kwargs: Any) -> "SweepPoint":
        if ":" not in fn:
            raise ValueError(f"fn must be 'module:function', got {fn!r}")
        return cls(fn, tuple(sorted(kwargs.items())))

    def digest(self) -> str:
        """Content address: SHA-256 of the canonical JSON encoding."""
        payload = json.dumps(
            {"fn": self.fn, "kwargs": dict(self.kwargs)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def point(fn: str, **kwargs: Any) -> SweepPoint:
    """Shorthand for :meth:`SweepPoint.make`."""
    return SweepPoint.make(fn, **kwargs)


def _resolve(ref: str) -> Callable[..., Any]:
    mod_name, _, fn_name = ref.partition(":")
    fn = getattr(importlib.import_module(mod_name), fn_name, None)
    if fn is None:
        raise AttributeError(f"no function {fn_name!r} in module {mod_name!r}")
    return fn


def _normalize(value: Any) -> Any:
    """Canonical JSON round-trip (see module docstring)."""
    return json.loads(json.dumps(value))


def _run_point(spec: tuple[str, tuple[tuple[str, Any], ...]]) -> Any:
    """Worker entry: compute one point (module-level for pickling)."""
    ref, items = spec
    return _normalize(_resolve(ref)(**dict(items)))


class SweepExecutor:
    """Run sweep points, optionally in parallel and/or cached.

    ``jobs=1`` (the default) computes in-process; ``jobs>1`` uses a
    ``multiprocessing`` pool with chunked dispatch (``chunk_size``
    points per task, default ``ceil(npoints / (4 * jobs))``, clamped to
    at least 1).  ``cache_dir`` enables the content-addressed cache;
    misses are computed and written back atomically, so concurrent
    sweeps sharing a cache directory are safe (last write wins with
    identical content).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self.chunk_size = chunk_size
        #: Statistics of the most recent :meth:`run` call.
        self.last_stats: dict[str, int] = {"points": 0, "hits": 0, "computed": 0}

    # -- cache ---------------------------------------------------------
    def _cache_path(self, pt: SweepPoint) -> str | None:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, pt.digest() + ".json")

    def _cache_load(self, pt: SweepPoint) -> tuple[bool, Any]:
        path = self._cache_path(pt)
        if path is None:
            return False, None
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return False, None
        if entry.get("fn") != pt.fn or entry.get("kwargs") != _normalize(
            dict(pt.kwargs)
        ):
            # Digest collision or foreign file: treat as a miss.
            return False, None
        return True, entry["value"]

    def _cache_store(self, pt: SweepPoint, value: Any) -> None:
        path = self._cache_path(pt)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        entry = {"fn": pt.fn, "kwargs": _normalize(dict(pt.kwargs)), "value": value}
        tmp = path + f".tmp{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)

    # -- execution -----------------------------------------------------
    def run(self, points: Sequence[SweepPoint] | Iterable[SweepPoint]) -> list[Any]:
        """Evaluate ``points``; the result list matches input order."""
        pts = list(points)
        results: list[Any] = [None] * len(pts)
        misses: list[int] = []
        hits = 0
        for i, pt in enumerate(pts):
            found, value = self._cache_load(pt)
            if found:
                results[i] = value
                hits += 1
            else:
                misses.append(i)
        if misses:
            specs = [(pts[i].fn, pts[i].kwargs) for i in misses]
            if self.jobs > 1 and len(misses) > 1:
                computed = self._run_pool(specs)
            else:
                computed = [_run_point(spec) for spec in specs]
            for i, value in zip(misses, computed):
                results[i] = value
                self._cache_store(pts[i], value)
        self.last_stats = {
            "points": len(pts),
            "hits": hits,
            "computed": len(misses),
        }
        return results

    def _run_pool(self, specs: list[tuple]) -> list[Any]:
        import multiprocessing as mp

        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, -(-len(specs) // (4 * self.jobs)))
        ctx = mp.get_context()
        with ctx.Pool(processes=min(self.jobs, len(specs))) as pool:
            return list(pool.imap(_run_point, specs, chunksize=chunk))


def run_grid(
    fn: str,
    grid: Sequence[dict[str, Any]],
    executor: SweepExecutor | None = None,
) -> list[Any]:
    """Map ``fn`` over a list of kwargs dicts via an executor.

    The helper the figure modules use: ``executor=None`` means a plain
    serial, uncached executor, so callers can thread an optional
    executor through without branching.
    """
    ex = executor if executor is not None else SweepExecutor()
    return ex.run([SweepPoint.make(fn, **kw) for kw in grid])
