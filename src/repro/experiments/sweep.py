"""Parallel, cached execution of experiment parameter sweeps.

Every figure in the evaluation is a grid of independent simulation
points -- ``(h, c, f, phases, seed)`` tuples mapped through a pure
function.  :class:`SweepExecutor` runs such grids:

* **fan-out** -- points are dispatched to a ``multiprocessing`` pool
  (``jobs`` workers) in chunks; results always come back in input
  order, so the merged output is bit-identical to the serial run;
* **content-addressed caching** -- with a ``cache_dir``, each point's
  result is stored as JSON under the SHA-256 of its canonical
  ``(function, kwargs)`` encoding.  Re-running any sweep that shares
  points (same seed/grid) loads them instead of simulating;
* **determinism** -- points carry explicit seeds and reference their
  function by ``"module:function"`` name, so a point's digest -- and
  therefore its cached value -- is independent of process, interpreter
  session, and worker assignment.

* **containment** -- with ``timeout_s`` and/or ``retries`` set, each
  point runs in its *own* worker process with a wall-clock deadline:
  a point that hangs is terminated, one whose worker crashes (segfault,
  ``os._exit``) is detected through the exit code, and either is
  retried with exponential backoff before being given up.  Given-up
  points land in :attr:`SweepExecutor.failed` (details in
  :attr:`~SweepExecutor.failures`) with ``None`` in the result slot;
  every completed point's result is still returned -- a chaos campaign
  or figure sweep survives its own infrastructure.

Values are normalized through a JSON round-trip *in both the compute
and the cache-hit path*, which is what makes "parallel + cache" runs
bit-identical to serial ones: every result the caller sees has passed
through the same representation, whether it was computed here, in a
worker, or read back from disk.  Point functions must therefore return
JSON-serializable values (numbers, strings, lists, dicts).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a function reference plus JSON-able kwargs.

    ``fn`` is a ``"module:function"`` string (resolved lazily inside the
    worker, which keeps points picklable and avoids import cycles);
    ``kwargs`` is stored as a sorted tuple of items so equal points
    compare and hash equal.
    """

    fn: str
    kwargs: tuple[tuple[str, Any], ...]

    @classmethod
    def make(cls, fn: str, **kwargs: Any) -> "SweepPoint":
        if ":" not in fn:
            raise ValueError(f"fn must be 'module:function', got {fn!r}")
        return cls(fn, tuple(sorted(kwargs.items())))

    def digest(self) -> str:
        """Content address: SHA-256 of the canonical JSON encoding."""
        payload = json.dumps(
            {"fn": self.fn, "kwargs": dict(self.kwargs)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def point(fn: str, **kwargs: Any) -> SweepPoint:
    """Shorthand for :meth:`SweepPoint.make`."""
    return SweepPoint.make(fn, **kwargs)


def _resolve(ref: str) -> Callable[..., Any]:
    mod_name, _, fn_name = ref.partition(":")
    fn = getattr(importlib.import_module(mod_name), fn_name, None)
    if fn is None:
        raise AttributeError(f"no function {fn_name!r} in module {mod_name!r}")
    return fn


def _normalize(value: Any) -> Any:
    """Canonical JSON round-trip (see module docstring)."""
    return json.loads(json.dumps(value))


def _run_point(spec: tuple[str, tuple[tuple[str, Any], ...]]) -> Any:
    """Worker entry: compute one point (module-level for pickling)."""
    ref, items = spec
    return _normalize(_resolve(ref)(**dict(items)))


def _contained_point(
    conn: Any, ref: str, items: tuple[tuple[str, Any], ...]
) -> None:
    """Hardened-path worker: one point per process, result over a pipe.

    A clean exception travels back as ``("err", message)``; a worker
    that dies without sending anything (crash, kill, timeout-terminate)
    is detected by the parent through EOF + exit code.
    """
    try:
        value = _normalize(_resolve(ref)(**dict(items)))
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ok", value))
    conn.close()


class SweepExecutor:
    """Run sweep points, optionally in parallel and/or cached.

    ``jobs=1`` (the default) computes in-process; ``jobs>1`` uses a
    ``multiprocessing`` pool with chunked dispatch (``chunk_size``
    points per task, default ``ceil(npoints / (4 * jobs))``, clamped to
    at least 1).  ``cache_dir`` enables the content-addressed cache;
    misses are computed and written back atomically, so concurrent
    sweeps sharing a cache directory are safe (last write wins with
    identical content).

    Setting ``timeout_s`` (per-point wall-clock deadline) or
    ``retries`` (attempts beyond the first per point) switches misses to
    the hardened process-per-point path: a hang is terminated at the
    deadline, a dead worker is detected via its exit code, and the
    point is retried up to ``retries`` times with exponential backoff
    (``backoff_s * 2**attempt`` between attempts).  Points still failing
    after the last attempt are reported in :attr:`failed` /
    :attr:`failures` and leave ``None`` in their result slot; everything
    that completed is salvaged.  The hardened path applies with
    ``jobs=1`` too -- crash containment requires the process boundary.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        chunk_size: int | None = None,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        self.jobs = jobs
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self.chunk_size = chunk_size
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        #: Points the last :meth:`run` gave up on (after all retries).
        self.failed: list[SweepPoint] = []
        #: Failure detail per given-up point: ``{"index", "point",
        #: "error", "attempts"}`` in input order.
        self.failures: list[dict[str, Any]] = []
        #: Statistics of the most recent :meth:`run` call.
        self.last_stats: dict[str, int] = {"points": 0, "hits": 0, "computed": 0}

    @property
    def hardened(self) -> bool:
        """Whether misses run in contained per-point workers."""
        return self.timeout_s is not None or self.retries > 0

    # -- cache ---------------------------------------------------------
    def _cache_path(self, pt: SweepPoint) -> str | None:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, pt.digest() + ".json")

    def _cache_load(self, pt: SweepPoint) -> tuple[bool, Any]:
        path = self._cache_path(pt)
        if path is None:
            return False, None
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError:
            return False, None
        except ValueError:
            # Corrupt or truncated cache entry (killed writer, disk
            # trouble): a miss -- recompute, and the fresh store
            # overwrites the bad file.
            logger.warning("discarding corrupt sweep cache entry %s", path)
            return False, None
        if not isinstance(entry, dict):
            logger.warning("discarding corrupt sweep cache entry %s", path)
            return False, None
        if entry.get("fn") != pt.fn or entry.get("kwargs") != _normalize(
            dict(pt.kwargs)
        ):
            # Digest collision or foreign file: treat as a miss.
            return False, None
        return True, entry["value"]

    def _cache_store(self, pt: SweepPoint, value: Any) -> None:
        path = self._cache_path(pt)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        entry = {"fn": pt.fn, "kwargs": _normalize(dict(pt.kwargs)), "value": value}
        tmp = path + f".tmp{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)

    # -- execution -----------------------------------------------------
    def run(self, points: Sequence[SweepPoint] | Iterable[SweepPoint]) -> list[Any]:
        """Evaluate ``points``; the result list matches input order.

        On the hardened path, a point that exhausted its retries leaves
        ``None`` at its index (and appears in :attr:`failed`); the plain
        path lets exceptions propagate unchanged.
        """
        pts = list(points)
        results: list[Any] = [None] * len(pts)
        self.failed = []
        self.failures = []
        misses: list[int] = []
        hits = 0
        for i, pt in enumerate(pts):
            found, value = self._cache_load(pt)
            if found:
                results[i] = value
                hits += 1
            else:
                misses.append(i)
        retried = 0
        if misses:
            if self.hardened:
                retried = self._run_contained(pts, misses, results)
            else:
                specs = [(pts[i].fn, pts[i].kwargs) for i in misses]
                if self.jobs > 1 and len(misses) > 1:
                    computed = self._run_pool(specs)
                else:
                    computed = [_run_point(spec) for spec in specs]
                for i, value in zip(misses, computed):
                    results[i] = value
                    self._cache_store(pts[i], value)
        self.last_stats = {
            "points": len(pts),
            "hits": hits,
            "computed": len(misses) - len(self.failed),
            "failed": len(self.failed),
            "retried": retried,
        }
        return results

    def _run_pool(self, specs: list[tuple]) -> list[Any]:
        import multiprocessing as mp

        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, -(-len(specs) // (4 * self.jobs)))
        ctx = mp.get_context()
        with ctx.Pool(processes=min(self.jobs, len(specs))) as pool:
            return list(pool.imap(_run_point, specs, chunksize=chunk))

    # -- hardened path -------------------------------------------------
    def _run_contained(
        self, pts: list[SweepPoint], misses: list[int], results: list[Any]
    ) -> int:
        """Process-per-point execution with deadlines and retries.

        Up to ``jobs`` workers run at once.  Each attempt is a fresh
        process (a crashed worker is never reused); the parent collects
        results over pipes, enforces ``timeout_s`` per attempt, and
        reschedules failures with backoff.  Returns the retry count.
        """
        import multiprocessing as mp
        from multiprocessing.connection import wait as conn_wait

        ctx = mp.get_context()
        #: (point index, attempt, earliest start time)
        pending: list[tuple[int, int, float]] = [
            (i, 0, 0.0) for i in misses
        ]
        #: conn -> (point index, attempt, deadline or None, process)
        active: dict[Any, tuple[int, int, float | None, Any]] = {}
        #: (point index, failure record) -- sorted into input order last.
        given_up: list[tuple[int, dict[str, Any]]] = []
        retried = 0

        def launch(index: int, attempt: int) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_contained_point,
                args=(child_conn, pts[index].fn, pts[index].kwargs),
            )
            proc.start()
            child_conn.close()
            deadline = (
                time.monotonic() + self.timeout_s
                if self.timeout_s is not None
                else None
            )
            active[parent_conn] = (index, attempt, deadline, proc)

        def settle(index: int, attempt: int, error: str) -> None:
            nonlocal retried
            if attempt < self.retries:
                retried += 1
                delay = self.backoff_s * (2**attempt)
                pending.append((index, attempt + 1, time.monotonic() + delay))
            else:
                given_up.append(
                    (
                        index,
                        {
                            "index": index,
                            "point": {
                                "fn": pts[index].fn,
                                "kwargs": dict(pts[index].kwargs),
                            },
                            "error": error,
                            "attempts": attempt + 1,
                        },
                    )
                )
                logger.warning(
                    "sweep point %s gave up after %d attempt(s): %s",
                    pts[index].fn,
                    attempt + 1,
                    error,
                )

        while pending or active:
            now = time.monotonic()
            # Fill free slots with whatever is eligible to (re)start.
            launchable = [p for p in pending if p[2] <= now]
            while launchable and len(active) < self.jobs:
                entry = launchable.pop(0)
                pending.remove(entry)
                launch(entry[0], entry[1])
            if not active:
                # Everything left is backing off: sleep to the earliest.
                wake = min(p[2] for p in pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue
            # Wake on the first message, nearest deadline, or the next
            # backoff expiry -- whichever comes first.
            horizon: list[float] = [
                d for (_i, _a, d, _p) in active.values() if d is not None
            ]
            horizon.extend(p[2] for p in pending)
            timeout = None
            if horizon:
                timeout = max(0.0, min(horizon) - time.monotonic())
            ready = conn_wait(list(active), timeout=timeout)
            for conn in ready:
                index, attempt, _deadline, proc = active.pop(conn)
                try:
                    status, payload = conn.recv()
                except EOFError:
                    status, payload = (
                        "crash",
                        f"worker died (exit code {proc.exitcode})",
                    )
                conn.close()
                proc.join()
                if status == "ok":
                    results[index] = payload
                    self._cache_store(pts[index], payload)
                elif status == "crash":
                    # EOF races the exit code; re-read it after join.
                    settle(
                        index,
                        attempt,
                        f"worker died (exit code {proc.exitcode})",
                    )
                else:
                    settle(index, attempt, payload)
            now = time.monotonic()
            expired = [
                conn
                for conn, (_i, _a, deadline, _p) in active.items()
                if deadline is not None and deadline <= now
            ]
            for conn in expired:
                index, attempt, _deadline, proc = active.pop(conn)
                proc.terminate()
                proc.join()
                conn.close()
                settle(index, attempt, f"timeout after {self.timeout_s}s")
        given_up.sort(key=lambda item: item[0])
        self.failed = [pts[index] for index, _record in given_up]
        self.failures = [record for _index, record in given_up]
        return retried


def run_grid(
    fn: str,
    grid: Sequence[dict[str, Any]],
    executor: SweepExecutor | None = None,
) -> list[Any]:
    """Map ``fn`` over a list of kwargs dicts via an executor.

    The helper the figure modules use: ``executor=None`` means a plain
    serial, uncached executor, so callers can thread an optional
    executor through without branching.
    """
    ex = executor if executor is not None else SweepExecutor()
    return ex.run([SweepPoint.make(fn, **kw) for kw in grid])
