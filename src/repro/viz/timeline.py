"""State and trace timeline rendering.

One line per interesting step: the control positions (one glyph per
process), the phases, and the sequence numbers when present.  Glyphs:

====  =========================
``.``  ready
``E``  execute
``S``  success
``X``  error
``R``  repeat
``v``  sequence number BOT
``^``  sequence number TOP
====  =========================
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.barrier.control import CP
from repro.gc.domains import BOT, TOP
from repro.gc.state import State
from repro.gc.trace import Trace, TraceEvent

_CP_GLYPH = {
    CP.READY: ".",
    CP.EXECUTE: "E",
    CP.SUCCESS: "S",
    CP.ERROR: "X",
    CP.REPEAT: "R",
}


def state_glyphs(state: State, var: str = "cp") -> str:
    """Glyph string for a control-position vector."""
    out = []
    for pid in range(state.nprocs):
        value = state.get(var, pid)
        out.append(_CP_GLYPH.get(value, "?"))
    return "".join(out)


def _sn_glyph(value: Any) -> str:
    if value is BOT:
        return "v"
    if value is TOP:
        return "^"
    return str(value)[-1]  # last digit keeps columns aligned


def render_state(state: State) -> str:
    """One-line summary of a barrier-program state."""
    parts = []
    if "cp" in state:
        parts.append("cp=" + state_glyphs(state))
    if "ph" in state:
        parts.append(
            "ph=" + "".join(str(state.get("ph", p))[-1] for p in range(state.nprocs))
        )
    if "sn" in state:
        parts.append(
            "sn=" + "".join(_sn_glyph(state.get("sn", p)) for p in range(state.nprocs))
        )
    return " ".join(parts) if parts else repr(state)


def render_topology(topology) -> str:
    """ASCII rendering of a branching-ring topology (Figure 2 shapes).

    Finals (the processes the root reads back) are marked with ``*``.
    """
    finals = set(topology.finals)
    lines: list[str] = []

    def visit(pid: int, prefix: str, is_last: bool) -> None:
        mark = "*" if pid in finals else ""
        if pid == 0:
            lines.append(f"0{mark}")
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(f"{prefix}{connector}{pid}{mark}")
        kids = topology.children[pid]
        child_prefix = "" if pid == 0 else prefix + ("    " if is_last else "|   ")
        for i, child in enumerate(kids):
            visit(child, child_prefix, i == len(kids) - 1)

    visit(0, "", True)
    return "\n".join(lines)


def render_timeline(
    initial_state: State,
    trace: Trace | Iterable[TraceEvent],
    max_lines: int = 60,
    only_changes: bool = True,
) -> str:
    """Replay a trace and render the state after each event.

    Fault events are marked with ``!``.  With ``only_changes`` (default)
    consecutive identical lines collapse.  Output is truncated to
    ``max_lines`` with a trailing ellipsis marker.
    """
    state = initial_state.snapshot()
    lines: list[str] = [f"step {0:>5}   {render_state(state)}"]
    last = render_state(state)
    truncated = False
    for ev in trace:
        for var, value in ev.updates:
            state.set(var, ev.pid, value)
        line = render_state(state)
        if only_changes and line == last and not ev.is_fault:
            continue
        last = line
        marker = "!" if ev.is_fault else " "
        lines.append(f"step {ev.step:>5} {marker} {line}")
        if len(lines) >= max_lines:
            truncated = True
            break
    if truncated:
        lines.append("... (truncated)")
    return "\n".join(lines)
