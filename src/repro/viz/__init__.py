"""Plain-text visualization helpers.

Terminal-friendly rendering of program states, trace timelines, and the
experiment series (ASCII charts) -- used by the examples and by the
experiments CLI, and handy when debugging fault scenarios.
"""

from repro.viz.timeline import (
    render_state,
    render_timeline,
    render_topology,
    state_glyphs,
)
from repro.viz.chart import (
    ascii_chart,
    ascii_histogram,
    ascii_histogram_of,
    sparkline,
)

__all__ = [
    "render_state",
    "render_timeline",
    "render_topology",
    "state_glyphs",
    "ascii_chart",
    "ascii_histogram",
    "ascii_histogram_of",
    "sparkline",
]
