"""ASCII charts for the experiment series.

Good enough to eyeball the Figure 3-7 shapes in a terminal without a
plotting stack (the environment is offline); the numeric tables remain
the ground truth.
"""

from __future__ import annotations

from math import inf, isfinite
from typing import Mapping, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def ascii_histogram(
    bounds: Sequence[float], counts: Sequence[int], width: int = 40
) -> str:
    """Horizontal-bar rendering of a fixed-bucket histogram.

    ``bounds`` are the buckets' upper bounds (the last may be ``inf``),
    ``counts`` the per-bucket (non-cumulative) counts.  Empty trailing
    buckets are elided so sparse distributions stay short.
    """
    if len(bounds) != len(counts):
        raise ValueError("bounds and counts length mismatch")
    if not bounds:
        return "(empty histogram)"
    last = max(
        (i for i, n in enumerate(counts) if n), default=-1
    )
    if last < 0:
        return "(no observations)"
    shown_bounds = bounds[: last + 1]
    shown_counts = counts[: last + 1]
    peak = max(shown_counts)
    labels = [
        "<= " + ("+Inf" if b == inf else f"{b:g}") for b in shown_bounds
    ]
    label_w = max(len(lab) for lab in labels)
    lines = []
    for lab, n in zip(labels, shown_counts):
        bar = "#" * (round(n / peak * width) if peak else 0)
        lines.append(f"{lab:>{label_w}} | {bar}{' ' if bar else ''}{n}")
    return "\n".join(lines)


def ascii_histogram_of(
    values: Sequence[float], bins: int = 8, width: int = 40
) -> str:
    """Equal-width-bin histogram of raw ``values`` (non-finite dropped)."""
    finite = [v for v in values if isfinite(v)]
    if not finite:
        return "(no observations)"
    lo, hi = min(finite), max(finite)
    if hi - lo < 1e-12:
        return ascii_histogram([hi], [len(finite)], width)
    step = (hi - lo) / bins
    bounds = [lo + step * (i + 1) for i in range(bins)]
    counts = [0] * bins
    for v in finite:
        idx = min(int((v - lo) / step), bins - 1)
        counts[idx] += 1
    return ascii_histogram(bounds, counts, width)


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of ``values``."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _BLOCKS[0] * len(values)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int(round((v - lo) * scale))] for v in values)


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """A multi-series scatter chart in ASCII.

    Each series gets a letter marker (a, b, c, ...); overlapping points
    show ``*``.  Axis extremes are annotated with their values.
    """
    if not series:
        raise ValueError("need at least one series")
    for label, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {label!r} length mismatch")
    all_y = [v for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    x_lo, x_hi = min(x), max(x)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    for idx, (label, ys) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        for xv, yv in zip(x, ys):
            col = int(round((xv - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((yv - y_lo) / y_span * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = mark if cell == " " else "*"

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.4g}" + " " * max(1, width - 12) + f"{x_hi:>.4g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]}={label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
