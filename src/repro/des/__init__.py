"""A small discrete-event simulation kernel.

:mod:`repro.des.core` provides the event queue and virtual clock;
:mod:`repro.des.network` provides point-to-point links with latency and
(optionally) message-fault injection.  The timed protocol simulations
(:mod:`repro.protosim`) and the simulated MPI runtime
(:mod:`repro.simmpi`) are built on it.
"""

from repro.des.core import Event, Simulation
from repro.des.network import Link, Message, Network

__all__ = ["Event", "Simulation", "Link", "Message", "Network"]
