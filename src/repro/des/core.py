"""Event queue and virtual clock.

Deterministic given the seed: ties in event time break by insertion
order, and randomness flows through named, independently-seeded RNG
streams (so adding a consumer of randomness never perturbs another
stream's draws -- a standard reproducibility idiom for simulation
studies).
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable

import numpy as np

from repro.errors import SimulationError
from repro.obs.tracer import ensure_tracer


@dataclass(order=True)
class Event:
    """One scheduled callback.

    ``cancel()`` is idempotent and safe at any point in the event's
    life: before it runs (the event is skipped and stops counting as
    pending), after it ran, or after it was already cancelled (both
    no-ops).  Cancelled entries stay in the owning simulation's heap --
    removal from the middle of a heap is O(n) -- and are skipped on pop;
    the simulation compacts the heap once they outnumber live entries.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _sim: Any = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel(self)
            self._sim = None


class Simulation:
    """A discrete-event simulation: schedule callbacks, run the clock."""

    def __init__(self, seed: Any = None, tracer: Any = None) -> None:
        self._heap: list[Event] = []
        self._seq = count()
        self._now = 0.0
        #: The simulation owns the virtual clock, so it also carries the
        #: tracer: everything built on the kernel (network, runtimes)
        #: reads ``sim.tracer`` to emit at ``sim.now``.
        self.tracer = ensure_tracer(tracer)
        self._seed_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._streams: dict[str, np.random.Generator] = {}
        self.events_processed = 0
        #: Cancelled events still sitting in the heap.  Tracked so
        #: :attr:`pending` is O(1) (``len(heap) - cancelled``) instead
        #: of an O(n) heap scan -- simulations poll it in stop
        #: conditions, which made the old scan quadratic over a run.
        #: Counting cancellations rather than live events keeps the
        #: bookkeeping entirely on the (rare) cancel path; the hot
        #: schedule/pop path pays nothing.
        self._cancelled = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def rng(self, stream: str = "default") -> np.random.Generator:
        """Named RNG stream, seeded independently of all other streams."""
        gen = self._streams.get(stream)
        if gen is None:
            # Stable across interpreter launches (Python's str hash is
            # salted; that would silently break run-to-run determinism).
            key = zlib.crc32(stream.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._seed_seq.entropy,
                spawn_key=(key,),
            )
            gen = np.random.default_rng(child)
            self._streams[stream] = gen
        return gen

    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})"
            )
        event = Event(time, next(self._seq), callback, False, self)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback)

    # ------------------------------------------------------------------
    def _note_cancel(self, event: Event) -> None:
        """Called (once) by :meth:`Event.cancel` while still scheduled."""
        self._cancelled += 1
        # Compact once cancelled entries dominate: sift the survivors
        # into a fresh heap (O(live)) instead of popping each corpse
        # (O(n log n) spread over future steps, plus held memory).
        if len(self._heap) > 64 and 2 * self._cancelled > len(self._heap):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def step(self) -> bool:
        """Process one event; return False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            # Detach before running: a late cancel() must not count
            # toward the heap's cancelled entries once the event left it.
            event._sim = None
            self._now = event.time
            event.callback()
            self.events_processed += 1
            return True
        return False

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or ``stop``
        returns True; returns the final virtual time."""
        for _ in range(max_events):
            if stop is not None and stop():
                return self._now
            if not self._heap:
                return self._now
            if until is not None and self._heap[0].time > until:
                self._now = until
                return self._now
            self.step()
        raise SimulationError(f"exceeded max_events={max_events}")

    @property
    def pending(self) -> int:
        """Scheduled, not-yet-cancelled events (O(1))."""
        return len(self._heap) - self._cancelled
