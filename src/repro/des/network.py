"""Simulated point-to-point links.

A :class:`Network` owns the links between node ids.  Each link delivers
messages after its latency, in FIFO order by default, and can inject the
paper's communication fault classes: loss, duplication, reorder, and
corruption (all *detectable* faults in the paper's taxonomy -- the
receiver can discard/flag them, which is exactly how the simulated MPI
layer treats them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.des.core import Simulation
from repro.errors import SimulationError


@dataclass
class Message:
    """A message in flight."""

    src: int
    dst: int
    payload: Any
    tag: int = 0
    corrupted: bool = False
    duplicate: bool = False
    send_time: float = 0.0


@dataclass
class LinkFaults:
    """Per-link message-fault rates (independent per message)."""

    loss: float = 0.0
    duplication: float = 0.0
    corruption: float = 0.0
    reorder: float = 0.0  # probability of extra, random delivery delay
    reorder_delay: float = 4.0  # in multiples of the link latency

    def __post_init__(self) -> None:
        for name in ("loss", "duplication", "corruption", "reorder"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} rate out of [0,1]: {v}")


class Link:
    """A unidirectional link with fixed latency and optional faults."""

    def __init__(
        self,
        sim: Simulation,
        src: int,
        dst: int,
        latency: float,
        faults: LinkFaults | None = None,
    ) -> None:
        if latency < 0:
            raise SimulationError(f"negative latency {latency}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency = latency
        self.faults = faults or LinkFaults()
        self.sent = 0
        self.delivered = 0
        self.lost = 0

    def send(
        self, payload: Any, deliver: Callable[[Message], None], tag: int = 0
    ) -> None:
        """Send ``payload``; ``deliver`` fires at the receiver after the
        latency (possibly never / twice / corrupted, per the fault rates).
        """
        rng = self.sim.rng("network")
        self.sent += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.msg_send(self.sim.now, self.src, self.dst, tag=tag)
        msg = Message(
            src=self.src,
            dst=self.dst,
            payload=payload,
            tag=tag,
            send_time=self.sim.now,
        )
        f = self.faults
        if f.loss and rng.random() < f.loss:
            self.lost += 1
            if tracer.enabled:
                tracer.incr("net.messages_lost")
            return
        delay = self.latency
        if f.reorder and rng.random() < f.reorder:
            delay += rng.random() * f.reorder_delay * max(self.latency, 1e-9)
        if f.corruption and rng.random() < f.corruption:
            msg.corrupted = True

        def _deliver(m: Message = msg) -> None:
            self.delivered += 1
            if tracer.enabled:
                # latency payload = the metrics layer's message-latency
                # histogram observation point.
                tracer.msg_recv(
                    self.sim.now,
                    m.src,
                    m.dst,
                    tag=m.tag,
                    latency=self.sim.now - m.send_time,
                )
            deliver(m)

        self.sim.after(delay, _deliver)
        if f.duplication and rng.random() < f.duplication:
            dup = Message(
                src=msg.src,
                dst=msg.dst,
                payload=msg.payload,
                tag=msg.tag,
                corrupted=msg.corrupted,
                duplicate=True,
                send_time=msg.send_time,
            )

            def _deliver_dup(m: Message = dup) -> None:
                self.delivered += 1
                if tracer.enabled:
                    tracer.msg_recv(
                        self.sim.now,
                        m.src,
                        m.dst,
                        tag=m.tag,
                        latency=self.sim.now - m.send_time,
                    )
                deliver(m)

            self.sim.after(delay + self.latency, _deliver_dup)


class Network:
    """A mesh of links keyed by ``(src, dst)``; missing links are created
    on demand with the default latency."""

    def __init__(
        self,
        sim: Simulation,
        default_latency: float = 0.0,
        default_faults: LinkFaults | None = None,
    ) -> None:
        self.sim = sim
        self.default_latency = default_latency
        self.default_faults = default_faults
        self._links: dict[tuple[int, int], Link] = {}

    def link(self, src: int, dst: int) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Link(
                self.sim, src, dst, self.default_latency, self.default_faults
            )
            self._links[key] = link
        return link

    def set_link(self, src: int, dst: int, latency: float, faults=None) -> Link:
        link = Link(self.sim, src, dst, latency, faults)
        self._links[(src, dst)] = link
        return link

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        deliver: Callable[[Message], None],
        tag: int = 0,
    ) -> None:
        self.link(src, dst).send(payload, deliver, tag)

    @property
    def messages_sent(self) -> int:
        return sum(l.sent for l in self._links.values())

    @property
    def messages_lost(self) -> int:
        return sum(l.lost for l in self._links.values())
