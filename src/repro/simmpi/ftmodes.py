"""Fault-handling modes for collectives (the paper's three MPI
alternatives) and the associated error types."""

from __future__ import annotations

import enum

from repro.errors import ReproError


class FTMode(enum.Enum):
    """What a collective does when a fault strikes during it."""

    ABORT = "abort"  # MPI alternative (i): abort the job
    RETURN_CODE = "return-code"  # MPI alternative (ii): error code to the user
    TOLERATE = "tolerate"  # the paper's alternative (iii): mask the fault


class BarrierError(ReproError):
    """Returned/raised by a barrier in RETURN_CODE mode when a fault was
    detected during the collective; the application may retry."""


class JobAborted(ReproError):
    """Raised in every rank when the job aborts (ABORT mode)."""


#: Result codes delivered to ranks by collectives in RETURN_CODE mode.
SUCCESS = 0
ERR_FAULT = 1
