"""A simulated message-passing runtime with fault-tolerant collectives.

Section 1 of the paper: "Currently, MPI provides users with two
alternatives for dealing with faults: (i) to abort the program in the
event of a fault, and (ii) to return an error code in the event of a
fault ... Another of our goals is to provide a third alternative to
users of barrier synchronizations in MPI: the guarantee of an
appropriate type of tolerance to each fault-class."

:mod:`repro.simmpi` realises that in simulation: generator-based rank
processes run on the discrete-event kernel, exchange messages over
links with latency and (optionally) message faults, and call
collectives whose barrier offers all three modes:

* :data:`FTMode.ABORT` -- any detected fault aborts the job;
* :data:`FTMode.RETURN_CODE` -- the barrier returns an error code and
  the application recovers by retrying;
* :data:`FTMode.TOLERATE` -- the paper's contribution: the barrier
  masks detectable faults internally (failed instances are re-executed)
  and always completes correctly.
"""

from repro.simmpi.ftmodes import BarrierError, FTMode, JobAborted
from repro.simmpi.mb_impl import MBMachine, MBPhaseLog, mb_barrier_program
from repro.simmpi.runtime import Comm, RankEvent, Runtime

__all__ = [
    "FTMode",
    "BarrierError",
    "JobAborted",
    "Comm",
    "Runtime",
    "RankEvent",
    "MBMachine",
    "MBPhaseLog",
    "mb_barrier_program",
]
