"""Generator-based simulated MPI runtime.

Rank processes are Python generators that ``yield`` syscalls::

    def worker(comm):
        yield comm.compute(1.0)          # local phase work
        code = yield comm.barrier()      # synchronize (FT per mode)
        total = yield comm.allreduce(comm.rank, op="sum")

The runtime trampolines every rank over the discrete-event kernel;
messages travel over :class:`repro.des.network.Network` links with
latency and optional loss/duplication/corruption; process faults strike
as a Poisson process (the paper's frequency ``f``) and are *detectable*:
the struck rank's in-flight collective state is reset and the fault is
flagged, exactly the reset-to-``error`` discipline of Section 2.

Collectives run on a k-ary tree over the ranks: contributions aggregate
upward with periodic retransmission (masking message loss), the root
decides, and a release disseminates downward.  What the root does when a
fault was detected is governed by the runtime's :class:`FTMode` --
abort, return an error code, or (the paper's contribution) re-execute
the instance until it completes cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.des.core import Simulation
from repro.des.network import LinkFaults, Message, Network
from repro.obs.tracer import ensure_tracer
from repro.protosim.faultenv import DetectableFaultEnv
from repro.simmpi.ftmodes import ERR_FAULT, SUCCESS, BarrierError, FTMode, JobAborted
from repro.topology.graphs import Topology, kary_tree, ring

# ----------------------------------------------------------------------
# Syscalls
# ----------------------------------------------------------------------


class Syscall:
    """Base class of everything a rank generator may yield."""


@dataclass(frozen=True)
class _Compute(Syscall):
    duration: float


@dataclass(frozen=True)
class _Send(Syscall):
    dst: int
    payload: Any
    tag: int


@dataclass(frozen=True)
class _Recv(Syscall):
    src: int | None
    tag: int | None
    timeout: float | None = None


@dataclass(frozen=True)
class _Collective(Syscall):
    kind: str  # "barrier" | "reduce" | "bcast" | "allreduce"
    value: Any = None
    op: str = "sum"
    root: int = 0


@dataclass(frozen=True)
class _Now(Syscall):
    pass


@dataclass(frozen=True)
class _BarrierEnter(Syscall):
    """Non-blocking barrier entry (fuzzy barrier); yields a handle."""


@dataclass(frozen=True)
class _BarrierWait(Syscall):
    """Block until the fuzzy barrier identified by ``handle`` releases."""

    handle: int


@dataclass(frozen=True)
class _BarrierTest(Syscall):
    """Non-blocking poll of a fuzzy barrier: result or None."""

    handle: int


_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
    "prod": lambda a, b: a * b,
}

#: Tags at or above this value are reserved for the collective engine.
_CTRL_TAG = 1 << 20
_TAG_ARRIVE = _CTRL_TAG + 1
_TAG_RELEASE = _CTRL_TAG + 2


class Comm:
    """Per-rank communicator facade (mirrors the mpi4py lower-case API,
    except calls are *yielded* to the simulation runtime)."""

    def __init__(self, runtime: "Runtime", rank: int) -> None:
        self._runtime = runtime
        self.rank = rank
        self.size = runtime.nprocs

    # -- local -----------------------------------------------------------
    def compute(self, duration: float) -> Syscall:
        """Spend ``duration`` units of virtual time computing."""
        if duration < 0:
            raise ValueError("negative compute duration")
        return _Compute(duration)

    def now(self) -> Syscall:
        """Yielding this returns the current virtual time."""
        return _Now()

    # -- point to point ---------------------------------------------------
    def send(self, dst: int, payload: Any, tag: int = 0) -> Syscall:
        if not 0 <= dst < self.size:
            raise ValueError(f"bad destination rank {dst}")
        if tag >= _CTRL_TAG:
            raise ValueError("tag reserved for the collective engine")
        return _Send(dst, payload, tag)

    def recv(
        self,
        src: int | None = None,
        tag: int | None = None,
        timeout: float | None = None,
    ) -> Syscall:
        """Blocking receive; yields the payload of the first match.

        With a ``timeout`` the receive yields ``None`` if nothing
        matching arrives within that much virtual time (the building
        block for retransmission protocols)."""
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        return _Recv(src, tag, timeout)

    # -- collectives -------------------------------------------------------
    def barrier(self) -> Syscall:
        """Synchronize all ranks; yields SUCCESS (or ERR_FAULT in
        RETURN_CODE mode when a fault hit this instance)."""
        return _Collective("barrier")

    def barrier_enter(self) -> Syscall:
        """Fuzzy barrier (Gupta, cited in Section 8): enter the barrier
        without blocking; yields a handle.  Useful work may be done
        between entering and :meth:`barrier_wait` -- the paper maps the
        execute->success transition to barrier entry and ready->execute
        to barrier exit."""
        return _BarrierEnter()

    def barrier_wait(self, handle: int) -> Syscall:
        """Block until the fuzzy barrier ``handle`` releases; yields
        SUCCESS/ERR_FAULT like :meth:`barrier`."""
        return _BarrierWait(handle)

    def barrier_test(self, handle: int) -> Syscall:
        """Poll a fuzzy barrier without blocking: yields the result if
        it has released, None otherwise."""
        return _BarrierTest(handle)

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Syscall:
        """Yields the reduction at ``root``, None elsewhere."""
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r}; have {sorted(_OPS)}")
        if root != 0:
            raise ValueError("the collective tree is rooted at rank 0")
        return _Collective("reduce", value=value, op=op, root=root)

    def allreduce(self, value: Any, op: str = "sum") -> Syscall:
        """Yields the reduction at every rank."""
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r}; have {sorted(_OPS)}")
        return _Collective("allreduce", value=value, op=op)

    def bcast(self, value: Any = None, root: int = 0) -> Syscall:
        """Yields the root's value at every rank."""
        if root != 0:
            raise ValueError("the collective tree is rooted at rank 0")
        return _Collective("bcast", value=value, root=root)

    def gather(self, value: Any, root: int = 0) -> Syscall:
        """Yields the list of all ranks' values (rank order) at the
        root, None elsewhere."""
        if root != 0:
            raise ValueError("the collective tree is rooted at rank 0")
        return _Collective("gather", value=value, root=root)

    def allgather(self, value: Any) -> Syscall:
        """Yields the list of all ranks' values (rank order) at every
        rank."""
        return _Collective("allgather", value=value)

    def scatter(self, values: Any = None, root: int = 0) -> Syscall:
        """Root supplies one value per rank; each rank yields its own.

        (Implemented as an allgather-style dissemination of the root's
        list; per-rank payload slicing happens at delivery.)
        """
        if root != 0:
            raise ValueError("the collective tree is rooted at rank 0")
        return _Collective("scatter", value=values, root=root)


# ----------------------------------------------------------------------
# Per-rank collective state
# ----------------------------------------------------------------------
@dataclass
class _CollState:
    """One rank's participation in collective number ``cid``."""

    cid: int
    kind: str
    op: str
    value: Any
    entered_at: float
    waiting: bool = True
    child_values: dict[int, Any] = field(default_factory=dict)
    sent_up: bool = False
    attempt: int = 0
    blocking: bool = True  # False for fuzzy (enter/wait) barriers
    #: Start of the current attempt (= entered_at until a retry opens a
    #: fresh instance); the root stamps phase_end durations from it.
    attempt_started: float = 0.0


@dataclass(frozen=True)
class RankEvent:
    """One recorded runtime event (when event recording is enabled)."""

    time: float
    rank: int
    kind: str  # compute|send|recv|collective-enter|collective-complete|fault|retry
    detail: Any = None


@dataclass
class RuntimeStats:
    """Counters exposed after a run."""

    collectives_completed: int = 0
    instances_retried: int = 0
    error_codes_returned: int = 0
    faults_injected: int = 0
    aborted: bool = False
    messages_sent: int = 0


class Runtime:
    """The simulated job: ranks, network, faults, collective engine."""

    def __init__(
        self,
        nprocs: int,
        latency: float = 0.01,
        seed: int | None = 0,
        ft_mode: FTMode = FTMode.TOLERATE,
        fault_frequency: float = 0.0,
        link_faults: LinkFaults | None = None,
        arity: int = 2,
        retransmit_interval: float | None = None,
        record_events: bool = False,
        tracer: Any = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError("need at least one rank")
        self.nprocs = nprocs
        self.latency = latency
        self.ft_mode = ft_mode
        self.tracer = ensure_tracer(tracer)
        self.sim = Simulation(seed=seed, tracer=self.tracer)
        self.network = Network(self.sim, latency, link_faults)
        self.topology: Topology | None = (
            None
            if nprocs == 1
            else (kary_tree(nprocs, arity) if nprocs > 2 else ring(2))
        )
        self.retransmit_interval = (
            retransmit_interval
            if retransmit_interval is not None
            else max(6.0 * latency, 0.05)
        )
        self.stats = RuntimeStats()

        self._gens: list[Generator | None] = [None] * nprocs
        self._results: list[Any] = [None] * nprocs
        self._finished = 0
        self._mailbox: list[list[Message]] = [[] for _ in range(nprocs)]
        self._parked_recv: list[tuple[int | None, int | None] | None] = [
            None
        ] * nprocs
        self._recv_epoch = [0] * nprocs
        self._coll: list[_CollState | None] = [None] * nprocs
        self._coll_count = [0] * nprocs
        self._fuzzy_results: list[dict[int, Any]] = [{} for _ in range(nprocs)]
        self._fuzzy_waiting: list[int | None] = [None] * nprocs
        self._releases: dict[int, tuple[str, Any, int]] = {}
        self._fault_flag = [False] * nprocs
        self._fault_env = DetectableFaultEnv(
            fault_frequency, nprocs, tracer=self.tracer
        )
        self._aborting = False
        self.record_events = record_events
        self.events: list[RankEvent] = []

    def _event(self, rank: int, kind: str, detail: Any = None) -> None:
        if self.record_events:
            self.events.append(RankEvent(self.sim.now, rank, kind, detail))

    def events_for(self, rank: int) -> list[RankEvent]:
        """All recorded events of one rank, in time order."""
        return [e for e in self.events if e.rank == rank]

    # ------------------------------------------------------------------
    # Job control
    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[[Comm], Generator] | Sequence[Callable[[Comm], Generator]],
        until: float = inf,
        max_events: int = 10_000_000,
    ) -> list[Any]:
        """Run the job until all ranks return (or ``until`` virtual
        time); returns the per-rank return values.

        ``program`` is either one generator function applied at every
        rank (SPMD) or a sequence of ``nprocs`` generator functions, one
        per rank (MPMD).  In ABORT mode a detected fault raises
        :class:`JobAborted` inside every rank; the runtime re-raises it
        after the run.
        """
        if callable(program):
            programs: Sequence[Callable[[Comm], Generator]] = [
                program
            ] * self.nprocs
        else:
            programs = list(program)
            if len(programs) != self.nprocs:
                raise ValueError(
                    f"MPMD needs {self.nprocs} programs, got {len(programs)}"
                )
        for rank in range(self.nprocs):
            gen = programs[rank](Comm(self, rank))
            if not hasattr(gen, "send"):
                raise TypeError(
                    "program must be a generator function (use yield)"
                )
            self._gens[rank] = gen
        self._schedule_next_fault()
        for rank in range(self.nprocs):
            self._resume(rank, None)
        self.sim.run(
            until=until if until != inf else None,
            stop=lambda: self._finished >= self.nprocs,
            max_events=max_events,
        )
        self.stats.messages_sent = self.network.messages_sent
        if self.stats.aborted:
            raise JobAborted(
                f"job aborted by a fault (ft_mode={self.ft_mode.value})"
            )
        if self._finished < self.nprocs:
            alive = [r for r in range(self.nprocs) if self._gens[r] is not None]
            raise BarrierError(
                f"ranks {alive} did not finish by t={self.sim.now:g} "
                "(deadlock or time limit)"
            )
        return list(self._results)

    # ------------------------------------------------------------------
    # Trampoline
    # ------------------------------------------------------------------
    def _resume(self, rank: int, value: Any) -> None:
        gen = self._gens[rank]
        if gen is None:
            return
        try:
            syscall = gen.send(value)
        except StopIteration as stop:
            self._gens[rank] = None
            self._results[rank] = stop.value
            self._finished += 1
            return
        self._dispatch(rank, syscall)

    def _throw_all(self, exc: Exception) -> None:
        self._aborting = True
        self.stats.aborted = True
        for rank in range(self.nprocs):
            gen = self._gens[rank]
            if gen is None:
                continue
            try:
                gen.throw(exc)
            except (StopIteration, JobAborted):
                pass
            self._gens[rank] = None
            self._finished += 1

    def _dispatch(self, rank: int, syscall: Syscall) -> None:
        if isinstance(syscall, _Compute):
            self._event(rank, "compute", syscall.duration)
            self.sim.after(syscall.duration, lambda: self._resume(rank, None))
        elif isinstance(syscall, _Now):
            self.sim.after(0.0, lambda: self._resume(rank, self.sim.now))
        elif isinstance(syscall, _Send):
            self._event(rank, "send", (syscall.dst, syscall.tag))
            self.network.send(
                rank,
                syscall.dst,
                syscall.payload,
                lambda m: self._deliver(m),
                tag=syscall.tag,
            )
            self.sim.after(0.0, lambda: self._resume(rank, None))
        elif isinstance(syscall, _Recv):
            self._parked_recv[rank] = (syscall.src, syscall.tag)
            self._recv_epoch[rank] += 1
            if syscall.timeout is not None:
                epoch = self._recv_epoch[rank]

                def expire() -> None:
                    if (
                        self._parked_recv[rank] is not None
                        and self._recv_epoch[rank] == epoch
                        and self._gens[rank] is not None
                    ):
                        self._parked_recv[rank] = None
                        self._resume(rank, None)

                self.sim.after(syscall.timeout, expire)
            self._match_recv(rank)
        elif isinstance(syscall, _Collective):
            self._enter_collective(rank, syscall)
        elif isinstance(syscall, _BarrierEnter):
            self._enter_fuzzy(rank)
        elif isinstance(syscall, _BarrierWait):
            self._wait_fuzzy(rank, syscall.handle)
        elif isinstance(syscall, _BarrierTest):
            result = self._fuzzy_results[rank].pop(syscall.handle, None)
            self.sim.after(0.0, lambda: self._resume(rank, result))
        else:
            raise TypeError(f"rank {rank} yielded a non-syscall: {syscall!r}")

    # ------------------------------------------------------------------
    # Point-to-point delivery
    # ------------------------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        if self._aborting:
            return
        if msg.tag >= _CTRL_TAG:
            self._coll_message(msg)
            return
        if msg.corrupted:
            return  # detectable corruption: the receiver discards it
        self._mailbox[msg.dst].append(msg)
        self._match_recv(msg.dst)

    def _match_recv(self, rank: int) -> None:
        want = self._parked_recv[rank]
        if want is None:
            return
        src, tag = want
        box = self._mailbox[rank]
        for i, msg in enumerate(box):
            if (src is None or msg.src == src) and (
                tag is None or msg.tag == tag
            ):
                del box[i]
                self._parked_recv[rank] = None
                self._event(rank, "recv", (msg.src, msg.tag))
                self._resume(rank, msg.payload)
                return

    # ------------------------------------------------------------------
    # Process faults
    # ------------------------------------------------------------------
    def schedule_fault(self, time: float, rank: int) -> None:
        """Deterministically strike ``rank`` with a detectable fault at
        virtual ``time`` (adversarial fault-timing in tests; composes
        with the random fault environment)."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"bad rank {rank}")
        self.sim.at(time, lambda: self._strike(rank))

    def _schedule_next_fault(self) -> None:
        t = self._fault_env.next_arrival(self.sim.rng("proc-faults"), self.sim.now)
        if t == inf:
            return
        self.sim.at(t, self._inject_fault)

    def _inject_fault(self) -> None:
        if self._aborting:
            return
        victim = self._fault_env.victim(self.sim.rng("proc-faults"))
        self._strike(victim)
        self._schedule_next_fault()

    def _strike(self, victim: int) -> None:
        """Apply a detectable fault to ``victim`` right now."""
        if self._aborting:
            return
        self.stats.faults_injected += 1
        self._fault_flag[victim] = True
        self._event(victim, "fault")
        if self.tracer.enabled:
            self.tracer.fault(self.sim.now, victim)
        # The detectable reset: the rank's in-flight collective
        # aggregation state is lost (its own contribution survives in the
        # application-level call record, like data reconstructed from the
        # caller's arguments after a reset).
        state = self._coll[victim]
        if state is not None and state.waiting:
            state.child_values.clear()
            state.sent_up = False

    # ------------------------------------------------------------------
    # Collective engine
    # ------------------------------------------------------------------
    def _enter_collective(
        self, rank: int, call: _Collective, blocking: bool = True
    ) -> int:
        if self.nprocs == 1:
            result = self._single_rank_result(call)
            cid = self._coll_count[rank]
            self._coll_count[rank] += 1
            if self.tracer.enabled:
                self.tracer.phase_start(self.sim.now, cid)
                self.tracer.phase_end(self.sim.now, cid, True, duration=0.0)
            if blocking:
                self.sim.after(0.0, lambda: self._resume(rank, result))
            else:
                self._fuzzy_results[rank][cid] = result
                self.sim.after(0.0, lambda: self._resume(rank, cid))
            return cid
        if self._coll[rank] is not None and self._coll[rank].waiting:
            raise RuntimeError(
                f"rank {rank} entered a collective with another still open "
                "(complete the fuzzy barrier_wait first)"
            )
        cid = self._coll_count[rank]
        self._coll_count[rank] += 1
        value = call.value
        if call.kind in ("gather", "allgather"):
            value = {rank: call.value}  # merged upward by rank
        state = _CollState(
            cid=cid,
            kind=call.kind,
            op=call.op,
            value=value,
            entered_at=self.sim.now,
            blocking=blocking,
            attempt_started=self.sim.now,
        )
        self._coll[rank] = state
        self._event(rank, "collective-enter", (cid, call.kind))
        if rank == 0 and self.tracer.enabled:
            # The root's entry opens the instance (attempt 0); retries
            # open follow-up instances from _root_decide.
            self.tracer.phase_start(self.sim.now, cid)
        if not blocking:
            self.sim.after(0.0, lambda: self._resume(rank, cid))
        release = self._releases.get(cid)
        if release is not None:
            # Stragglers: the instance already completed.
            self._finish_collective(rank, state, release)
            return cid
        self._try_send_up(rank, state)
        self._arm_retransmit(rank, cid)
        return cid

    def _enter_fuzzy(self, rank: int) -> None:
        self._enter_collective(rank, _Collective("barrier"), blocking=False)

    def _wait_fuzzy(self, rank: int, handle: int) -> None:
        results = self._fuzzy_results[rank]
        if handle in results:
            result = results.pop(handle)
            self.sim.after(0.0, lambda: self._resume(rank, result))
            return
        state = self._coll[rank]
        if state is None or state.cid != handle or state.blocking:
            raise RuntimeError(
                f"rank {rank} waits on unknown fuzzy barrier {handle}"
            )
        self._fuzzy_waiting[rank] = handle

    def _single_rank_result(self, call: _Collective) -> Any:
        if call.kind == "barrier":
            return SUCCESS
        if call.kind in ("gather", "allgather"):
            return [call.value]
        if call.kind == "scatter":
            return call.value[0]
        return call.value  # reduce/allreduce/bcast of own value

    def _children(self, rank: int) -> Iterable[int]:
        assert self.topology is not None
        return self.topology.children[rank]

    def _parent(self, rank: int) -> int:
        assert self.topology is not None
        return self.topology.parent[rank]

    def _subtree_ready(self, rank: int, state: _CollState) -> bool:
        return all(c in state.child_values for c in self._children(rank))

    def _aggregate(self, state: _CollState) -> Any:
        if state.kind in ("gather", "allgather"):
            merged: dict[int, Any] = dict(state.value)
            for v in state.child_values.values():
                if v is not None:
                    merged.update(v)
            return merged
        acc = state.value
        op = _OPS[state.op]
        for v in state.child_values.values():
            if v is not None:
                acc = v if acc is None else op(acc, v)
        return acc

    _DATA_KINDS = ("reduce", "allreduce", "gather", "allgather")

    def _try_send_up(self, rank: int, state: _CollState) -> None:
        if not self._subtree_ready(rank, state):
            return
        if rank == 0:
            self._root_decide(state)
            return
        payload = {
            "cid": state.cid,
            "value": self._aggregate(state)
            if state.kind in self._DATA_KINDS
            else None,
            "attempt": state.attempt,
        }
        self.network.send(
            rank,
            self._parent(rank),
            payload,
            lambda m: self._deliver(m),
            tag=_TAG_ARRIVE,
        )
        state.sent_up = True

    def _arm_retransmit(self, rank: int, cid: int) -> None:
        def tick() -> None:
            state = self._coll[rank]
            if (
                self._aborting
                or state is None
                or state.cid != cid
                or not state.waiting
            ):
                return
            # Still waiting: re-offer the subtree contribution (masks
            # lost arrive messages and parent resets).
            if rank != 0 and self._subtree_ready(rank, state):
                self._try_send_up(rank, state)
            self.sim.after(self.retransmit_interval, tick)

        self.sim.after(self.retransmit_interval, tick)

    def _coll_message(self, msg: Message) -> None:
        if msg.corrupted:
            return  # detectable; retransmission recovers it
        rank = msg.dst
        payload = msg.payload
        cid = payload["cid"]
        if msg.tag == _TAG_ARRIVE:
            state = self._coll[rank]
            if state is None or state.cid != cid or not state.waiting:
                # The child is behind (lost release): re-release.
                release = self._releases.get(cid)
                if release is not None:
                    self._send_release(rank, msg.src, cid, release)
                return
            state.child_values[msg.src] = payload["value"]
            self._try_send_up(rank, state)
        elif msg.tag == _TAG_RELEASE:
            release = (payload["status"], payload["value"], payload["attempt"])
            state = self._coll[rank]
            if state is None or state.cid != cid:
                return
            if payload["status"] == "retry":
                if state.attempt < payload["attempt"]:
                    state.attempt = payload["attempt"]
                    state.sent_up = False
                    self._fault_flag[rank] = False
                    for child in self._children(rank):
                        self._send_release(rank, child, cid, release)
                    self._try_send_up(rank, state)
                return
            if state.waiting:
                for child in self._children(rank):
                    self._send_release(rank, child, cid, release)
                self._finish_collective(rank, state, release)

    def _send_release(
        self, src: int, dst: int, cid: int, release: tuple[str, Any, int]
    ) -> None:
        status, value, attempt = release
        self.network.send(
            src,
            dst,
            {"cid": cid, "status": status, "value": value, "attempt": attempt},
            lambda m: self._deliver(m),
            tag=_TAG_RELEASE,
        )

    def _root_decide(self, state: _CollState) -> None:
        """Rank 0 holds the full aggregation: decide the outcome."""
        faulted = any(self._fault_flag)
        tracer = self.tracer
        if faulted and tracer.enabled:
            tracer.detect(self.sim.now, 0, cid=state.cid)
        if faulted:
            if self.ft_mode is FTMode.ABORT:
                self._throw_all(
                    JobAborted("fault detected during a collective")
                )
                return
            if self.ft_mode is FTMode.TOLERATE:
                # Re-execute the instance (the paper's masking): clear the
                # flags and ask every rank to contribute again.
                self.stats.instances_retried += 1
                self._event(0, "retry", (state.cid, state.attempt + 1))
                if tracer.enabled:
                    tracer.phase_end(
                        self.sim.now,
                        state.cid,
                        False,
                        duration=self.sim.now - state.attempt_started,
                    )
                    tracer.phase_start(self.sim.now, state.cid)
                state.attempt_started = self.sim.now
                self._fault_flag = [False] * self.nprocs
                state.attempt += 1
                state.child_values.clear()
                release = ("retry", None, state.attempt)
                for child in self._children(0):
                    self._send_release(0, child, state.cid, release)
                return
            # RETURN_CODE: report the error to every rank.
            self._fault_flag = [False] * self.nprocs
            status = "error"
        else:
            status = "ok"
        if tracer.enabled:
            # The instance closes at the root's decision; an "error"
            # release completes the call but not the barrier semantics.
            tracer.phase_end(
                self.sim.now,
                state.cid,
                status == "ok",
                duration=self.sim.now - state.attempt_started,
            )
            if status == "ok" and state.attempt > 0:
                # Earlier attempts of this instance were struck; the ok
                # decision is the moment masking completed.
                tracer.recovery(self.sim.now, 0, cid=state.cid)
        if state.kind in ("bcast", "scatter"):
            value = state.value  # collectives root is rank 0
        elif state.kind in self._DATA_KINDS:
            value = self._aggregate(state)
        else:
            value = None
        release = (status, value, state.attempt)
        self._releases[state.cid] = release
        for child in self._children(0):
            self._send_release(0, child, state.cid, release)
        self._finish_collective(0, state, release)

    def _finish_collective(
        self, rank: int, state: _CollState, release: tuple[str, Any, int]
    ) -> None:
        status, value, _attempt = release
        state.waiting = False
        self._coll[rank] = None
        self.stats.collectives_completed += 1
        self._event(rank, "collective-complete", (state.cid, status))
        if status == "error":
            self.stats.error_codes_returned += 1
            result: Any = ERR_FAULT
        elif state.kind == "barrier":
            result = SUCCESS
        elif state.kind == "reduce":
            result = value if rank == 0 else None
        elif state.kind == "gather":
            result = (
                [value[r] for r in range(self.nprocs)] if rank == 0 else None
            )
        elif state.kind == "allgather":
            result = [value[r] for r in range(self.nprocs)]
        elif state.kind == "scatter":
            result = value[rank]
        else:  # allreduce, bcast
            result = value
        if state.blocking:
            self.sim.after(0.0, lambda: self._resume(rank, result))
        elif self._fuzzy_waiting[rank] == state.cid:
            self._fuzzy_waiting[rank] = None
            self.sim.after(0.0, lambda: self._resume(rank, result))
        else:
            self._fuzzy_results[rank][state.cid] = result
