"""Program MB as a real message-passing implementation.

This is the paper's deployment story made concrete: each rank runs the
MB state machine (sequence number, control position, phase, plus local
copies of its ring neighbours), neighbours exchange *state-push*
messages, and retransmission timers make the pushes idempotent and
loss-tolerant -- nothing but ``comm.send``/``comm.recv`` underneath, no
centralized coordinator.

The phase work happens while a rank is in ``execute``: the rank holds
the virtual token (suppresses its T1/T2) until the work completes,
exactly the RB/MB timing discipline.  Detectable faults are modelled by
a per-rank fault plan: at the planned times the rank's protocol state
resets (``sn := BOT``, ``cp := error``, copies reset), after which the
protocol's own repeat/re-execution machinery masks the loss --
the driver's phase log shows re-executed phases, never skipped or
overlapping ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping, Sequence

from repro.barrier.control import CP
from repro.gc.domains import BOT, TOP
from repro.obs.tracer import ensure_tracer
from repro.simmpi.runtime import Comm

#: Message tag for neighbour state pushes.
STATE_TAG = 77


def _ordinary(value: Any) -> bool:
    return value is not BOT and value is not TOP


def _follower_cp(current: CP, upstream: CP) -> CP | None:
    if current is CP.READY and upstream is CP.EXECUTE:
        return CP.EXECUTE
    if current is CP.EXECUTE and upstream is CP.SUCCESS:
        return CP.SUCCESS
    if current is not CP.EXECUTE and upstream is CP.READY:
        return CP.READY
    if current is CP.ERROR or upstream is not current:
        return CP.REPEAT
    return None


@dataclass
class MBMachine:
    """One rank's MB protocol state and transition rules."""

    rank: int
    size: int
    nphases: int
    l_domain: int

    sn: Any = 0
    cp: CP = CP.READY
    ph: int = 0
    lsn_prev: Any = 0
    lcp_prev: CP = CP.READY
    lph_prev: int = 0
    lsn_next: Any = 0
    busy: bool = False  # phase work in progress: hold the token
    done: bool = False  # termination flag (floods from rank 0)

    #: Events produced by steps: "enter-execute", "phase-complete",
    #: "re-execute".
    events: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def on_neighbor_state(
        self, src: int, sn: Any, cp: CP, ph: int, done: bool = False
    ) -> None:
        """Update the local copies (the CPREV / CNEXT actions)."""
        if done:
            # Termination is a global fact originating at rank 0; it
            # floods over the same retransmitted pushes.
            self.done = True
        if src == (self.rank - 1) % self.size:
            if _ordinary(sn) and self.lsn_prev != sn:
                self.lsn_prev = sn
                self.lph_prev = ph
                new = _follower_cp(self.lcp_prev, cp)
                if new is not None:
                    self.lcp_prev = new
        if src == (self.rank + 1) % self.size:
            if sn is TOP:
                self.lsn_next = TOP

    def reset(self) -> None:
        """A detectable fault: reset like the MB fault action."""
        self.sn = BOT
        self.cp = CP.ERROR
        self.lsn_prev = BOT
        self.lsn_next = BOT
        self.lcp_prev = CP.ERROR
        self.busy = False

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one enabled local action; True if anything changed."""
        if self.rank == 0:
            if self._t1():
                return True
            if self.sn is TOP:  # T5
                self.sn = 0
                return True
        else:
            if self._t2():
                return True
        if self.rank == self.size - 1:
            if self.sn is BOT:  # T3
                self.sn = TOP
                return True
        else:
            if self.sn is BOT and self.lsn_next is TOP:  # T4
                self.sn = TOP
                return True
        return False

    def run_enabled(self, limit: int = 16) -> bool:
        changed = False
        for _ in range(limit):
            if not self.step():
                break
            changed = True
        return changed

    # ------------------------------------------------------------------
    def _t1(self) -> bool:
        if self.busy:
            return False
        if not _ordinary(self.lsn_prev):
            return False
        if self.sn != self.lsn_prev and _ordinary(self.sn):
            return False
        self.sn = (self.lsn_prev + 1) % self.l_domain
        if (
            self.cp is CP.READY
            and self.lcp_prev is CP.READY
            and self.lph_prev == self.ph
        ):
            self.cp = CP.EXECUTE
            self.events.append("enter-execute")
        elif self.cp is CP.EXECUTE:
            self.cp = CP.SUCCESS
        elif self.cp is CP.SUCCESS:
            if self.lcp_prev is CP.SUCCESS and self.lph_prev == self.ph:
                self.ph = (self.ph + 1) % self.nphases
                self.events.append("phase-complete")
            else:
                self.ph = self.lph_prev
                self.events.append("re-execute")
            self.cp = CP.READY
        elif self.cp is CP.ERROR or self.cp is CP.REPEAT:
            self.ph = self.lph_prev
            self.cp = CP.READY
        return True

    def _t2(self) -> bool:
        if self.busy:
            return False
        if not _ordinary(self.lsn_prev) or self.sn == self.lsn_prev:
            return False
        self.sn = self.lsn_prev
        if self.lph_prev == (self.ph + 1) % self.nphases and self.cp in (
            CP.SUCCESS,
            CP.READY,
        ):
            # The hand-over wave reached this follower: its phase is done.
            self.events.append("phase-complete")
        self.ph = self.lph_prev
        new = _follower_cp(self.cp, self.lcp_prev)
        if new is not None:
            if new is CP.EXECUTE:
                self.events.append("enter-execute")
            self.cp = new
        return True

    def exported_state(self) -> tuple:
        return (self.sn, self.cp, self.ph, self.done)


@dataclass
class MBPhaseLog:
    """What one rank observed: completed phases and re-executions."""

    completed: int = 0
    reexecutions: int = 0
    faults_applied: int = 0


def mb_barrier_program(
    comm: Comm,
    phases: int,
    work_time: float = 0.5,
    nphases: int = 4,
    push_interval: float = 0.05,
    fault_plan: Mapping[int, Sequence[float]] | None = None,
    max_time: float = 10_000.0,
    tracer: Any = None,
) -> Generator[Any, Any, MBPhaseLog]:
    """The per-rank generator: run ``phases`` barrier phases via MB.

    ``fault_plan`` maps rank -> virtual times at which that rank suffers
    a detectable reset.  Returns the rank's :class:`MBPhaseLog`.

    With a ``tracer``, every planned reset emits a ``fault`` event and
    rank 0 narrates its phase instances (``phase_start`` on entering
    execute; ``phase_end`` with the observed success on hand-over,
    re-execution, or a reset striking mid-instance), so the chaos
    guarantee monitors can watch a distributed MB job through the same
    schema as every other engine.

    Rank 0's ``completed`` counts globally successful phases (its T1
    performs the increments) and *drives termination*: when it reaches
    ``phases`` it raises the ``done`` flag, which floods the ring inside
    the retransmitted state pushes.  Followers' counters are advisory --
    under message loss a follower can observe a hand-over late or
    coalesced, so the termination of the job never depends on them.
    Every rank keeps running the protocol (and serving neighbour pushes)
    until the closing barrier releases, so in-flight circulations always
    finish.
    """
    machine = MBMachine(
        rank=comm.rank,
        size=comm.size,
        nphases=nphases,
        l_domain=2 * comm.size,
    )
    log = MBPhaseLog()
    tracer = ensure_tracer(tracer)
    open_phase: int | None = None  # rank 0's in-flight traced instance
    pending_faults = sorted(
        (fault_plan or {}).get(comm.rank, ()), reverse=True
    )
    pred = (comm.rank - 1) % comm.size
    succ = (comm.rank + 1) % comm.size

    def push():
        # The origin rank rides in the payload (recv yields payloads).
        state = (comm.rank,) + machine.exported_state()
        return [
            comm.send(succ, state, tag=STATE_TAG),
            comm.send(pred, state, tag=STATE_TAG),
        ]

    def serve(msg) -> None:
        src, sn, cp, ph, done = msg
        machine.on_neighbor_state(src, sn, cp, ph, done)

    for syscall in push():
        yield syscall

    handle = None
    while True:
        now = yield comm.now()
        if now > max_time:
            raise TimeoutError(
                f"rank {comm.rank}: only {log.completed}/{phases} phases "
                f"by t={now:g}"
            )
        while pending_faults and pending_faults[-1] <= now:
            pending_faults.pop()
            machine.reset()
            log.faults_applied += 1
            if tracer.enabled:
                tracer.fault(now, comm.rank)
                if open_phase is not None:
                    # The reset killed rank 0's in-flight instance; the
                    # protocol will re-execute it.
                    tracer.phase_end(now, open_phase, False)
                    open_phase = None

        changed = machine.run_enabled()
        while machine.events:
            event = machine.events.pop(0)
            if event == "enter-execute":
                if tracer.enabled and comm.rank == 0 and open_phase is None:
                    open_phase = machine.ph
                    tracer.phase_start(now, open_phase)
                machine.busy = True
                yield comm.compute(work_time)
                machine.busy = False
                changed = True
            elif event == "phase-complete":
                log.completed += 1
                if tracer.enabled and comm.rank == 0 and open_phase is not None:
                    tracer.phase_end(now, open_phase, True)
                    open_phase = None
            elif event == "re-execute":
                log.reexecutions += 1
                if tracer.enabled and comm.rank == 0 and open_phase is not None:
                    tracer.phase_end(now, open_phase, False)
                    open_phase = None

        if comm.rank == 0 and log.completed >= phases and not machine.done:
            machine.done = True
            changed = True
        if machine.done and handle is None:
            # Joint termination rides on the engine's (retransmission-
            # masked) barrier, polled non-blockingly so this rank keeps
            # driving the protocol and serving neighbour pushes while
            # stragglers finish.
            handle = yield comm.barrier_enter()
        if handle is not None:
            released = yield comm.barrier_test(handle)
            if released is not None:
                break

        if changed:
            for syscall in push():
                yield syscall
        msg = yield comm.recv(tag=STATE_TAG, timeout=push_interval)
        if msg is not None:
            serve(msg)
        else:
            # Quiet period: retransmit (masks lost pushes).
            for syscall in push():
                yield syscall
    return log
