"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class SpecificationViolation(ReproError):
    """A barrier-synchronization Safety or Progress violation was
    detected by the specification oracle."""


class FatalFaultError(ReproError):
    """An uncorrectable fault was detected (Section 7, bottom row of
    Table 1): the program reports a fatal error and stops -- the
    fail-safe guarantee is that it never *wrongly* reports completion."""


class SimulationError(ReproError):
    """A simulator invariant broke (event ordering, domain violation...)."""


class TopologyError(ReproError):
    """An invalid topology was supplied (disconnected graph, bad tree)."""


class ObsPortInUseError(ReproError):
    """The observability HTTP port is already bound by another process.

    Raised instead of a raw ``OSError`` so callers (CLI, daemon) can
    print one actionable line -- which port, and that ``--obs-port 0``
    picks a free ephemeral port -- rather than a traceback."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        super().__init__(
            f"observability port {host}:{port} is already in use "
            "(pass --obs-port 0 for an ephemeral port)"
        )
