"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class SpecificationViolation(ReproError):
    """A barrier-synchronization Safety or Progress violation was
    detected by the specification oracle."""


class FatalFaultError(ReproError):
    """An uncorrectable fault was detected (Section 7, bottom row of
    Table 1): the program reports a fatal error and stops -- the
    fail-safe guarantee is that it never *wrongly* reports completion."""


class SimulationError(ReproError):
    """A simulator invariant broke (event ordering, domain violation...)."""


class TopologyError(ReproError):
    """An invalid topology was supplied (disconnected graph, bad tree)."""
