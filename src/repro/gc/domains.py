"""Variable domains for guarded-command programs.

Every variable in a paper program ranges over a finite domain: control
positions range over an enumeration, phases over ``{0..n-1}``, and the
token-ring sequence numbers over ``{0..K-1} + {BOT, TOP}`` where ``BOT``
(the paper's bottom) marks a detectably-corrupted sequence number and
``TOP`` is used to flush a fully-corrupted ring.

Domains serve three roles:

* validation -- ``contains`` guards against out-of-domain writes;
* fault modelling -- an undetectable fault assigns a *nondeterministically
  chosen* value from the domain (``sample``), exactly as in Section 2 of
  the paper;
* model checking -- ``values`` enumerates the finite domain so the
  explicit-state explorer can build the full state space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable


class _Special:
    """Singleton marker values (the paper's special sequence numbers)."""

    __slots__ = ("_name", "_rank")

    def __init__(self, name: str, rank: int) -> None:
        self._name = name
        self._rank = rank

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        # Preserve singleton identity across pickling (deep copies of
        # states must keep ``is``-comparability).
        return (_special_by_name, (self._name,))

    def __lt__(self, other: object) -> bool:
        if isinstance(other, _Special):
            return self._rank < other._rank
        # Specials sort after all integers so state keys are orderable.
        if isinstance(other, int):
            return False
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, _Special):
            return self._rank > other._rank
        if isinstance(other, int):
            return True
        return NotImplemented


#: The paper's bottom sequence number: "when the sequence number of a
#: process is corrupted, it is set to BOT".
BOT = _Special("BOT", 0)

#: The paper's top sequence number, "used to detect whether a detectable
#: fault has occurred at that process" and to flush a fully-corrupted ring.
TOP = _Special("TOP", 1)


def _special_by_name(name: str) -> _Special:
    if name == "BOT":
        return BOT
    if name == "TOP":
        return TOP
    raise ValueError(f"unknown special value {name!r}")


@runtime_checkable
class Domain(Protocol):
    """A finite value domain for one program variable."""

    def contains(self, value: Any) -> bool:
        """Return whether ``value`` lies in the domain."""
        ...

    def values(self) -> Sequence[Any]:
        """Enumerate the domain (finite, stable order)."""
        ...

    def sample(self, rng: Any) -> Any:
        """Draw a uniformly random element (undetectable-fault ``?``)."""
        ...


@dataclass(frozen=True)
class IntRange:
    """The integer domain ``{lo .. hi}`` inclusive.

    Used for phase counters (``{0..n-1}``) and plain sequence numbers.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty IntRange [{self.lo}, {self.hi}]")

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and (
            self.lo <= value <= self.hi
        )

    def values(self) -> Sequence[int]:
        return range(self.lo, self.hi + 1)

    def sample(self, rng: Any) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def succ(self, value: int) -> int:
        """Successor in modulo ``size`` arithmetic, offset by ``lo``.

        The paper's ``+`` on phases is modulo-n and on sequence numbers
        modulo-K; both are instances of this helper.
        """
        return self.lo + ((value - self.lo + 1) % self.size)


@dataclass(frozen=True)
class EnumDomain:
    """A finite enumeration domain (e.g. control positions)."""

    members: tuple

    def __init__(self, members: Iterable[Any]) -> None:
        object.__setattr__(self, "members", tuple(members))
        if not self.members:
            raise ValueError("EnumDomain needs at least one member")
        if len(set(map(id, self.members))) != len(self.members) and len(
            set(self.members)
        ) != len(self.members):
            raise ValueError("EnumDomain members must be distinct")

    def contains(self, value: Any) -> bool:
        return value in self.members

    def values(self) -> Sequence[Any]:
        return self.members

    def sample(self, rng: Any) -> Any:
        return self.members[int(rng.integers(0, len(self.members)))]


@dataclass(frozen=True)
class SequenceNumberDomain:
    """The token-ring sequence-number domain ``{0..K-1} + {BOT, TOP}``.

    ``K`` must exceed the ring length ``N`` (Section 4.1); the
    message-passing refinement MB widens it to ``L > 2N + 1`` (Section 5).
    """

    k: int
    include_specials: bool = field(default=True)

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("sequence-number domain needs K >= 2")

    def contains(self, value: Any) -> bool:
        if value is BOT or value is TOP:
            return self.include_specials
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and 0 <= value < self.k
        )

    def values(self) -> Sequence[Any]:
        base: list[Any] = list(range(self.k))
        if self.include_specials:
            base.extend((BOT, TOP))
        return base

    def sample(self, rng: Any) -> Any:
        vals = self.values()
        return vals[int(rng.integers(0, len(vals)))]

    def is_ordinary(self, value: Any) -> bool:
        """True iff ``value`` is a plain number (not BOT/TOP)."""
        return value is not BOT and value is not TOP and self.contains(value)

    def succ(self, value: int) -> int:
        """Modulo-K successor (the paper's ``sn + 1``)."""
        if not self.is_ordinary(value):
            raise ValueError(f"succ of non-ordinary sequence number {value!r}")
        return (value + 1) % self.k


def check_value(domain: Domain, name: str, value: Any) -> None:
    """Raise ``ValueError`` when ``value`` is outside ``domain``."""
    if not domain.contains(value):
        raise ValueError(f"value {value!r} outside domain of variable {name!r}")
