"""Guarded actions.

An action is ``name :: guard -> statement``.  Guards read the global
state; statements update *only the variables of the owning process* (the
paper's locality discipline, which is also what makes maximal-parallel
execution race free: no two processes ever write the same variable).

To support both interleaving and synchronous semantics, statements are
*pure*: instead of mutating the state they return an :class:`Update`
(a list of ``(variable, value)`` pairs for the owning process).  The
daemon applies updates; under maximal parallelism all guards and all
statements are evaluated against the pre-step snapshot before any update
is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


#: One write produced by a statement: ``(variable-name, new-value)``.
#: All writes target the executing process's own variables.
Update = Sequence[tuple[str, Any]]

Guard = Callable[["StateView"], bool]
Statement = Callable[["StateView"], Update]


class StateView:
    """What a guard/statement sees: the global state plus the executing
    process id and an RNG for the paper's nondeterministic choices.

    The paper's guards freely read other processes' variables (that is the
    whole point of the coarse-grain program CB); the view exposes those
    reads but funnels all *writes* through the returned update list.
    """

    __slots__ = ("state", "pid", "rng", "nprocs")

    def __init__(self, state: Any, pid: int, rng: Any = None) -> None:
        self.state = state
        self.pid = pid
        self.rng = rng
        self.nprocs = state.nprocs

    def my(self, var: str) -> Any:
        """Read the executing process's own copy of ``var``."""
        return self.state.get(var, self.pid)

    def of(self, var: str, pid: int) -> Any:
        """Read ``var`` at process ``pid``."""
        return self.state.get(var, pid)

    def vector(self, var: str) -> tuple:
        """Read the whole per-process vector of ``var``."""
        return self.state.vector(var)

    def others(self) -> range:
        """All process ids (the paper's quantifications range over all k,
        including j itself, which is how we quantify too)."""
        return range(self.nprocs)

    def any_with(self, var: str, value: Any) -> int | None:
        """Return some pid whose ``var`` equals ``value`` (the paper's
        ``(any k : cp.k = value : ...)``), or ``None`` if there is none.

        When an RNG is attached the witness is chosen uniformly, modelling
        the specification's nondeterminism; otherwise the first match is
        returned (deterministic daemons).
        """
        matches = [k for k in range(self.nprocs) if self.state.get(var, k) == value]
        if not matches:
            return None
        if self.rng is None or len(matches) == 1:
            return matches[0]
        return matches[int(self.rng.integers(0, len(matches)))]

    def choose(self, values: Sequence[Any]) -> Any:
        """Nondeterministic choice from ``values`` (arbitrary phase pick
        in CB4 when every process is corrupted)."""
        if not values:
            raise ValueError("choose() from empty sequence")
        if self.rng is None or len(values) == 1:
            return values[0]
        return values[int(self.rng.integers(0, len(values)))]


@dataclass(frozen=True)
class Action:
    """A named guarded action owned by one process.

    ``kind`` tags the action for the timed simulator ("comm" actions cost
    the communication latency, "compute" actions cost the phase-execution
    time, "local" actions are free); ``duration`` optionally overrides the
    kind-based cost with a fixed value.

    ``reads`` optionally declares the guard's read-set as a frozenset of
    ``(variable, pid)`` cells.  Declaring it is a *purity contract*: the
    guard's boolean value must be a deterministic function of exactly
    those cells (no RNG draws, no reads outside the set).  The
    incremental daemons use the declaration to skip re-evaluating guards
    whose cells were untouched by the last step; an action with
    ``reads=None`` is re-evaluated every step, which is always correct.
    ``writes`` optionally declares the set of *variable names* the
    statement may write (always at the owning pid, per the locality
    discipline).  Like ``reads`` it is a contract: when declared, the
    incremental index dirties exactly the declared cells after a fire
    (:meth:`repro.gc.incremental.EnabledIndex.note_fire`) -- a declared
    *empty* set promises the statement's updates never change any cell.
    ``writes=None`` means undeclared; the daemons then derive dirty
    cells from the update list actually applied, which is always
    correct.
    """

    name: str
    pid: int
    guard: Guard
    statement: Statement
    kind: str = field(default="local")
    duration: float | None = field(default=None)
    reads: frozenset[tuple[str, int]] | None = field(default=None)
    writes: frozenset[str] | None = field(default=None)

    def enabled(self, state: Any, rng: Any = None) -> bool:
        return bool(self.guard(StateView(state, self.pid, rng)))

    def updates(self, state: Any, rng: Any = None) -> list[tuple[str, Any]]:
        """Evaluate the statement; returns the writes to apply."""
        result = self.statement(StateView(state, self.pid, rng))
        return list(result) if result is not None else []

    def execute(self, state: Any, rng: Any = None) -> list[tuple[str, Any]]:
        """Interleaving-semantics helper: evaluate and apply in one step."""
        ups = self.updates(state, rng)
        apply_updates(state, self.pid, ups)
        return ups

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Action({self.name}@{self.pid})"


def apply_updates(state: Any, pid: int, updates: Update) -> None:
    """Apply an update list to ``state`` on behalf of process ``pid``."""
    for var, value in updates:
        state.set(var, pid, value)
