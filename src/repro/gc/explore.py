"""Explicit-state model checking for small program instances.

The paper proves its lemmas by hand; we additionally verify them
exhaustively on small instances (2-4 processes, 2-3 phases) by building
the full transition graph under the nondeterministic interleaving daemon
and checking:

* **invariants** over all reachable states;
* **closure** -- no transition leaves the legitimate set;
* **convergence** in three strengths:

  - ``all_paths_converge``: no cycle and no deadlock within the
    illegitimate states (every execution, fair or not, converges);
  - ``some_path_converges``: from every state some path reaches a
    legitimate state (CTL ``EF legit`` -- a necessary condition);
  - fairness-dependent convergence is sampled via
    :func:`repro.gc.properties.stabilization_profile` since weak fairness
    cannot be decided from the plain transition graph.

Performance options (all off by default, all result-preserving):

* ``compact_keys`` -- intern states as per-cell domain-index byte
  strings (:class:`KeyCodec`) instead of nested tuples.  Byte keys hash
  and compare several times faster and occupy a fraction of the memory,
  which matters once graphs reach the 10^5..10^6 range.  The result's
  key *type* changes (``bytes`` instead of ``tuple``), so it is opt-in;
  ``ExplorationResult.state_of`` handles either.
* successor memoization -- ``Explorer`` caches each expanded key's
  successor keys, so repeated explorations over overlapping regions
  (convergence checks from many fault-perturbed roots) skip
  re-expansion.  Bounded by ``max_states`` entries; cleared with
  :meth:`Explorer.clear_cache`.
* ``workers`` -- expand each BFS level's frontier in a thread pool.
  Successor lists are merged sequentially in frontier order afterwards,
  so the resulting graph -- and the BFS layer order -- is identical to
  the serial run.  Guard evaluation is pure Python, so this only pays
  off when guards release the GIL; it is provided for completeness and
  for larger deployments, not as the default path.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Hashable, Iterable

from repro.gc.program import Program
from repro.gc.state import State

StatePredicate = Callable[[State], bool]

#: A state key: ``State.key()`` tuples by default, ``bytes`` under
#: ``compact_keys``.  Both are hashable and order-stable.
Key = Hashable


class KeyCodec:
    """Bijective encoding of program states as compact byte strings.

    Each ``(variable, pid)`` cell stores the *index* of its value within
    the variable's declared domain, one byte per cell (two bytes for
    domains larger than 256 values), variables in sorted-name order to
    match :meth:`State.key`.  Encoding requires every variable's domain
    to be enumerable and every reachable value to be in it -- which holds
    for all programs built by this package, since domains validate
    writes.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.nprocs = program.nprocs
        self._names: list[str] = sorted(
            decl.name for decl in program.declarations
        )
        by_name = {decl.name: decl for decl in program.declarations}
        self._tables: list[dict] = []
        self._values: list[tuple] = []
        self.wide = False
        for name in self._names:
            values = tuple(by_name[name].domain.values())
            if len(values) > 256:
                self.wide = True
            self._values.append(values)
            self._tables.append({v: i for i, v in enumerate(values)})

    def encode(self, state: State) -> bytes:
        """Compact key of ``state`` (inverse of :meth:`decode`)."""
        out = bytearray()
        for name, table in zip(self._names, self._tables):
            if self.wide:
                for v in state.vector(name):
                    out += table[v].to_bytes(2, "big")
            else:
                out += bytes(table[v] for v in state.vector(name))
        return bytes(out)

    def decode(self, key: bytes) -> State:
        """Rebuild the :class:`State` a compact key encodes."""
        n = self.nprocs
        width = 2 if self.wide else 1
        vectors: dict[str, list] = {}
        offset = 0
        for name, values in zip(self._names, self._values):
            cells = []
            for _ in range(n):
                idx = int.from_bytes(key[offset : offset + width], "big")
                cells.append(values[idx])
                offset += width
            vectors[name] = cells
        return State(vectors, n)


@dataclass
class ExplorationResult:
    """The transition graph over reachable states.

    Semantics (identical whether or not the search was truncated):

    * ``transitions`` has exactly one entry per key in :attr:`states`,
      and that entry is the state's *complete* successor set -- an empty
      set always means a genuinely silent state.
    * Under truncation, successor sets may mention keys that are *not*
      in :attr:`states`: states discovered after the ``max_states``
      budget was exhausted.  Those dropped keys are collected in
      :attr:`unexpanded` (empty iff not :attr:`truncated`); they are
      decodable via :meth:`state_of` but have no successor information.
      Closure checks therefore remain exact on truncated graphs, while
      algorithms needing full reachability must refuse them (the
      convergence checks below do).
    """

    program: Program
    states: set[Key]
    transitions: dict[Key, set[Key]]
    truncated: bool = False
    initial: set[Key] = field(default_factory=set)
    #: Keys discovered but dropped by the budget (empty unless
    #: ``truncated``); never overlaps ``states``.
    unexpanded: set[Key] = field(default_factory=set)
    #: Codec used for ``bytes`` keys; ``None`` for tuple keys.
    codec: KeyCodec | None = None

    def state_of(self, key: Key) -> State:
        if isinstance(key, bytes):
            if self.codec is None:
                raise ValueError("bytes key but no codec on this result")
            return self.codec.decode(key)
        return State.from_key(key, self.program.nprocs)

    def __len__(self) -> int:
        return len(self.states)


class Explorer:
    """Breadth-first exploration of a program's state space.

    ``compact_keys`` switches result keys from ``State.key()`` tuples to
    interned :class:`KeyCodec` byte strings (see module docstring);
    ``workers`` > 1 expands each BFS level in a thread pool.  Both
    options produce the identical graph, modulo key representation.
    """

    def __init__(
        self,
        program: Program,
        max_states: int = 200_000,
        compact_keys: bool = False,
        workers: int | None = None,
        backend: str = "interpreter",
    ) -> None:
        self.program = program
        self.max_states = max_states
        self.compact_keys = compact_keys
        self.workers = workers
        if backend not in ("interpreter", "compiled"):
            raise ValueError(f"unknown explorer backend {backend!r}")
        self.backend = backend
        self._compiled = None
        if backend == "compiled":
            from repro.gc.compile import CompiledProgram

            self._compiled = CompiledProgram(program)
        self.codec = KeyCodec(program) if compact_keys else None
        #: key -> tuple of (succ_key, succ_state-or-None); states are
        #: kept only until first use to avoid holding the whole graph.
        self._succ_memo: dict[Key, tuple[Key, ...]] = {}

    def clear_cache(self) -> None:
        """Drop the successor memo (after mutating the program, say)."""
        self._succ_memo.clear()

    def _key(self, state: State) -> Key:
        return self.codec.encode(state) if self.codec else state.key()

    # ------------------------------------------------------------------
    def successors(self, state: State) -> list[State]:
        """All one-step successors under nondeterministic interleaving.

        The paper's ``any k`` / arbitrary-value choices are expanded by
        re-evaluating each enabled action deterministically; for full
        nondeterminism of witnesses the programs expose deterministic
        witness selection (first match), which is sound for invariant
        checking because witness choice never affects the *set* of
        control-position transitions, only which equal phase value is
        copied.  Actions whose statements are genuinely nondeterministic
        should express the choice through distinct actions.
        """
        if self._compiled is not None:
            # Memoized guards/effects over the array mirror; identical
            # states in the identical action order.
            return self._compiled.successors(state)
        out = []
        for action in self.program.actions():
            if action.enabled(state):
                succ = state.snapshot()
                action.execute(succ)
                out.append(succ)
        return out

    def _expand(self, state: State, key: Key) -> tuple[tuple[Key, State], ...]:
        """Successors of ``key`` as (key, state) pairs, memoized.

        On a memo hit the states are rebuilt from their keys only when
        the caller actually needs them (i.e. when the key is new), which
        the BFS below exploits.
        """
        cached = self._succ_memo.get(key)
        if cached is not None:
            return tuple((sk, None) for sk in cached)  # type: ignore[misc]
        pairs = tuple((self._key(s), s) for s in self.successors(state))
        if len(self._succ_memo) < self.max_states:
            self._succ_memo[key] = tuple(sk for sk, _ in pairs)
        return pairs

    # ------------------------------------------------------------------
    def reachable(self, roots: Iterable[State]) -> ExplorationResult:
        """Breadth-first search from ``roots``.

        States are expanded strictly in BFS layer order (all roots, then
        all depth-1 states in discovery order, ...), so ``max_states``
        truncation keeps a distance-bounded ball around the roots rather
        than a depth-first sliver.  Runs with the same roots and budget
        produce the identical graph regardless of ``workers``.
        """
        frontier: deque[tuple[Key, State]] = deque()
        initial: set[Key] = set()
        for s in roots:
            snap = s.snapshot()
            k = self._key(snap)
            if k not in initial:
                initial.add(k)
                frontier.append((k, snap))
        seen: set[Key] = set(initial)
        transitions: dict[Key, set[Key]] = {}
        truncated = False
        # The compiled backend shares one mutable array mirror across
        # calls, so its expansion is serialized (workers are ignored).
        pool = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers and self.workers > 1 and self._compiled is None
            else None
        )
        try:
            while frontier:
                if pool is not None:
                    level = list(frontier)
                    frontier.clear()
                    expanded = pool.map(
                        lambda kv: self._expand(kv[1], kv[0]), level
                    )
                    batches = list(zip(level, expanded))
                else:
                    key, state = frontier.popleft()
                    batches = [((key, state), self._expand(state, key))]
                # Sequential merge in frontier order: determinism does
                # not depend on thread completion order.
                for (key, _state), pairs in batches:
                    succs = set()
                    for skey, sstate in pairs:
                        succs.add(skey)
                        if skey in seen:
                            continue
                        if len(seen) >= self.max_states:
                            truncated = True
                            continue
                        seen.add(skey)
                        if sstate is None:  # memo hit: rebuild lazily
                            sstate = self.state_of(skey)
                        frontier.append((skey, sstate))
                    transitions[key] = succs
        finally:
            if pool is not None:
                pool.shutdown()
        for key in seen:
            transitions.setdefault(key, set())
        unexpanded: set[Key] = set()
        if truncated:
            for succs in transitions.values():
                unexpanded.update(succs - seen)
        return ExplorationResult(
            self.program,
            seen,
            transitions,
            truncated,
            initial,
            unexpanded,
            self.codec,
        )

    def state_of(self, key: Key) -> State:
        """Decode a key produced by this explorer."""
        if isinstance(key, bytes):
            assert self.codec is not None
            return self.codec.decode(key)
        return State.from_key(key, self.program.nprocs)

    def full_state_space(self) -> list[State]:
        """Every syntactically possible state (product of domains).

        Only usable for very small instances; raises if the space exceeds
        ``max_states``.
        """
        domains = [
            (decl.name, tuple(decl.domain.values()))
            for decl in self.program.declarations
        ]
        n = self.program.nprocs
        total = 1
        for _, vals in domains:
            total *= len(vals) ** n
        if total > self.max_states:
            raise ValueError(
                f"state space of size {total} exceeds max_states="
                f"{self.max_states}"
            )
        states = []
        per_var_assignments = [
            list(product(vals, repeat=n)) for _, vals in domains
        ]
        names = [name for name, _ in domains]
        for combo in product(*per_var_assignments):
            vectors = {name: list(vec) for name, vec in zip(names, combo)}
            states.append(State(vectors, n))
        return states

    # ------------------------------------------------------------------
    def check_invariant(
        self, result: ExplorationResult, invariant: StatePredicate
    ) -> list[Key]:
        """Return all reachable states violating ``invariant``."""
        return [
            key
            for key in result.states
            if not invariant(result.state_of(key))
        ]

    def check_closure(
        self, result: ExplorationResult, legitimate: StatePredicate
    ) -> list[tuple[Key, Key]]:
        """Return transitions that exit the legitimate set."""
        bad = []
        for key, succs in result.transitions.items():
            if not legitimate(result.state_of(key)):
                continue
            for skey in succs:
                if not legitimate(result.state_of(skey)):
                    bad.append((key, skey))
        return bad

    def all_paths_converge(
        self, result: ExplorationResult, legitimate: StatePredicate
    ) -> bool:
        """No illegitimate cycle, no illegitimate deadlock.

        Sound and complete for convergence of *all* (not just fair)
        executions within the explored graph.
        """
        if result.truncated:
            raise ValueError("cannot decide convergence on a truncated graph")
        legit = {
            key for key in result.states if legitimate(result.state_of(key))
        }
        # Deadlocks (silent states) outside the legitimate set fail.
        for key in result.states - legit:
            if not result.transitions[key]:
                return False
        # Cycle detection restricted to illegitimate states.
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Key, int] = {k: WHITE for k in result.states - legit}
        for start in list(color):
            if color[start] != WHITE:
                continue
            stack: list[tuple[Key, Iterable[Key]]] = [
                (start, iter(result.transitions[start]))
            ]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ in legit:
                        continue
                    c = color.get(succ, WHITE)
                    if c == GRAY:
                        return False  # illegitimate cycle
                    if c == WHITE:
                        color[succ] = GRAY
                        stack.append((succ, iter(result.transitions[succ])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    def some_path_converges(
        self, result: ExplorationResult, legitimate: StatePredicate
    ) -> bool:
        """CTL ``EF legitimate`` from every explored state (backwards
        reachability from the legitimate set)."""
        if result.truncated:
            raise ValueError("cannot decide convergence on a truncated graph")
        predecessors: dict[Key, set[Key]] = {k: set() for k in result.states}
        for key, succs in result.transitions.items():
            for skey in succs:
                predecessors.setdefault(skey, set()).add(key)
        legit = [
            key for key in result.states if legitimate(result.state_of(key))
        ]
        can_reach = set(legit)
        frontier = list(legit)
        while frontier:
            node = frontier.pop()
            for pred in predecessors.get(node, ()):
                if pred not in can_reach:
                    can_reach.add(pred)
                    frontier.append(pred)
        return can_reach >= result.states
