"""Explicit-state model checking for small program instances.

The paper proves its lemmas by hand; we additionally verify them
exhaustively on small instances (2-4 processes, 2-3 phases) by building
the full transition graph under the nondeterministic interleaving daemon
and checking:

* **invariants** over all reachable states;
* **closure** -- no transition leaves the legitimate set;
* **convergence** in three strengths:

  - ``all_paths_converge``: no cycle and no deadlock within the
    illegitimate states (every execution, fair or not, converges);
  - ``some_path_converges``: from every state some path reaches a
    legitimate state (CTL ``EF legit`` -- a necessary condition);
  - fairness-dependent convergence is sampled via
    :func:`repro.gc.properties.stabilization_profile` since weak fairness
    cannot be decided from the plain transition graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterable

from repro.gc.program import Program
from repro.gc.state import State

StatePredicate = Callable[[State], bool]

Key = tuple


@dataclass
class ExplorationResult:
    """The transition graph over reachable states."""

    program: Program
    states: set[Key]
    transitions: dict[Key, set[Key]]
    truncated: bool = False
    initial: set[Key] = field(default_factory=set)

    def state_of(self, key: Key) -> State:
        return State.from_key(key, self.program.nprocs)

    def __len__(self) -> int:
        return len(self.states)


class Explorer:
    """BFS exploration of a program's state space."""

    def __init__(self, program: Program, max_states: int = 200_000) -> None:
        self.program = program
        self.max_states = max_states

    # ------------------------------------------------------------------
    def successors(self, state: State) -> list[State]:
        """All one-step successors under nondeterministic interleaving.

        The paper's ``any k`` / arbitrary-value choices are expanded by
        re-evaluating each enabled action deterministically; for full
        nondeterminism of witnesses the programs expose deterministic
        witness selection (first match), which is sound for invariant
        checking because witness choice never affects the *set* of
        control-position transitions, only which equal phase value is
        copied.  Actions whose statements are genuinely nondeterministic
        should express the choice through distinct actions.
        """
        out = []
        for action in self.program.actions():
            if action.enabled(state):
                succ = state.snapshot()
                action.execute(succ)
                out.append(succ)
        return out

    # ------------------------------------------------------------------
    def reachable(self, roots: Iterable[State]) -> ExplorationResult:
        """BFS from ``roots``; truncates at ``max_states``."""
        frontier: list[State] = [s.snapshot() for s in roots]
        initial = {s.key() for s in frontier}
        seen: set[Key] = set(initial)
        transitions: dict[Key, set[Key]] = {}
        truncated = False
        while frontier:
            state = frontier.pop()
            key = state.key()
            succs = self.successors(state)
            transitions[key] = {s.key() for s in succs}
            for succ in succs:
                skey = succ.key()
                if skey not in seen:
                    if len(seen) >= self.max_states:
                        truncated = True
                        continue
                    seen.add(skey)
                    frontier.append(succ)
        # States that were enqueued but never expanded due to truncation
        # still need a transitions entry for graph algorithms.
        for key in seen:
            transitions.setdefault(key, set())
        return ExplorationResult(self.program, seen, transitions, truncated, initial)

    def full_state_space(self) -> list[State]:
        """Every syntactically possible state (product of domains).

        Only usable for very small instances; raises if the space exceeds
        ``max_states``.
        """
        domains = [
            (decl.name, tuple(decl.domain.values()))
            for decl in self.program.declarations
        ]
        n = self.program.nprocs
        total = 1
        for _, vals in domains:
            total *= len(vals) ** n
        if total > self.max_states:
            raise ValueError(
                f"state space of size {total} exceeds max_states="
                f"{self.max_states}"
            )
        states = []
        per_var_assignments = [
            list(product(vals, repeat=n)) for _, vals in domains
        ]
        names = [name for name, _ in domains]
        for combo in product(*per_var_assignments):
            vectors = {name: list(vec) for name, vec in zip(names, combo)}
            states.append(State(vectors, n))
        return states

    # ------------------------------------------------------------------
    def check_invariant(
        self, result: ExplorationResult, invariant: StatePredicate
    ) -> list[Key]:
        """Return all reachable states violating ``invariant``."""
        return [
            key
            for key in result.states
            if not invariant(result.state_of(key))
        ]

    def check_closure(
        self, result: ExplorationResult, legitimate: StatePredicate
    ) -> list[tuple[Key, Key]]:
        """Return transitions that exit the legitimate set."""
        bad = []
        for key, succs in result.transitions.items():
            if not legitimate(result.state_of(key)):
                continue
            for skey in succs:
                if not legitimate(result.state_of(skey)):
                    bad.append((key, skey))
        return bad

    def all_paths_converge(
        self, result: ExplorationResult, legitimate: StatePredicate
    ) -> bool:
        """No illegitimate cycle, no illegitimate deadlock.

        Sound and complete for convergence of *all* (not just fair)
        executions within the explored graph.
        """
        if result.truncated:
            raise ValueError("cannot decide convergence on a truncated graph")
        legit = {
            key for key in result.states if legitimate(result.state_of(key))
        }
        # Deadlocks (silent states) outside the legitimate set fail.
        for key in result.states - legit:
            if not result.transitions[key]:
                return False
        # Cycle detection restricted to illegitimate states.
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Key, int] = {k: WHITE for k in result.states - legit}
        for start in list(color):
            if color[start] != WHITE:
                continue
            stack: list[tuple[Key, Iterable[Key]]] = [
                (start, iter(result.transitions[start]))
            ]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ in legit:
                        continue
                    c = color.get(succ, WHITE)
                    if c == GRAY:
                        return False  # illegitimate cycle
                    if c == WHITE:
                        color[succ] = GRAY
                        stack.append((succ, iter(result.transitions[succ])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    def some_path_converges(
        self, result: ExplorationResult, legitimate: StatePredicate
    ) -> bool:
        """CTL ``EF legitimate`` from every explored state (backwards
        reachability from the legitimate set)."""
        if result.truncated:
            raise ValueError("cannot decide convergence on a truncated graph")
        predecessors: dict[Key, set[Key]] = {k: set() for k in result.states}
        for key, succs in result.transitions.items():
            for skey in succs:
                predecessors.setdefault(skey, set()).add(key)
        legit = [
            key for key in result.states if legitimate(result.state_of(key))
        ]
        can_reach = set(legit)
        frontier = list(legit)
        while frontier:
            node = frontier.pop()
            for pred in predecessors.get(node, ()):
                if pred not in can_reach:
                    can_reach.add(pred)
                    frontier.append(pred)
        return can_reach >= result.states
