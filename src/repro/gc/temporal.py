"""Finite-trace temporal properties over program runs.

The paper's guarantees are temporal: Safety is an *always*, Progress an
*always-eventually*, stabilization an *eventually-always*.  This module
gives them a small declarative algebra evaluated over recorded state
sequences:

>>> prop = always(atom("unison", lambda s: clock_unison_invariant(s, 4)))
>>> verdict = prop.evaluate(states)

Finite-trace semantics are three-valued: a property is SATISFIED,
VIOLATED, or PENDING (e.g. an ``eventually`` whose witness has not
appeared *yet* -- the run simply ended first).  Tests assert SATISFIED
or, when a run is cut off mid-obligation, at least not-VIOLATED.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.gc.state import State

Predicate = Callable[[State], bool]


class Verdict(enum.Enum):
    SATISFIED = "satisfied"
    VIOLATED = "violated"
    PENDING = "pending"  # ran out of trace with open obligations

    def __bool__(self) -> bool:
        return self is Verdict.SATISFIED


@dataclass(frozen=True)
class Result:
    """Verdict plus the index where it was decided (-1: end of trace)."""

    verdict: Verdict
    at: int = -1

    def __bool__(self) -> bool:
        return bool(self.verdict)


class Property:
    """Base class; subclasses implement ``evaluate``."""

    def evaluate(self, states: Sequence[State]) -> Result:
        raise NotImplementedError

    def __and__(self, other: "Property") -> "Property":
        return _All((self, other))

    def __or__(self, other: "Property") -> "Property":
        return _Any((self, other))


@dataclass(frozen=True)
class atom(Property):
    """A named state predicate, evaluated at the first state."""

    name: str
    predicate: Predicate

    def evaluate(self, states):
        if not states:
            return Result(Verdict.PENDING)
        ok = bool(self.predicate(states[0]))
        return Result(Verdict.SATISFIED if ok else Verdict.VIOLATED, 0)

    def holds(self, state: State) -> bool:
        return bool(self.predicate(state))


@dataclass(frozen=True)
class always(Property):
    """``[] p``: the predicate holds at every state of the trace."""

    inner: atom

    def evaluate(self, states):
        for i, state in enumerate(states):
            if not self.inner.holds(state):
                return Result(Verdict.VIOLATED, i)
        return Result(Verdict.SATISFIED)


@dataclass(frozen=True)
class eventually(Property):
    """``<> p``: the predicate holds at some state of the trace."""

    inner: atom

    def evaluate(self, states):
        for i, state in enumerate(states):
            if self.inner.holds(state):
                return Result(Verdict.SATISFIED, i)
        return Result(Verdict.PENDING)


@dataclass(frozen=True)
class eventually_always(Property):
    """``<>[] p``: from some point on, the predicate holds forever
    (the shape of stabilization: convergence then closure)."""

    inner: atom

    def evaluate(self, states):
        # Find the last violation; satisfied if anything follows it.
        last_bad = -1
        for i, state in enumerate(states):
            if not self.inner.holds(state):
                last_bad = i
        if last_bad == len(states) - 1:
            return Result(Verdict.PENDING, last_bad)
        return Result(Verdict.SATISFIED, last_bad + 1)


@dataclass(frozen=True)
class until(Property):
    """``p U q``: p holds at every state strictly before the first q
    (and q must appear)."""

    first: atom
    second: atom

    def evaluate(self, states):
        for i, state in enumerate(states):
            if self.second.holds(state):
                return Result(Verdict.SATISFIED, i)
            if not self.first.holds(state):
                return Result(Verdict.VIOLATED, i)
        return Result(Verdict.PENDING)


@dataclass(frozen=True)
class leads_to(Property):
    """``p ~> q``: every p-state is followed (weakly) by a q-state.

    A trailing p with no q yet is PENDING, not VIOLATED.
    """

    trigger: atom
    goal: atom

    def evaluate(self, states):
        open_since: int | None = None
        for i, state in enumerate(states):
            if open_since is None:
                if self.trigger.holds(state):
                    open_since = i
            if open_since is not None and self.goal.holds(state):
                open_since = None
        if open_since is not None:
            return Result(Verdict.PENDING, open_since)
        return Result(Verdict.SATISFIED)


@dataclass(frozen=True)
class _All(Property):
    parts: tuple

    def evaluate(self, states):
        worst = Result(Verdict.SATISFIED)
        for part in self.parts:
            result = part.evaluate(states)
            if result.verdict is Verdict.VIOLATED:
                return result
            if result.verdict is Verdict.PENDING:
                worst = result
        return worst


@dataclass(frozen=True)
class _Any(Property):
    parts: tuple

    def evaluate(self, states):
        best = None
        for part in self.parts:
            result = part.evaluate(states)
            if result.verdict is Verdict.SATISFIED:
                return result
            if best is None or result.verdict is Verdict.PENDING:
                best = result
        return best if best is not None else Result(Verdict.PENDING)


# ----------------------------------------------------------------------
# Collecting state sequences from runs
# ----------------------------------------------------------------------
def record_run(
    program,
    daemon=None,
    state: State | None = None,
    steps: int = 1000,
    injector=None,
) -> list[State]:
    """Run a program and return the visited state sequence (snapshots),
    including the initial state."""
    from repro.gc.scheduler import RoundRobinDaemon
    from repro.gc.simulator import Simulator

    current = state.snapshot() if state is not None else program.initial_state()
    states: list[State] = [current.snapshot()]
    sim = Simulator(
        program,
        daemon or RoundRobinDaemon(),
        injector=injector,
        record_trace=False,
    )
    sim.run(
        current,
        max_steps=steps,
        observer=lambda s, _step: states.append(s.snapshot()),
    )
    return states
