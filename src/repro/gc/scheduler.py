"""Daemons (schedulers) for guarded-command programs.

The paper's computations are *fair interleavings*: in every step some
enabled action executes, and every continuously-enabled action eventually
executes.  Its performance study instead uses *maximal parallel
semantics*: "in each step every process executes one of its enabled
actions unless all its actions are disabled".

Three daemons are provided:

* :class:`RoundRobinDaemon` -- deterministic, trivially fair; good for
  reproducible tests.
* :class:`RandomFairDaemon` -- picks uniformly among all enabled actions;
  fair with probability 1, exercises adversarial-ish interleavings.
* :class:`MaximalParallelDaemon` -- synchronous semantics for the
  performance experiments; all guards/statements evaluate against the
  pre-step snapshot, then all updates apply at once (race free because
  statements only write the owner's variables).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol

import numpy as np

from repro.gc.actions import Action, apply_updates
from repro.gc.program import Program
from repro.gc.state import State
from repro.obs.tracer import ensure_tracer


class Daemon(Protocol):
    """One scheduling step: pick and execute actions, report what fired."""

    def step(
        self, program: Program, state: State
    ) -> list[tuple[Action, list[tuple[str, Any]]]]:
        """Execute one step in place; return ``(action, updates)`` pairs.

        An empty list means no action was enabled (the program is silent
        in this state).
        """
        ...


def _make_rng(seed: Any) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RoundRobinDaemon:
    """Cycle through processes; at each visit execute the first enabled
    action of that process (actions are tried in declaration order).

    Every continuously-enabled action is executed within ``nprocs`` visits
    of its process (earlier-declared actions may shadow later ones, so
    programs relying on intra-process fairness should order actions so the
    paper's intended priority holds -- all paper programs have mutually
    exclusive guards per process, making this moot).
    """

    def __init__(self, start: int = 0, tracer: Any = None) -> None:
        self._next = start
        self.tracer = ensure_tracer(tracer)

    def step(self, program, state):
        n = program.nprocs
        for offset in range(n):
            pid = (self._next + offset) % n
            for action in program.processes[pid].actions:
                if action.enabled(state):
                    ups = action.execute(state)
                    self._next = (pid + 1) % n
                    if self.tracer.enabled:
                        self.tracer.incr("gc.daemon_steps")
                        self.tracer.incr("gc.actions_fired")
                    return [(action, ups)]
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
        return []


class RandomFairDaemon:
    """Pick uniformly at random among all enabled actions."""

    def __init__(self, seed: Any = None, tracer: Any = None) -> None:
        self.rng = _make_rng(seed)
        self.tracer = ensure_tracer(tracer)

    def step(self, program, state):
        enabled: list[Action] = [
            a for a in program.actions() if a.enabled(state, self.rng)
        ]
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
            self.tracer.incr("gc.enabled_actions", len(enabled))
        if not enabled:
            return []
        action = enabled[int(self.rng.integers(0, len(enabled)))]
        ups = action.execute(state, self.rng)
        if self.tracer.enabled:
            self.tracer.incr("gc.actions_fired")
        return [(action, ups)]


class MaximalParallelDaemon:
    """Synchronous maximal parallelism (the paper's Section 6 semantics).

    Per step: snapshot the state; for every process with at least one
    enabled action (w.r.t. the snapshot) select one (first-enabled, or
    uniformly when ``random_choice``); evaluate every selected statement
    against the snapshot; apply all updates to the live state.
    """

    def __init__(
        self, seed: Any = None, random_choice: bool = False, tracer: Any = None
    ) -> None:
        self.rng = _make_rng(seed)
        self.random_choice = random_choice
        self.tracer = ensure_tracer(tracer)

    def select(self, program: Program, snapshot: State) -> list[Action]:
        chosen: list[Action] = []
        for proc in program.processes:
            enabled = [a for a in proc.actions if a.enabled(snapshot, self.rng)]
            if not enabled:
                continue
            if self.random_choice and len(enabled) > 1:
                chosen.append(enabled[int(self.rng.integers(0, len(enabled)))])
            else:
                chosen.append(enabled[0])
        return chosen

    def step(self, program, state):
        snapshot = state.snapshot()
        chosen = self.select(program, snapshot)
        fired: list[tuple[Action, list[tuple[str, Any]]]] = []
        for action in chosen:
            ups = action.updates(snapshot, self.rng)
            fired.append((action, ups))
        for action, ups in fired:
            apply_updates(state, action.pid, ups)
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
            self.tracer.incr("gc.actions_fired", len(fired))
        return fired


def enabled_actions(program: Program, state: State) -> list[Action]:
    """All enabled actions of ``program`` in ``state`` (helper for the
    explorer and for tests)."""
    return [a for a in program.actions() if a.enabled(state)]


def is_silent(program: Program, state: State) -> bool:
    """True iff no action is enabled (a fixpoint under any daemon)."""
    return not any(a.enabled(state) for a in program.actions())
