"""Daemons (schedulers) for guarded-command programs.

The paper's computations are *fair interleavings*: in every step some
enabled action executes, and every continuously-enabled action eventually
executes.  Its performance study instead uses *maximal parallel
semantics*: "in each step every process executes one of its enabled
actions unless all its actions are disabled".

Three daemons are provided:

* :class:`RoundRobinDaemon` -- deterministic, trivially fair; good for
  reproducible tests.
* :class:`RandomFairDaemon` -- picks uniformly among all enabled actions;
  fair with probability 1, exercises adversarial-ish interleavings.
* :class:`MaximalParallelDaemon` -- synchronous semantics for the
  performance experiments; all guards/statements evaluate against the
  pre-step snapshot, then all updates apply at once (race free because
  statements only write the owner's variables).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol

import numpy as np

from repro.gc.actions import Action, apply_updates
from repro.gc.compile import CompiledProgram
from repro.gc.incremental import EnabledIndex
from repro.gc.program import Program
from repro.gc.state import State
from repro.obs.tracer import ensure_tracer


#: Round-robin adaptation: engage the incremental index once the scan
#: averages this many guard evaluations per step, judged after this many
#: steps.  Break-even is ~2-3 evaluations (the index costs roughly that
#: much bookkeeping per step); 4 keeps a safety margin.
ROUND_ROBIN_ADAPT_THRESHOLD = 4.0
ROUND_ROBIN_ADAPT_WINDOW = 64


class Daemon(Protocol):
    """One scheduling step: pick and execute actions, report what fired."""

    def step(
        self, program: Program, state: State
    ) -> list[tuple[Action, list[tuple[str, Any]]]]:
        """Execute one step in place; return ``(action, updates)`` pairs.

        An empty list means no action was enabled (the program is silent
        in this state).
        """
        ...


def _make_rng(seed: Any) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


#: Valid values for the daemons' ``backend`` parameter.
BACKENDS = ("interpreter", "compiled")


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


class _IncrementalMixin:
    """Shared cache management for the incremental daemons.

    A daemon holds one :class:`EnabledIndex` per program; stepping a
    different program rebuilds it.  ``incremental=False`` (or a program
    with no declared read-sets) falls back to the historical
    evaluate-every-guard behaviour, which is always correct.

    ``backend="compiled"`` swaps the whole step path for a
    :class:`~repro.gc.compile.CompiledProgram` (memoized guards and
    effects over an array mirror); selection order, RNG usage and hence
    traces are identical to the interpreter.
    """

    incremental: bool
    backend: str = "interpreter"
    _index: EnabledIndex | None = None
    _compiled: CompiledProgram | None = None

    def _index_for(self, program: Program) -> EnabledIndex | None:
        if not self.incremental:
            return None
        index = self._index
        if index is None or index.program is not program:
            index = EnabledIndex(program)
            self._index = index
        return index if index.has_tracked else None

    def _compiled_for(self, program: Program) -> CompiledProgram:
        compiled = self._compiled
        if compiled is None or compiled.program is not program:
            compiled = CompiledProgram(program)
            self._compiled = compiled
        return compiled


class RoundRobinDaemon(_IncrementalMixin):
    """Cycle through processes; at each visit execute the first enabled
    action of that process (actions are tried in declaration order).

    Every continuously-enabled action is executed within ``nprocs`` visits
    of its process (earlier-declared actions may shadow later ones, so
    programs relying on intra-process fairness should order actions so the
    paper's intended priority holds -- all paper programs have mutually
    exclusive guards per process, making this moot).

    With ``incremental`` (the default) the daemon is *adaptive*: it
    starts with the plain scan while counting guard evaluations for
    :data:`ROUND_ROBIN_ADAPT_WINDOW` steps, then decides once -- engage
    an :class:`EnabledIndex` (lazy dirty-set invalidation) if the
    average scan length crossed :data:`ROUND_ROBIN_ADAPT_THRESHOLD`
    evaluations per step, or drop back to the plain scan for good (so
    the counting overhead is bounded by the window).  On programs where
    the token follows the scan order (RB on a ring: ~1 evaluation/step)
    the plain scan is already optimal and the cache would be pure
    overhead; on programs with many simultaneously-enabled actions per
    scan (MB: ~16 evaluations/step) the index wins severalfold.  The
    selected action -- and hence the trace -- is identical in every
    mode.
    """

    def __init__(
        self,
        start: int = 0,
        tracer: Any = None,
        incremental: bool = True,
        backend: str = "interpreter",
    ) -> None:
        self._next = start
        self.tracer = ensure_tracer(tracer)
        self.incremental = incremental
        self.backend = _check_backend(backend)
        self._engaged = False
        self._declined = False
        self._evals = 0
        self._steps = 0
        self._adapt_index: EnabledIndex | None = None

    def step(self, program, state):
        if self.backend == "compiled":
            return self._step_compiled(
                self._compiled_for(program), program, state
            )
        index = self._index_for(program) if self.incremental else None
        if index is not None:
            if index is not self._adapt_index:
                # New program (or first step): restart the adaptation.
                self._adapt_index = index
                self._engaged = False
                self._declined = False
                self._evals = 0
                self._steps = 0
            if self._engaged:
                return self._step_incremental(index, program, state)
            if not self._declined:
                return self._step_adapting(index, program, state)
        n = program.nprocs
        for offset in range(n):
            pid = (self._next + offset) % n
            for action in program.processes[pid].actions:
                if action.enabled(state):
                    ups = action.execute(state)
                    self._next = (pid + 1) % n
                    if self.tracer.enabled:
                        self.tracer.incr("gc.daemon_steps")
                        self.tracer.incr("gc.actions_fired")
                    return [(action, ups)]
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
        return []

    def _step_adapting(self, index: EnabledIndex, program, state):
        """The plain scan, plus the evaluation counting that decides
        when to engage the incremental index."""
        n = program.nprocs
        evals = 0
        fired = None
        for offset in range(n):
            pid = (self._next + offset) % n
            for action in program.processes[pid].actions:
                evals += 1
                if action.enabled(state):
                    ups = action.execute(state)
                    self._next = (pid + 1) % n
                    fired = [(action, ups)]
                    break
            if fired is not None:
                break
        self._evals += evals
        self._steps += 1
        if self._steps >= ROUND_ROBIN_ADAPT_WINDOW:
            # One-shot decision: either the index pays for itself or the
            # plain scan resumes with zero counting overhead.
            if self._evals >= ROUND_ROBIN_ADAPT_THRESHOLD * self._steps:
                self._engaged = True
            else:
                self._declined = True
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
            if fired is not None:
                self.tracer.incr("gc.actions_fired")
        return fired if fired is not None else []

    def _step_compiled(self, compiled: CompiledProgram, program, state):
        """Same scan, same selection -- flags pulled lazily from the
        compiled engine's memoized guards."""
        compiled.mark_stale(state)
        n = program.nprocs
        actions = compiled.actions
        by_pid = compiled.by_pid
        for offset in range(n):
            pid = (self._next + offset) % n
            for idx in by_pid[pid]:
                if compiled.is_enabled(idx, state):
                    ups = compiled.execute(idx, state)
                    self._next = (pid + 1) % n
                    if self.tracer.enabled:
                        self.tracer.incr("gc.daemon_steps")
                        self.tracer.incr("gc.actions_fired")
                    return [(actions[idx], ups)]
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
        return []

    def _step_incremental(self, index: EnabledIndex, program, state):
        index.mark_stale(state)
        n = program.nprocs
        actions = index.actions
        by_pid = index.by_pid
        for offset in range(n):
            pid = (self._next + offset) % n
            for idx in by_pid[pid]:
                if index.is_enabled(idx, state):
                    action = actions[idx]
                    ups = action.execute(state)
                    index.note_fire(idx, ups)
                    index.commit(state)
                    self._next = (pid + 1) % n
                    if self.tracer.enabled:
                        self.tracer.incr("gc.daemon_steps")
                        self.tracer.incr("gc.actions_fired")
                    return [(action, ups)]
        index.commit(state)
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
        return []


class RandomFairDaemon(_IncrementalMixin):
    """Pick uniformly at random among all enabled actions.

    Incremental mode (default) yields the exact same action sequence as
    full evaluation for any program whose declared guards honour the
    purity contract: the enabled *set* is identical, and declared guards
    never draw from the RNG, so the random-choice stream is unchanged.
    """

    def __init__(
        self,
        seed: Any = None,
        tracer: Any = None,
        incremental: bool = True,
        backend: str = "interpreter",
    ) -> None:
        self.rng = _make_rng(seed)
        self.tracer = ensure_tracer(tracer)
        self.incremental = incremental
        self.backend = _check_backend(backend)

    def _step_compiled(self, compiled: CompiledProgram, state):
        compiled.refresh(state, self.rng)
        slots = compiled.enabled_slots()
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
            self.tracer.incr("gc.enabled_actions", len(slots))
        if not slots:
            return []
        idx = slots[int(self.rng.integers(0, len(slots)))]
        ups = compiled.execute(idx, state, self.rng)
        if self.tracer.enabled:
            self.tracer.incr("gc.actions_fired")
        return [(compiled.actions[idx], ups)]

    def step(self, program, state):
        if self.backend == "compiled":
            return self._step_compiled(self._compiled_for(program), state)
        index = self._index_for(program)
        slots: list[int] | None = None
        if index is not None:
            index.refresh(state, self.rng)
            slots = index.enabled_slots()
            actions = index.actions
            enabled = [actions[i] for i in slots]
        else:
            enabled = [a for a in program.actions() if a.enabled(state, self.rng)]
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
            self.tracer.incr("gc.enabled_actions", len(enabled))
        if not enabled:
            if index is not None:
                index.commit(state)
            return []
        pick = int(self.rng.integers(0, len(enabled)))
        action = enabled[pick]
        ups = action.execute(state, self.rng)
        if index is not None:
            index.note_fire(slots[pick], ups)
            index.commit(state)
        if self.tracer.enabled:
            self.tracer.incr("gc.actions_fired")
        return [(action, ups)]


class MaximalParallelDaemon(_IncrementalMixin):
    """Synchronous maximal parallelism (the paper's Section 6 semantics).

    Per step: snapshot the state; for every process with at least one
    enabled action (w.r.t. the snapshot) select one (first-enabled, or
    uniformly when ``random_choice``); evaluate every selected statement
    against the snapshot; apply all updates to the live state.

    Incremental mode evaluates the stale guards against the live
    pre-step state (identical to the snapshot at that point) and reuses
    cached flags for the rest; selection and statement evaluation are
    unchanged, so traces match full evaluation exactly.
    """

    def __init__(
        self,
        seed: Any = None,
        random_choice: bool = False,
        tracer: Any = None,
        incremental: bool = True,
        backend: str = "interpreter",
    ) -> None:
        self.rng = _make_rng(seed)
        self.random_choice = random_choice
        self.tracer = ensure_tracer(tracer)
        self.incremental = incremental
        self.backend = _check_backend(backend)

    def select(self, program: Program, snapshot: State) -> list[Action]:
        chosen: list[Action] = []
        for proc in program.processes:
            enabled = [a for a in proc.actions if a.enabled(snapshot, self.rng)]
            if not enabled:
                continue
            if self.random_choice and len(enabled) > 1:
                chosen.append(enabled[int(self.rng.integers(0, len(enabled)))])
            else:
                chosen.append(enabled[0])
        return chosen

    def _select_incremental(
        self, index: EnabledIndex, state: State
    ) -> list[int]:
        index.refresh(state, self.rng)
        pid_of = index.pid_of
        chosen: list[int] = []
        # Enabled slots are sorted and actions are grouped by pid in
        # declaration order, so consecutive runs of equal pid reproduce
        # the per-process iteration of :meth:`select` exactly.
        group: list[int] = []
        cur_pid = -1
        for i in index.enabled_slots():
            pid = pid_of[i]
            if pid != cur_pid:
                if group:
                    chosen.append(self._pick_idx(group))
                group = []
                cur_pid = pid
            group.append(i)
        if group:
            chosen.append(self._pick_idx(group))
        return chosen

    def _step_compiled(self, compiled: CompiledProgram, state):
        """One synchronous round: select per process, evaluate every
        chosen statement against the pre-apply state, then apply --
        the same phase order (and RNG order) as the interpreter.
        Delegated to the engine's round memo, which replays whole
        draw-free rounds off one dict lookup."""
        actions = compiled.actions
        fired = [
            (actions[i], ups)
            for i, ups in compiled.step_round(
                state, self.rng, self.random_choice
            )
        ]
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
            self.tracer.incr("gc.actions_fired", len(fired))
        return fired

    def _pick_idx(self, group: list[int]) -> int:
        if self.random_choice and len(group) > 1:
            return group[int(self.rng.integers(0, len(group)))]
        return group[0]

    def step(self, program, state):
        if self.backend == "compiled":
            return self._step_compiled(self._compiled_for(program), state)
        index = self._index_for(program)
        if index is not None:
            chosen_idx = self._select_incremental(index, state)
            snapshot = state.snapshot() if chosen_idx else state
            chosen = [index.actions[i] for i in chosen_idx]
        else:
            snapshot = state.snapshot()
            chosen_idx = []
            chosen = self.select(program, snapshot)
        fired: list[tuple[Action, list[tuple[str, Any]]]] = []
        for action in chosen:
            ups = action.updates(snapshot, self.rng)
            fired.append((action, ups))
        for pos, (action, ups) in enumerate(fired):
            apply_updates(state, action.pid, ups)
            if index is not None:
                index.note_fire(chosen_idx[pos], ups)
        if index is not None:
            index.commit(state)
        if self.tracer.enabled:
            self.tracer.incr("gc.daemon_steps")
            self.tracer.incr("gc.actions_fired", len(fired))
        return fired


def enabled_actions(program: Program, state: State) -> list[Action]:
    """All enabled actions of ``program`` in ``state`` (helper for the
    explorer and for tests)."""
    return [a for a in program.actions() if a.enabled(state)]


def is_silent(program: Program, state: State) -> bool:
    """True iff no action is enabled (a fixpoint under any daemon)."""
    return not any(a.enabled(state) for a in program.actions())
