"""Processes and programs.

A :class:`Program` bundles variable declarations (shared by all
processes), the per-process action lists, and an initial-state factory.
Programs compose by *superposition* (Section 4.1 superposes the barrier
variables ``cp``/``ph`` on the token-ring program): the superposed program
has the union of the variables and merged actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.gc.actions import Action
from repro.gc.domains import Domain, check_value
from repro.gc.state import State


@dataclass(frozen=True)
class VariableDecl:
    """Declaration of one per-process variable."""

    name: str
    domain: Domain
    default: Any

    def __post_init__(self) -> None:
        check_value(self.domain, self.name, self.default)


@dataclass(frozen=True)
class Process:
    """A process: a pid plus its actions (guards may read any process)."""

    pid: int
    actions: tuple[Action, ...]

    def __post_init__(self) -> None:
        for action in self.actions:
            if action.pid != self.pid:
                raise ValueError(
                    f"action {action.name!r} owned by {action.pid}, "
                    f"attached to process {self.pid}"
                )

    def enabled_actions(self, state: State, rng: Any = None) -> list[Action]:
        return [a for a in self.actions if a.enabled(state, rng)]


class Program:
    """A guarded-command program over ``nprocs`` processes."""

    def __init__(
        self,
        name: str,
        declarations: Sequence[VariableDecl],
        processes: Sequence[Process],
        initial_state: Callable[["Program"], State] | None = None,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.declarations: tuple[VariableDecl, ...] = tuple(declarations)
        names = [d.name for d in self.declarations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable declarations in {name!r}")
        self.processes: tuple[Process, ...] = tuple(processes)
        pids = [p.pid for p in self.processes]
        if pids != list(range(len(pids))):
            raise ValueError("processes must be numbered 0..N in order")
        self._initial_state = initial_state
        self.metadata: dict[str, Any] = dict(metadata or {})

    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return len(self.processes)

    @property
    def domains(self) -> dict[str, Domain]:
        return {d.name: d.domain for d in self.declarations}

    def actions(self) -> Iterable[Action]:
        for proc in self.processes:
            yield from proc.actions

    def action_named(self, name: str, pid: int) -> Action:
        for action in self.processes[pid].actions:
            if action.name == name:
                return action
        raise KeyError(f"no action {name!r} at process {pid}")

    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        """Build a fresh initial state (a paper 'start state')."""
        if self._initial_state is not None:
            return self._initial_state(self)
        return State.uniform(self)

    def validate_state(self, state: State) -> None:
        """Check every value in ``state`` against its declared domain."""
        for decl in self.declarations:
            for pid in range(self.nprocs):
                check_value(decl.domain, decl.name, state.get(decl.name, pid))

    def arbitrary_state(self, rng: Any) -> State:
        """A uniformly random state over the declared domains.

        This is exactly the paper's undetectable-fault perturbation applied
        to every process: each variable gets ``?`` from its domain.
        """
        vectors = {
            decl.name: [decl.domain.sample(rng) for _ in range(self.nprocs)]
            for decl in self.declarations
        }
        return State(vectors, self.nprocs)

    # ------------------------------------------------------------------
    def superpose(
        self,
        name: str,
        extra_declarations: Sequence[VariableDecl],
        merge: Callable[[int, tuple[Action, ...]], Sequence[Action]],
        initial_state: Callable[["Program"], State] | None = None,
    ) -> "Program":
        """Superpose new variables/behaviour on this program.

        ``merge`` receives each pid and the underlying actions of that
        process, and returns the superposed action list (typically the
        underlying actions with statements extended in parallel, as in the
        paper's "executes the following statement in parallel with that of
        T1").
        """
        decls = list(self.declarations) + list(extra_declarations)
        processes = [
            Process(p.pid, tuple(merge(p.pid, p.actions))) for p in self.processes
        ]
        return Program(name, decls, processes, initial_state, dict(self.metadata))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Program({self.name!r}, nprocs={self.nprocs}, "
            f"vars={[d.name for d in self.declarations]})"
        )


def parallel(*statements: Callable) -> Callable:
    """Combine statements executed 'in parallel' (same pre-state).

    Each sub-statement sees the same view; their update lists concatenate.
    Later writes to the same variable win, mirroring sequential composition
    inside a single atomic action.
    """

    def combined(view):
        updates: list[tuple[str, Any]] = []
        for stmt in statements:
            result = stmt(view)
            if result:
                updates.extend(result)
        return updates

    return combined
