"""A parser/compiler for the paper's guarded-command notation.

SIEFAST "allows the modeling of a program ... in the guarded command
notation discussed in Section 2 ... it uses the exact program discussed
in this paper, and requires no further translation into another
language".  This module gives the reproduction the same property: the
paper's programs can be written as text and compiled into executable
:class:`~repro.gc.program.Program` objects.  The test-suite verifies the
compiled CB and token-ring programs are transition-for-transition
equivalent to the hand-built ones.

Grammar (ASCII rendering of the paper's notation)::

    program   := "program" NAME header* (action | fault)*
    header    := "param" NAME
               | "var" NAME ":" domain "=" expr
    fault     := "fault" NAME "::" assignments   -- RHS may be "?"
                 (the paper's nondeterministic value; such variables
                 become the FaultSpec's randomized set)
    domain    := "enum" "(" NAME ("," NAME)* ")"
               | "int" "[" expr "," expr "]"
               | "seq" "(" expr ")"          -- {0..K-1} + {BOT, TOP}
    action    := "action" NAME site? "::" expr "->" stmts
    site      := "[" ("j" ("="|"!=") ("0"|"N")) "]"
    stmts     := stmt (";" stmt)*
    stmt      := varref ":=" expr
               | "if" expr "then" stmts
                 ("elif" expr "then" stmts)* ("else" stmts)? "fi"
               | "skip"
    expr      := disjunctions/conjunctions/not over comparisons
                 (= != < <= > >=) over + - % arithmetic; atoms are
                 numbers, BOT, TOP, true, false, params, enum literals,
                 variable references, "(" expr ")",
                 "(" ("forall"|"exists") NAME ":" expr ")",
                 "any" NAME ":" expr ":" expr ("default" expr)?
    varref    := NAME "." ("j" | "N" | NUMBER | quantified-NAME
               | "(" "j" ("+"|"-") NUMBER ")")

Process indices are modulo the process count; ``N`` denotes the last
process (the paper's ring is 0..N, i.e. ``nprocs = N + 1``).  The
``any`` operator returns the value at some process satisfying the
condition; if none exists it evaluates its ``default`` expression
(the paper's where-clause: "an arbitrary number ... otherwise").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.gc.actions import Action, StateView
from repro.gc.domains import BOT, TOP, EnumDomain, IntRange, SequenceNumberDomain
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State


class NotationError(ValueError):
    """Lexing/parsing/compilation error with position information."""


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<arrow>->)
  | (?P<assign>:=)
  | (?P<dcolon>::)
  | (?P<op><=|>=|!=|[=<>+\-%;:,.()\[\]?])
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "program",
    "param",
    "var",
    "action",
    "fault",
    "enum",
    "int",
    "seq",
    "if",
    "then",
    "elif",
    "else",
    "fi",
    "skip",
    "and",
    "or",
    "not",
    "forall",
    "exists",
    "any",
    "default",
    "true",
    "false",
    "BOT",
    "TOP",
}


@dataclass(frozen=True)
class Token:
    kind: str  # "op" | "num" | "name" | "kw" | "eof"
    text: str
    pos: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise NotationError(f"unexpected character {source[pos]!r} at {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        text = m.group()
        if m.lastgroup == "name" and text in _KEYWORDS:
            tokens.append(Token("kw", text, m.start()))
        elif m.lastgroup in ("arrow", "assign", "dcolon", "op"):
            tokens.append(Token("op", text, m.start()))
        else:
            tokens.append(Token(m.lastgroup, text, m.start()))
    tokens.append(Token("eof", "", len(source)))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Special:
    which: str  # "BOT" | "TOP"


@dataclass(frozen=True)
class Bool:
    value: bool


@dataclass(frozen=True)
class Name:
    ident: str  # param, enum literal, or quantified variable


@dataclass(frozen=True)
class VarRef:
    var: str
    index: Any  # "j" | "N" | Num | Name | ("j", offset)


@dataclass(frozen=True)
class BinOp:
    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class Not:
    operand: Any


@dataclass(frozen=True)
class Quantifier:
    kind: str  # "forall" | "exists"
    binder: str
    body: Any


@dataclass(frozen=True)
class AnyOf:
    binder: str
    condition: Any
    value: Any
    default: Any | None


@dataclass(frozen=True)
class Assign:
    target: VarRef
    value: Any


@dataclass(frozen=True)
class IfStmt:
    branches: tuple  # ((cond|None for else, stmts), ...)


@dataclass(frozen=True)
class Wildcard:
    """The paper's ``?``: a nondeterministically chosen in-domain value
    (legal only as a fault-assignment right-hand side)."""


@dataclass(frozen=True)
class ActionDef:
    name: str
    site: tuple[str, str] | None  # ("=", "0"/"N") or ("!=", ...)
    guard: Any
    statements: tuple


@dataclass(frozen=True)
class FaultDef:
    name: str
    assignments: tuple  # of Assign; RHS may be Wildcard


@dataclass(frozen=True)
class DomainDef:
    kind: str  # "enum" | "int" | "seq"
    args: tuple


@dataclass(frozen=True)
class VarDef:
    name: str
    domain: DomainDef
    initial: Any


@dataclass(frozen=True)
class ProgramDef:
    name: str
    params: tuple[str, ...]
    variables: tuple[VarDef, ...]
    actions: tuple[ActionDef, ...]
    faults: tuple = ()


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.i]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise NotationError(
                f"expected {want}, got {tok.kind} {tok.text!r} at {tok.pos}"
            )
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    # -- program --------------------------------------------------------
    def parse_program(self) -> ProgramDef:
        self.expect("kw", "program")
        name = self.expect("name").text
        params: list[str] = []
        variables: list[VarDef] = []
        actions: list[ActionDef] = []
        faults: list[FaultDef] = []
        while self.peek().kind != "eof":
            if self.accept("kw", "param"):
                params.append(self.expect("name").text)
            elif self.accept("kw", "var"):
                variables.append(self.parse_var())
            elif self.accept("kw", "action"):
                actions.append(self.parse_action())
            elif self.accept("kw", "fault"):
                faults.append(self.parse_fault())
            else:
                tok = self.peek()
                raise NotationError(
                    f"expected param/var/action/fault, got {tok.text!r} at {tok.pos}"
                )
        if not variables or not actions:
            raise NotationError("a program needs at least one var and action")
        return ProgramDef(
            name, tuple(params), tuple(variables), tuple(actions), tuple(faults)
        )

    def parse_fault(self) -> FaultDef:
        name = self.expect("name").text
        self.expect("op", "::")
        assigns: list[Assign] = []
        while True:
            target = self.parse_varref_or_name()
            if not isinstance(target, VarRef) or target.index != "j":
                raise NotationError(
                    "fault assignments must target the struck process's "
                    "own variables (x.j := ...)"
                )
            self.expect("op", ":=")
            if self.accept("op", "?"):
                value: Any = Wildcard()
            else:
                value = self.parse_expr()
            assigns.append(Assign(target, value))
            if not self.accept("op", ";"):
                break
        return FaultDef(name, tuple(assigns))

    def parse_var(self) -> VarDef:
        name = self.expect("name").text
        self.expect("op", ":")
        domain = self.parse_domain()
        self.expect("op", "=")
        initial = self.parse_expr()
        return VarDef(name, domain, initial)

    def parse_domain(self) -> DomainDef:
        tok = self.next()
        if tok.kind == "kw" and tok.text == "enum":
            self.expect("op", "(")
            members = [self.expect("name").text]
            while self.accept("op", ","):
                members.append(self.expect("name").text)
            self.expect("op", ")")
            return DomainDef("enum", tuple(members))
        if tok.kind == "kw" and tok.text == "int":
            self.expect("op", "[")
            lo = self.parse_expr()
            self.expect("op", ",")
            hi = self.parse_expr()
            self.expect("op", "]")
            return DomainDef("int", (lo, hi))
        if tok.kind == "kw" and tok.text == "seq":
            self.expect("op", "(")
            k = self.parse_expr()
            self.expect("op", ")")
            return DomainDef("seq", (k,))
        raise NotationError(f"unknown domain {tok.text!r} at {tok.pos}")

    def parse_action(self) -> ActionDef:
        name = self.expect("name").text
        site = None
        if self.accept("op", "["):
            self.expect("name", "j") if self.peek().kind == "name" else self.expect(
                "kw", "j"
            )
            op = self.next()
            if op.text not in ("=", "!="):
                raise NotationError(f"bad site operator {op.text!r} at {op.pos}")
            which = self.next()
            if which.text not in ("0", "N"):
                raise NotationError(
                    f"site must compare j with 0 or N, got {which.text!r}"
                )
            site = (op.text, which.text)
            self.expect("op", "]")
        self.expect("op", "::")
        guard = self.parse_expr()
        self.expect("op", "->")
        statements = self.parse_stmts()
        return ActionDef(name, site, guard, tuple(statements))

    # -- statements -----------------------------------------------------
    def parse_stmts(self) -> list:
        stmts = [self.parse_stmt()]
        while self.accept("op", ";"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self):
        if self.accept("kw", "skip"):
            return IfStmt(branches=())
        if self.accept("kw", "if"):
            branches = []
            cond = self.parse_expr()
            self.expect("kw", "then")
            branches.append((cond, tuple(self.parse_stmts())))
            while self.accept("kw", "elif"):
                cond = self.parse_expr()
                self.expect("kw", "then")
                branches.append((cond, tuple(self.parse_stmts())))
            if self.accept("kw", "else"):
                branches.append((None, tuple(self.parse_stmts())))
            self.expect("kw", "fi")
            return IfStmt(branches=tuple(branches))
        target = self.parse_varref_or_name()
        if not isinstance(target, VarRef):
            raise NotationError("assignment target must be a variable reference")
        self.expect("op", ":=")
        value = self.parse_expr()
        return Assign(target, value)

    # -- expressions ----------------------------------------------------
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        node = self.parse_and()
        while self.accept("kw", "or"):
            node = BinOp("or", node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_not()
        while self.accept("kw", "and"):
            node = BinOp("and", node, self.parse_not())
        return node

    def parse_not(self):
        if self.accept("kw", "not"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        node = self.parse_arith()
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("=", "!=", "<", "<=", ">", ">="):
            self.next()
            node = BinOp(tok.text, node, self.parse_arith())
        return node

    def parse_arith(self):
        node = self.parse_term()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ("+", "-"):
                self.next()
                node = BinOp(tok.text, node, self.parse_term())
            else:
                return node

    def parse_term(self):
        node = self.parse_factor()
        while self.accept("op", "%"):
            node = BinOp("%", node, self.parse_factor())
        return node

    def parse_factor(self):
        tok = self.peek()
        if tok.kind == "kw" and tok.text == "not":
            # ``not`` binds tightest when it appears inside arithmetic
            # (the printer always parenthesizes its operand).
            self.next()
            return Not(self.parse_factor())
        if tok.kind == "num":
            self.next()
            return Num(int(tok.text))
        if tok.kind == "kw" and tok.text in ("BOT", "TOP"):
            self.next()
            return Special(tok.text)
        if tok.kind == "kw" and tok.text in ("true", "false"):
            self.next()
            return Bool(tok.text == "true")
        if tok.kind == "kw" and tok.text == "any":
            self.next()
            binder = self.expect("name").text
            self.expect("op", ":")
            condition = self.parse_expr()
            self.expect("op", ":")
            value = self.parse_expr()
            default = None
            if self.accept("kw", "default"):
                default = self.parse_expr()
            return AnyOf(binder, condition, value, default)
        if tok.kind == "op" and tok.text == "(":
            self.next()
            inner = self.peek()
            if inner.kind == "kw" and inner.text in ("forall", "exists"):
                self.next()
                binder = self.expect("name").text
                self.expect("op", ":")
                body = self.parse_expr()
                self.expect("op", ")")
                return Quantifier(inner.text, binder, body)
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        if tok.kind == "name":
            return self.parse_varref_or_name()
        raise NotationError(f"unexpected token {tok.text!r} at {tok.pos}")

    def parse_varref_or_name(self):
        name = self.expect("name").text
        if not self.accept("op", "."):
            return Name(name)
        tok = self.next()
        if tok.kind == "name" and tok.text == "j":
            return VarRef(name, "j")
        if tok.kind == "name" and tok.text == "N":
            return VarRef(name, "N")
        if tok.kind == "name":
            return VarRef(name, Name(tok.text))
        if tok.kind == "num":
            return VarRef(name, Num(int(tok.text)))
        if tok.kind == "op" and tok.text == "(":
            self.expect("name", "j")
            sign = self.next()
            if sign.text not in ("+", "-"):
                raise NotationError(f"expected +/- in index at {sign.pos}")
            off = int(self.expect("num").text)
            self.expect("op", ")")
            return VarRef(name, ("j", off if sign.text == "+" else -off))
        raise NotationError(f"bad variable index at {tok.pos}")


def parse(source: str) -> ProgramDef:
    """Parse a guarded-command program text into its AST."""
    return _Parser(tokenize(source)).parse_program()


# ----------------------------------------------------------------------
# Pretty-printer (the inverse of parse, up to formatting)
# ----------------------------------------------------------------------
def _unparse_index(index: Any) -> str:
    if index == "j":
        return "j"
    if index == "N":
        return "N"
    if isinstance(index, Num):
        return str(index.value)
    if isinstance(index, Name):
        return index.ident
    if isinstance(index, tuple) and index[0] == "j":
        off = index[1]
        return f"(j + {off})" if off >= 0 else f"(j - {-off})"
    raise NotationError(f"cannot unparse index {index!r}")


def unparse_expr(node: Any) -> str:
    """Render an expression AST back to notation text.

    Conservatively fully parenthesized, so ``parse(unparse(e))`` is
    structurally identical to ``e``.
    """
    if isinstance(node, Num):
        return str(node.value)
    if isinstance(node, Special):
        return node.which
    if isinstance(node, Bool):
        return "true" if node.value else "false"
    if isinstance(node, Name):
        return node.ident
    if isinstance(node, VarRef):
        return f"{node.var}.{_unparse_index(node.index)}"
    if isinstance(node, Not):
        # Fully parenthesized: the boolean-level ``not`` binds looser
        # than arithmetic, so a bare ``not x + y`` would re-associate.
        return f"(not {unparse_expr(node.operand)})"
    if isinstance(node, BinOp):
        return f"({unparse_expr(node.left)} {node.op} {unparse_expr(node.right)})"
    if isinstance(node, Quantifier):
        return f"({node.kind} {node.binder} : {unparse_expr(node.body)})"
    if isinstance(node, AnyOf):
        # Parenthesized: a bare ``any`` as a binop operand would swallow
        # the rest of the enclosing expression into its value/default.
        text = (
            f"(any {node.binder} : {unparse_expr(node.condition)} : "
            f"{unparse_expr(node.value)}"
        )
        if node.default is not None:
            text += f" default {unparse_expr(node.default)}"
        return text + ")"
    raise NotationError(f"cannot unparse {node!r}")


def _unparse_stmts(stmts: tuple, indent: str) -> str:
    rendered = []
    for stmt in stmts:
        if isinstance(stmt, Assign):
            rendered.append(
                f"{indent}{stmt.target.var}.{_unparse_index(stmt.target.index)}"
                f" := {unparse_expr(stmt.value)}"
            )
        elif isinstance(stmt, IfStmt):
            if not stmt.branches:
                rendered.append(f"{indent}skip")
                continue
            parts = []
            for i, (cond, body) in enumerate(stmt.branches):
                if cond is None:
                    head = f"{indent}else"
                elif i == 0:
                    head = f"{indent}if {unparse_expr(cond)} then"
                else:
                    head = f"{indent}elif {unparse_expr(cond)} then"
                parts.append(head + "\n" + _unparse_stmts(body, indent + "    "))
            parts.append(f"{indent}fi")
            rendered.append("\n".join(parts))
        else:
            raise NotationError(f"cannot unparse statement {stmt!r}")
    return ";\n".join(rendered)


def unparse(pdef: ProgramDef) -> str:
    """Render a program AST back to notation text (parse-stable)."""
    lines = [f"program {pdef.name}"]
    for param in pdef.params:
        lines.append(f"param {param}")
    for vdef in pdef.variables:
        if vdef.domain.kind == "enum":
            dom = "enum(" + ", ".join(vdef.domain.args) + ")"
        elif vdef.domain.kind == "int":
            dom = (
                f"int[{unparse_expr(vdef.domain.args[0])}, "
                f"{unparse_expr(vdef.domain.args[1])}]"
            )
        else:
            dom = f"seq({unparse_expr(vdef.domain.args[0])})"
        lines.append(f"var {vdef.name} : {dom} = {unparse_expr(vdef.initial)}")
    for adef in pdef.actions:
        site = ""
        if adef.site is not None:
            site = f" [j {adef.site[0]} {adef.site[1]}]"
        lines.append("")
        lines.append(f"action {adef.name}{site} :: {unparse_expr(adef.guard)} ->")
        lines.append(_unparse_stmts(adef.statements, "    "))
    for fdef in pdef.faults:
        rendered = "; ".join(
            f"{a.target.var}.j := "
            + ("?" if isinstance(a.value, Wildcard) else unparse_expr(a.value))
            for a in fdef.assignments
        )
        lines.append("")
        lines.append(f"fault {fdef.name} :: {rendered}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Fault compilation
# ----------------------------------------------------------------------
def compile_fault_specs(
    source: str | ProgramDef,
    nprocs: int = 2,
    params: dict[str, int] | None = None,
    literal_values: dict[str, Any] | None = None,
) -> dict:
    """Compile a program text's ``fault`` declarations into
    :class:`~repro.gc.faults.FaultSpec` objects keyed by name.

    ``?`` right-hand sides become the spec's randomized variables (the
    paper's nondeterministic fault value); constant right-hand sides
    become resets.  A spec is detectable iff it resets at least one
    variable (the reset marker is how the fault is detected).
    """
    from repro.gc.faults import FaultSpec

    pdef = parse(source) if isinstance(source, str) else source
    params = dict(params or {})
    params.setdefault("N", nprocs - 1)
    literals: dict[str, Any] = {}
    provided = dict(literal_values or {})
    for vdef in pdef.variables:
        if vdef.domain.kind == "enum":
            for member in vdef.domain.args:
                literals.setdefault(member, provided.get(member, member))
    env = _Env(params=params, literals=literals, nprocs=nprocs)

    declared = {v.name for v in pdef.variables}
    specs: dict[str, Any] = {}
    for fdef in pdef.faults:
        resets: dict[str, Any] = {}
        randomized: list[str] = []
        for assign in fdef.assignments:
            var = assign.target.var
            if var not in declared:
                raise NotationError(
                    f"fault {fdef.name!r} assigns unknown variable {var!r}"
                )
            if isinstance(assign.value, Wildcard):
                randomized.append(var)
            else:
                resets[var] = _const_eval(assign.value, env)
        specs[fdef.name] = FaultSpec(
            name=fdef.name,
            resets=resets,
            randomized=tuple(randomized),
            detectable=bool(resets),
        )
    return specs


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------
@dataclass
class _Env:
    """Compilation environment: parameter values, enum literals."""

    params: dict[str, int]
    literals: dict[str, Any]
    nprocs: int


def _const_eval(node: Any, env: _Env) -> Any:
    """Evaluate a parameter-level constant expression (domain bounds)."""
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Special):
        return BOT if node.which == "BOT" else TOP
    if isinstance(node, Bool):
        return node.value
    if isinstance(node, Name):
        if node.ident in env.params:
            return env.params[node.ident]
        if node.ident in env.literals:
            return env.literals[node.ident]
        raise NotationError(f"unknown name {node.ident!r} in constant expression")
    if isinstance(node, BinOp):
        left = _const_eval(node.left, env)
        right = _const_eval(node.right, env)
        return _apply_binop(node.op, left, right)
    raise NotationError(f"non-constant expression in constant context: {node}")


def _apply_binop(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "%":
        return left % right
    if op == "=":
        return left is right if _is_special(left) or _is_special(right) else left == right
    if op == "!=":
        return not _apply_binop("=", left, right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "and":
        return bool(left) and bool(right)
    if op == "or":
        return bool(left) or bool(right)
    raise NotationError(f"unknown operator {op!r}")


def _is_special(value: Any) -> bool:
    return value is BOT or value is TOP


def _resolve_pid(index: Any, pid: int, bindings: dict[str, int], env: _Env) -> int:
    if index == "j":
        return pid
    if index == "N":
        return env.nprocs - 1
    if isinstance(index, Num):
        return index.value % env.nprocs
    if isinstance(index, Name):
        if index.ident in bindings:
            return bindings[index.ident]
        raise NotationError(f"unbound process variable {index.ident!r}")
    if isinstance(index, tuple) and index[0] == "j":
        return (pid + index[1]) % env.nprocs
    raise NotationError(f"bad process index {index!r}")


def _eval(node: Any, view: StateView, bindings: dict[str, int], env: _Env) -> Any:
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Special):
        return BOT if node.which == "BOT" else TOP
    if isinstance(node, Bool):
        return node.value
    if isinstance(node, Name):
        if node.ident in bindings:
            return bindings[node.ident]
        if node.ident in env.params:
            return env.params[node.ident]
        if node.ident in env.literals:
            return env.literals[node.ident]
        raise NotationError(f"unknown name {node.ident!r}")
    if isinstance(node, VarRef):
        target = _resolve_pid(node.index, view.pid, bindings, env)
        return view.of(node.var, target)
    if isinstance(node, Not):
        return not _eval(node.operand, view, bindings, env)
    if isinstance(node, BinOp):
        # Short-circuit the boolean connectives.
        if node.op == "and":
            return bool(_eval(node.left, view, bindings, env)) and bool(
                _eval(node.right, view, bindings, env)
            )
        if node.op == "or":
            return bool(_eval(node.left, view, bindings, env)) or bool(
                _eval(node.right, view, bindings, env)
            )
        return _apply_binop(
            node.op,
            _eval(node.left, view, bindings, env),
            _eval(node.right, view, bindings, env),
        )
    if isinstance(node, Quantifier):
        results = (
            _eval(node.body, view, {**bindings, node.binder: k}, env)
            for k in range(env.nprocs)
        )
        return all(results) if node.kind == "forall" else any(results)
    if isinstance(node, AnyOf):
        matches = [
            k
            for k in range(env.nprocs)
            if _eval(node.condition, view, {**bindings, node.binder: k}, env)
        ]
        if matches:
            if view.rng is not None and len(matches) > 1:
                k = matches[int(view.rng.integers(0, len(matches)))]
            else:
                k = matches[0]
            return _eval(node.value, view, {**bindings, node.binder: k}, env)
        if node.default is not None:
            return _eval(node.default, view, bindings, env)
        raise NotationError("'any' found no witness and has no default")
    raise NotationError(f"cannot evaluate node {node!r}")


def _exec_stmts(
    stmts: tuple,
    view: StateView,
    env: _Env,
    updates: list[tuple[str, Any]],
) -> None:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            if stmt.target.index != "j":
                raise NotationError(
                    f"process may only assign its own variables, not "
                    f"{stmt.target.var}.{stmt.target.index}"
                )
            updates.append((stmt.target.var, _eval(stmt.value, view, {}, env)))
        elif isinstance(stmt, IfStmt):
            for cond, body in stmt.branches:
                if cond is None or _eval(cond, view, {}, env):
                    _exec_stmts(body, view, env, updates)
                    break
        else:  # pragma: no cover - parser emits only Assign/IfStmt
            raise NotationError(f"unknown statement {stmt!r}")


def _build_domain(vdef: VarDef, env: _Env):
    if vdef.domain.kind == "enum":
        members = tuple(env.literals[m] for m in vdef.domain.args)
        return EnumDomain(members)
    if vdef.domain.kind == "int":
        lo = _const_eval(vdef.domain.args[0], env)
        hi = _const_eval(vdef.domain.args[1], env)
        return IntRange(lo, hi)
    if vdef.domain.kind == "seq":
        return SequenceNumberDomain(_const_eval(vdef.domain.args[0], env))
    raise NotationError(f"unknown domain kind {vdef.domain.kind!r}")


def compile_program(
    source: str | ProgramDef,
    nprocs: int,
    params: dict[str, int] | None = None,
    literal_values: dict[str, Any] | None = None,
) -> Program:
    """Compile notation text (or a parsed AST) into a runnable Program.

    ``params`` supplies values for every ``param`` declaration (the
    pseudo-parameter ``N`` is always bound to ``nprocs - 1``).
    ``literal_values`` optionally maps enum literal names to Python
    values (e.g. the :class:`~repro.barrier.control.CP` members) so the
    compiled program shares value identities with hand-built ones;
    unmapped literals become interned strings.
    """
    pdef = parse(source) if isinstance(source, str) else source
    params = dict(params or {})
    params.setdefault("N", nprocs - 1)
    missing = [p for p in pdef.params if p not in params]
    if missing:
        raise NotationError(f"missing parameter values: {missing}")

    # Collect enum literals across variables.
    literals: dict[str, Any] = {}
    provided = dict(literal_values or {})
    for vdef in pdef.variables:
        if vdef.domain.kind == "enum":
            for member in vdef.domain.args:
                literals.setdefault(member, provided.get(member, member))
    env = _Env(params=params, literals=literals, nprocs=nprocs)

    declarations = []
    for vdef in pdef.variables:
        domain = _build_domain(vdef, env)
        declarations.append(
            VariableDecl(vdef.name, domain, _const_eval(vdef.initial, env))
        )

    def site_matches(site, pid: int) -> bool:
        if site is None:
            return True
        op, which = site
        target = 0 if which == "0" else nprocs - 1
        return (pid == target) if op == "=" else (pid != target)

    processes = []
    for pid in range(nprocs):
        actions = []
        for adef in pdef.actions:
            if not site_matches(adef.site, pid):
                continue

            def guard(view: StateView, _g=adef.guard) -> bool:
                return bool(_eval(_g, view, {}, env))

            def statement(view: StateView, _s=adef.statements):
                updates: list[tuple[str, Any]] = []
                _exec_stmts(_s, view, env, updates)
                return updates

            actions.append(Action(adef.name, pid, guard, statement))
        processes.append(Process(pid, tuple(actions)))

    return Program(
        pdef.name,
        declarations,
        processes,
        metadata={"family": "notation", "source_params": dict(params)},
    )
