"""Compiled guarded-command backend.

The interpreter walks dict-of-list states through Python closures for
every guard and statement, every step.  This module specializes each
:class:`~repro.gc.actions.Action` against a *flat array mirror* of the
state -- one int per ``(variable, pid)`` cell, values interned as their
domain indices (:class:`StateCodec`) -- and caches both layers of work
the interpreter redoes constantly:

* **guard/effect memo tables** -- each action's guard (and statement) is
  a pure function of the cells it reads, so its result is memoized under
  the tuple of interned values of those cells.  Declared read-sets
  (:attr:`Action.reads`) are trusted directly; undeclared guards and all
  statements *learn* their read-sets by evaluating under a
  :class:`~repro.gc.incremental.RecordingStateView` on every miss and
  growing the keyed cell union (clearing the memo when it grows, so every
  stored entry's key covers its own read path).  Memoized effect entries
  precompute the write-through triples, the mirror writes, and the dirty
  slots, so a hit applies in a handful of C-level operations.
* **enabled flags with slot-granular dirty tracking** -- the same
  protocol as :class:`~repro.gc.incremental.EnabledIndex`, but watching
  mirror slots instead of declared cells, which also covers learned
  (undeclared) guards.

**Fallback rules** -- specialization is per-action and bails out to live
interpretation whenever memoization would be unsound:

* a guard or statement that draws from the RNG (detected by counting
  draws through a forwarding proxy on every miss) is never memoized and
  is re-evaluated every step, exactly as the interpreter treats
  undeclared actions -- so the RNG stream, and hence the trace, stays
  bit-identical;
* an action reading or writing a variable whose domain cannot be
  interned (unenumerable or unhashable values) is evaluated live;
* writes made behind the backend's back (fault injectors, tests poking
  ``State.set``) are caught via :attr:`State.version` and trigger a
  mirror re-encode plus full flag refresh, mirroring the interpreter's
  rebuild.

Every evaluation that does run is the *same* closure the interpreter
would call, against the *same* :class:`State`, with the same RNG in the
same order; writes go through to the real ``State`` (batched via
:meth:`State.write_cells`).  Trace events, state digests and RNG streams
are therefore bit-identical to the interpreter -- the conformance suite
and ``tests/test_compile_differential.py`` enforce this differentially,
including under seeded fault injection.
"""

from __future__ import annotations

from bisect import insort
from operator import itemgetter
from typing import Any, Callable

from repro.gc.actions import Action
from repro.gc.incremental import RecordingStateView
from repro.gc.program import Program
from repro.gc.state import State

__all__ = ["StateCodec", "CompiledProgram"]

_MISS = object()

#: Domains larger than this are not interned (the table would dwarf the
#: mirror's benefit); actions touching them fall back to live evaluation.
MAX_DOMAIN_SIZE = 65_536

#: Entry cap for the round-level memo; reached only by workloads whose
#: reachable set is that large, where the memo is wiped and rebuilt.
ROUND_MEMO_MAX = 65_536


class _CountingRng:
    """Forwarding RNG proxy that counts draws.

    Used on memo misses to detect nondeterministic guards/statements:
    any entry whose evaluation touched the RNG is never memoized (a
    cached result would skip the draw and shift the stream).  Attribute
    access other than ``integers`` is counted conservatively -- the
    engine's views only ever call ``integers``, so anything else is
    user code doing who-knows-what with the generator.
    """

    __slots__ = ("rng", "draws")

    def __init__(self, rng: Any) -> None:
        self.rng = rng
        self.draws = 0

    def integers(self, *args: Any, **kwargs: Any) -> Any:
        self.draws += 1
        return self.rng.integers(*args, **kwargs)

    def __getattr__(self, name: str) -> Any:
        self.draws += 1
        return getattr(self.rng, name)


class _RoundEntry:
    """One memoized maximal-parallel round.

    Stored only for rounds that were a pure function of the mirror: every
    domain interned, no live guard, every effect memoized, every
    per-process choice a singleton (so no selection draw either way).
    ``fires`` carries ``(action index, updates)`` for trace replay.
    ``next`` chains an entry to its (unique, deterministic) successor
    round once both have been observed, so steady-state cycles replay
    without even hashing the mirror.
    """

    __slots__ = ("triples", "mirror", "dirty", "fires", "next")

    def __init__(
        self,
        triples: tuple[tuple[str, int, Any], ...],
        mirror: tuple[tuple[int, int], ...],
        dirty: tuple[int, ...],
        fires: tuple[tuple[int, tuple[tuple[str, Any], ...]], ...],
    ) -> None:
        self.triples = triples
        self.mirror = mirror
        self.dirty = dirty
        self.fires = fires
        self.next: "_RoundEntry | None" = None


class _EffectEntry:
    """One memoized statement result plus its precomputed application."""

    __slots__ = ("updates", "triples", "mirror", "dirty")

    def __init__(
        self,
        updates: tuple[tuple[str, Any], ...],
        triples: tuple[tuple[str, int, Any], ...],
        mirror: tuple[tuple[int, int], ...],
        dirty: tuple[int, ...],
    ) -> None:
        self.updates = updates
        self.triples = triples
        self.mirror = mirror
        self.dirty = dirty


class StateCodec:
    """Interning tables between :class:`State` cells and flat int slots.

    Variables are laid out in sorted-name order (matching
    :meth:`State.key` and the explorer's ``KeyCodec``); the slot of cell
    ``(var, pid)`` is ``var_index[var] * nprocs + pid``.  A variable
    whose domain cannot be enumerated into a hash table (or exceeds
    :data:`MAX_DOMAIN_SIZE`) gets no table -- its cells mirror as ``0``
    and every action touching it falls back to live evaluation.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.nprocs = program.nprocs
        self.names: tuple[str, ...] = tuple(
            sorted(d.name for d in program.declarations)
        )
        self.var_index: dict[str, int] = {
            name: i for i, name in enumerate(self.names)
        }
        self.ncells = len(self.names) * self.nprocs
        by_name = {d.name: d for d in program.declarations}
        self.tables: list[dict[Any, int] | None] = []
        for name in self.names:
            try:
                values = tuple(by_name[name].domain.values())
                table: dict[Any, int] | None = (
                    None
                    if len(values) > MAX_DOMAIN_SIZE
                    else {v: i for i, v in enumerate(values)}
                )
            except TypeError:
                table = None
            self.tables.append(table)

    def slot(self, var: str, pid: int) -> int:
        """Flat mirror index of cell ``(var, pid)``."""
        return self.var_index[var] * self.nprocs + pid

    def cell(self, slot: int) -> tuple[str, int]:
        """Inverse of :meth:`slot`."""
        return self.names[slot // self.nprocs], slot % self.nprocs

    def internable(self, var: str) -> bool:
        return self.tables[self.var_index[var]] is not None

    def encode_into(self, state: State, cells: list[int]) -> None:
        """Re-intern every cell of ``state`` into the mirror array."""
        n = self.nprocs
        base = 0
        for name, table in zip(self.names, self.tables):
            vec = state.vector(name)
            if table is not None:
                for i in range(n):
                    cells[base + i] = table[vec[i]]
            base += n

    def new_cells(self) -> list[int]:
        return [0] * self.ncells


class CompiledProgram:
    """Array-backed execution engine for one program.

    Drives the same step protocol as :class:`EnabledIndex` (refresh /
    mark_stale / is_enabled / enabled_slots) but owns the apply path
    too: :meth:`execute` (interleaving daemons) and
    :meth:`updates_for` + :meth:`apply` (the maximal-parallel daemon,
    which must evaluate every chosen statement against the pre-step
    state before applying any update).  :meth:`run_rounds` batches whole
    maximal-parallel rounds without per-step daemon overhead, and
    :meth:`successors` serves the explorer.

    One instance per (daemon, program) -- memo tables persist across
    runs and across explorer root states, which is where the speedup
    comes from.
    """

    def __init__(self, program: Program, codec: StateCodec | None = None) -> None:
        self.program = program
        self.codec = codec or StateCodec(program)
        self.actions: tuple[Action, ...] = tuple(program.actions())
        n = len(self.actions)
        by_pid: list[tuple[int, ...]] = []
        i = 0
        for proc in program.processes:
            by_pid.append(tuple(range(i, i + len(proc.actions))))
            i += len(proc.actions)
        self.by_pid: tuple[tuple[int, ...], ...] = tuple(by_pid)
        self.pid_of: tuple[int, ...] = tuple(a.pid for a in self.actions)
        self.stats = {
            "guard_hits": 0,
            "guard_misses": 0,
            "guard_live": 0,
            "effect_hits": 0,
            "effect_misses": 0,
            "effect_live": 0,
            "rebinds": 0,
            "round_hits": 0,
            "round_misses": 0,
        }
        # Guard specialization state.  slots None => live (never cached,
        # always stale); fixed => declared read-set (trusted, no
        # recording on miss); otherwise the union is learned.
        self._g_slots: list[tuple[int, ...] | None] = []
        self._g_get: list[Callable[[list[int]], Any] | None] = []
        self._g_memo: list[dict[Any, bool]] = []
        self._g_fixed: list[bool] = []
        for action in self.actions:
            slots: tuple[int, ...] | None
            if action.reads is None:
                slots, fixed = (), False
            else:
                slots, fixed = self._slots_for_cells(action.reads), True
            self._g_slots.append(slots)
            self._g_get.append(self._getter(slots))
            self._g_memo.append({})
            self._g_fixed.append(fixed)
        # Effect specialization state: always learned.
        self._e_slots: list[tuple[int, ...] | None] = [()] * n
        self._e_get: list[Callable[[list[int]], Any] | None] = [None] * n
        self._e_memo: list[dict[Any, _EffectEntry]] = [{} for _ in range(n)]
        # Live guards are re-evaluated every step (like EnabledIndex's
        # untracked set); kept sorted for deterministic RNG order.
        self._live: list[int] = sorted(
            idx for idx, s in enumerate(self._g_slots) if s is None
        )
        self._watchers: dict[int, list[int]] = {}
        for idx, slots in enumerate(self._g_slots):
            if slots:
                for slot in slots:
                    self._watchers.setdefault(slot, []).append(idx)
        # Round-level memo (maximal-parallel semantics): when every
        # domain is interned the mirror determines the state uniquely,
        # and a draw-free round is a pure function of it -- steady-state
        # cycling replays whole rounds off one dict lookup.
        tables = self.codec.tables
        self._round_capable = all(t is not None for t in tables)
        self._round_bytes = self._round_capable and all(
            len(t) < 256 for t in tables
        )
        self._round_memo: dict[Any, _RoundEntry] = {}
        #: The entry applied last round (chain head), and the chain-valid
        #: predecessor of a round being evaluated (linked on store).
        self._prev_round: _RoundEntry | None = None
        self._pending_prev: _RoundEntry | None = None
        # Runtime binding.
        self._cells: list[int] = self.codec.new_cells()
        self._state: State | None = None
        self._expected_version = -1
        self._dirty: set[int] = set()
        self.flags: list[bool] = [False] * n
        self._stale = bytearray(b"\x01" * n)
        self._lazy_used = True
        self._enabled: list[int] | None = None

    # ------------------------------------------------------------------
    # Specialization plumbing
    # ------------------------------------------------------------------
    def _slots_for_cells(self, cells: Any) -> tuple[int, ...] | None:
        """Sorted mirror slots for a cell set; None if any is uninternable."""
        codec = self.codec
        out = []
        for var, pid in cells:
            if var not in codec.var_index or not codec.internable(var):
                return None
            out.append(codec.slot(var, pid))
        return tuple(sorted(out))

    @staticmethod
    def _getter(
        slots: tuple[int, ...] | None,
    ) -> Callable[[list[int]], Any] | None:
        if not slots:
            return None
        return itemgetter(*slots)

    def _demote_guard(self, idx: int) -> None:
        self._g_slots[idx] = None
        self._g_get[idx] = None
        self._g_memo[idx].clear()
        if idx not in self._live:
            insort(self._live, idx)
        self._stale[idx] = 1

    def _grow_guard(self, idx: int, observed: Any) -> bool:
        """Extend a learned guard union; False demotes the guard."""
        merged = self._slots_for_cells(observed)
        if merged is None:
            self._demote_guard(idx)
            return False
        current = self._g_slots[idx]
        assert current is not None
        union = tuple(sorted(set(current) | set(merged)))
        if union != current:
            self._g_slots[idx] = union
            self._g_get[idx] = self._getter(union)
            self._g_memo[idx].clear()
            for slot in set(union) - set(current):
                self._watchers.setdefault(slot, []).append(idx)
        return True

    # ------------------------------------------------------------------
    # Guard evaluation
    # ------------------------------------------------------------------
    def _guard(self, idx: int, state: State, rng: Any = None) -> bool:
        slots = self._g_slots[idx]
        if slots is None:
            self.stats["guard_live"] += 1
            return self.actions[idx].enabled(state, rng)
        getter = self._g_get[idx]
        key = getter(self._cells) if getter is not None else ()
        memo = self._g_memo[idx]
        hit = memo.get(key, _MISS)
        if hit is not _MISS:
            self.stats["guard_hits"] += 1
            return hit  # type: ignore[return-value]
        self.stats["guard_misses"] += 1
        action = self.actions[idx]
        if self._g_fixed[idx]:
            # Declared read-set: the purity contract says no RNG draws
            # and no reads outside the declaration -- evaluate plainly.
            result = action.enabled(state, rng)
            memo[key] = result
            return result
        proxy = _CountingRng(rng) if rng is not None else None
        view = RecordingStateView(state, action.pid, proxy)
        result = bool(action.guard(view))
        if proxy is not None and proxy.draws:
            self._demote_guard(idx)
            return result
        if not self._grow_guard(idx, view.observed):
            return result
        getter = self._g_get[idx]
        key = getter(self._cells) if getter is not None else ()
        self._g_memo[idx][key] = result
        return result

    # ------------------------------------------------------------------
    # Flag maintenance (EnabledIndex protocol)
    # ------------------------------------------------------------------
    def _rebind_lazy(self, state: State) -> None:
        self.stats["rebinds"] += 1
        self.codec.encode_into(state, self._cells)
        self._state = state
        self._stale[:] = b"\x01" * len(self._stale)
        self._enabled = None

    def mark_stale(self, state: State) -> None:
        """Lazy refresh: mark invalidated flags, pull via :meth:`is_enabled`."""
        self._lazy_used = True
        stale = self._stale
        if state is not self._state or state.version != self._expected_version:
            self._rebind_lazy(state)
        else:
            for idx in self._live:
                stale[idx] = 1
            watchers = self._watchers
            for slot in self._dirty:
                hit = watchers.get(slot)
                if hit is not None:
                    for idx in hit:
                        stale[idx] = 1
        self._dirty.clear()
        self._expected_version = state.version

    def is_enabled(self, idx: int, state: State, rng: Any = None) -> bool:
        """Cached enabledness of one action, re-evaluating iff stale."""
        if self._stale[idx]:
            self.flags[idx] = self._guard(idx, state, rng)
            if self._g_slots[idx] is not None:
                self._stale[idx] = 0
            self._enabled = None
        return self.flags[idx]

    def refresh(self, state: State, rng: Any = None) -> list[bool]:
        """Eager refresh; guards re-evaluate in declaration order so any
        RNG consumption (live guards only) matches the interpreter."""
        flags = self.flags
        if state is not self._state or state.version != self._expected_version:
            self.stats["rebinds"] += 1
            self.codec.encode_into(state, self._cells)
            self._state = state
            for idx in range(len(flags)):
                flags[idx] = self._guard(idx, state, rng)
            self._enabled = None
        else:
            stale = set(self._live)
            watchers = self._watchers
            for slot in self._dirty:
                hit = watchers.get(slot)
                if hit is not None:
                    stale.update(hit)
            if self._lazy_used:
                bits = self._stale
                stale.update(idx for idx in range(len(bits)) if bits[idx])
            enabled = self._enabled
            for idx in sorted(stale):
                new = self._guard(idx, state, rng)
                if new != flags[idx]:
                    flags[idx] = new
                    if enabled is not None:
                        if new:
                            insort(enabled, idx)
                        else:
                            enabled.remove(idx)
        if self._lazy_used:
            self._stale[:] = bytes(len(self._stale))
            self._lazy_used = False
        self._dirty.clear()
        self._expected_version = state.version
        return flags

    def enabled_slots(self) -> list[int]:
        """Indices of enabled actions (valid after an eager refresh)."""
        enabled = self._enabled
        if enabled is None:
            self._enabled = enabled = [
                idx for idx, on in enumerate(self.flags) if on
            ]
        return enabled

    def commit(self, state: State) -> None:
        """Record the post-step version so own writes don't invalidate."""
        self._expected_version = state.version

    # ------------------------------------------------------------------
    # Effect evaluation and application
    # ------------------------------------------------------------------
    def updates_for(
        self, idx: int, state: State, rng: Any = None
    ) -> tuple[list[tuple[str, Any]], _EffectEntry | None]:
        """Evaluate action ``idx``'s statement against the current
        (pre-apply) state; returns ``(updates, entry)`` where ``entry``
        is the precomputed application payload on a memo hit/store."""
        slots = self._e_slots[idx]
        if slots is None:
            self.stats["effect_live"] += 1
            return self.actions[idx].updates(state, rng), None
        getter = self._e_get[idx]
        key = getter(self._cells) if getter is not None else ()
        entry = self._e_memo[idx].get(key)
        if entry is not None:
            self.stats["effect_hits"] += 1
            return list(entry.updates), entry
        return self._effect_miss(idx, state, rng, key)

    def _effect_miss(
        self, idx: int, state: State, rng: Any, key: Any
    ) -> tuple[list[tuple[str, Any]], _EffectEntry | None]:
        self.stats["effect_misses"] += 1
        action = self.actions[idx]
        proxy = _CountingRng(rng) if rng is not None else None
        view = RecordingStateView(state, action.pid, proxy)
        result = action.statement(view)
        ups = list(result) if result is not None else []
        if proxy is not None and proxy.draws:
            # Nondeterministic statement: never memoize, always re-draw.
            self._e_slots[idx] = None
            self._e_memo[idx].clear()
            return ups, None
        merged = self._slots_for_cells(view.observed)
        if merged is None:
            self._e_slots[idx] = None
            self._e_memo[idx].clear()
            return ups, None
        current = self._e_slots[idx]
        assert current is not None
        union = tuple(sorted(set(current) | set(merged)))
        if union != current:
            self._e_slots[idx] = union
            self._e_get[idx] = self._getter(union)
            self._e_memo[idx].clear()
            getter = self._e_get[idx]
            key = getter(self._cells) if getter is not None else ()
        entry = self._build_entry(idx, ups)
        if entry is None:
            return ups, None
        self._e_memo[idx][key] = entry
        return ups, entry

    def _build_entry(
        self, idx: int, ups: list[tuple[str, Any]]
    ) -> _EffectEntry | None:
        codec = self.codec
        pid = self.pid_of[idx]
        n = codec.nprocs
        triples = []
        mirror = []
        dirty = []
        for var, value in ups:
            vi = codec.var_index.get(var)
            if vi is None:
                return None  # unknown variable: let the live path raise
            triples.append((var, pid, value))
            slot = vi * n + pid
            dirty.append(slot)
            table = codec.tables[vi]
            if table is not None:
                iv = table.get(value)
                if iv is None:
                    return None  # out-of-table value: stay live
                mirror.append((slot, iv))
        return _EffectEntry(
            tuple(ups), tuple(triples), tuple(mirror), tuple(dirty)
        )

    def apply(
        self,
        idx: int,
        state: State,
        ups: list[tuple[str, Any]],
        entry: _EffectEntry | None,
    ) -> None:
        """Write-through one action's updates: real state (batched),
        mirror cells, dirty slots."""
        if entry is not None:
            if entry.triples:
                state.write_cells(entry.triples)
                cells = self._cells
                for slot, iv in entry.mirror:
                    cells[slot] = iv
                self._dirty.update(entry.dirty)
        elif ups:
            codec = self.codec
            pid = self.pid_of[idx]
            n = codec.nprocs
            cells = self._cells
            dirty = self._dirty
            state.write_cells((var, pid, value) for var, value in ups)
            for var, value in ups:
                vi = codec.var_index[var]
                slot = vi * n + pid
                dirty.add(slot)
                table = codec.tables[vi]
                if table is not None:
                    iv = table.get(value)
                    if iv is not None:
                        cells[slot] = iv
                    else:
                        # Keep soundness: a value we cannot intern makes
                        # every key over this slot unreliable.
                        self._poison_slot(slot)
        self._expected_version = state.version

    def _poison_slot(self, slot: int) -> None:
        """Demote every specialized guard/effect keyed on ``slot``."""
        for idx, slots in enumerate(self._g_slots):
            if slots and slot in slots:
                self._demote_guard(idx)
        for idx, slots in enumerate(self._e_slots):
            if slots and slot in slots:
                self._e_slots[idx] = None
                self._e_memo[idx].clear()
        # The mirror no longer determines the state at this slot.
        self._round_capable = False
        self._round_memo.clear()
        self._prev_round = None
        self._pending_prev = None

    def execute(
        self, idx: int, state: State, rng: Any = None
    ) -> list[tuple[str, Any]]:
        """Interleaving-semantics helper: evaluate and apply in one step."""
        ups, entry = self.updates_for(idx, state, rng)
        self.apply(idx, state, ups, entry)
        return ups

    # ------------------------------------------------------------------
    # Batched maximal-parallel rounds
    # ------------------------------------------------------------------
    def _round_key(self) -> Any:
        cells = self._cells
        return bytes(cells) if self._round_bytes else tuple(cells)

    def _round_fast(
        self, state: State
    ) -> tuple[_RoundEntry | None, Any]:
        """Round-memo fast path: chain pointer first, then keyed lookup;
        a hit is applied in place.  Returns ``(entry, key)``:  ``entry``
        non-None means the round already ran; otherwise ``key`` is what
        :meth:`store_round` should file this round under (``None`` when
        the mirror is not known-current, i.e. unbound or live guards).

        Hits are valid only when the mirror is bound to ``state``
        (version match), every domain is interned, and no guard is live
        -- the conditions under which flags, selection and effects are a
        pure function of the cells.  The successor of a chained round is
        unique, so ``prev.next`` needs no key comparison at all.
        """
        if not (
            self._round_capable
            and not self._live
            and state is self._state
            and state.version == self._expected_version
        ):
            self._prev_round = None
            self._pending_prev = None
            return None, None
        prev = self._prev_round
        entry = prev.next if prev is not None else None
        if entry is None:
            key = self._round_key()
            entry = self._round_memo.get(key)
            if entry is None:
                self.stats["round_misses"] += 1
                self._prev_round = None
                self._pending_prev = prev
                return None, key
            if prev is not None:
                prev.next = entry
        self.stats["round_hits"] += 1
        if entry.triples:
            state.write_cells(entry.triples)
            cells = self._cells
            for slot, iv in entry.mirror:
                cells[slot] = iv
            self._dirty.update(entry.dirty)
            self._expected_version = state.version
        # Flags were not maintained; recompute the enabled list from the
        # (dirty-covered) flag cache on the next miss round.
        self._enabled = None
        self._prev_round = entry
        return entry, None

    def select_round(
        self, rng: Any = None, random_choice: bool = False
    ) -> tuple[list[int], bool]:
        """Group :meth:`enabled_slots` by process and pick one action per
        process (call after :meth:`refresh`).  Returns the chosen indices
        and whether the selection was draw-free singletons (a necessary
        condition for memoizing the round)."""
        pid_of = self.pid_of
        chosen: list[int] = []
        group: list[int] = []
        cur_pid = -1
        singles = True
        for i in self.enabled_slots():
            pid = pid_of[i]
            if pid != cur_pid:
                if group:
                    if len(group) > 1:
                        singles = False
                    chosen.append(self._pick(group, rng, random_choice))
                group = []
                cur_pid = pid
            group.append(i)
        if group:
            if len(group) > 1:
                singles = False
            chosen.append(self._pick(group, rng, random_choice))
        return chosen, singles

    def store_round(
        self,
        key: Any,
        evaluated: list[tuple[int, tuple[list[tuple[str, Any]], Any]]],
        singles: bool,
    ) -> None:
        """Memoize a completed round if it was provably draw-free: the
        selection was all singletons, no guard went live during the
        round, and every effect produced a memo entry."""
        prev, self._pending_prev = self._pending_prev, None
        if (
            key is None
            or not singles
            or not self._round_capable
            or self._live
        ):
            return
        triples: list[tuple[str, int, Any]] = []
        mirror: list[tuple[int, int]] = []
        dirty: list[int] = []
        fires: list[tuple[int, tuple[tuple[str, Any], ...]]] = []
        for i, (ups, entry) in evaluated:
            if entry is None:
                return
            triples.extend(entry.triples)
            mirror.extend(entry.mirror)
            dirty.extend(entry.dirty)
            fires.append((i, tuple(ups)))
        memo = self._round_memo
        if len(memo) >= ROUND_MEMO_MAX:
            memo.clear()
        stored = _RoundEntry(
            tuple(triples), tuple(mirror), tuple(dirty), tuple(fires)
        )
        memo[key] = stored
        if prev is not None:
            prev.next = stored
        self._prev_round = stored

    def step_round(
        self, state: State, rng: Any = None, random_choice: bool = False
    ) -> list[tuple[int, list[tuple[str, Any]]]]:
        """One maximal-parallel round in place, through the round memo;
        returns ``(action index, updates)`` pairs in firing order.
        Selection, evaluation order and RNG usage match
        :class:`MaximalParallelDaemon` exactly."""
        entry, key = self._round_fast(state)
        if entry is not None:
            return [(i, list(ups)) for i, ups in entry.fires]
        self.refresh(state, rng)
        if key is None and self._round_capable and not self._live:
            # The rebind made the mirror current; memoize this round too
            # (first round, and rounds after external writes).
            key = self._round_key()
        chosen, singles = self.select_round(rng, random_choice)
        if not chosen:
            self._pending_prev = None
            return []
        evaluated = [(i, self.updates_for(i, state, rng)) for i in chosen]
        for i, (ups, eff) in evaluated:
            self.apply(i, state, ups, eff)
        self.store_round(key, evaluated, singles)
        return [(i, ups) for i, (ups, _eff) in evaluated]

    def run_rounds(
        self,
        state: State,
        rounds: int,
        rng: Any = None,
        random_choice: bool = False,
    ) -> int:
        """Run up to ``rounds`` maximal-parallel rounds in place, without
        per-step daemon/tracer overhead; returns actions fired.  Stops
        early when the program goes silent.  Selection, evaluation order
        and RNG usage match :class:`MaximalParallelDaemon` exactly."""
        fired = 0
        for _ in range(rounds):
            entry, key = self._round_fast(state)
            if entry is not None:
                fired += len(entry.fires)
                continue
            self.refresh(state, rng)
            if key is None and self._round_capable and not self._live:
                key = self._round_key()
            chosen, singles = self.select_round(rng, random_choice)
            if not chosen:
                self._pending_prev = None
                break
            evaluated = [
                (i, self.updates_for(i, state, rng)) for i in chosen
            ]
            for i, (ups, eff) in evaluated:
                self.apply(i, state, ups, eff)
            fired += len(evaluated)
            self.store_round(key, evaluated, singles)
        return fired

    @staticmethod
    def _pick(group: list[int], rng: Any, random_choice: bool) -> int:
        if random_choice and len(group) > 1:
            return group[int(rng.integers(0, len(group)))]
        return group[0]

    # ------------------------------------------------------------------
    # Explorer interface
    # ------------------------------------------------------------------
    def successors(self, state: State) -> list[State]:
        """One-step successors under nondeterministic interleaving;
        same states, in the same action order, as
        :meth:`Explorer.successors`."""
        self.codec.encode_into(state, self._cells)
        # Invalidate any daemon-style binding: flags no longer match.
        self._state = None
        self._lazy_used = True
        self._stale[:] = b"\x01" * len(self._stale)
        out = []
        for idx in range(len(self.actions)):
            if self._guard(idx, state, None):
                ups, _entry = self.updates_for(idx, state, None)
                succ = state.snapshot()
                if ups:
                    pid = self.pid_of[idx]
                    succ.write_cells(
                        (var, pid, value) for var, value in ups
                    )
                out.append(succ)
        return out
