"""Untimed run loops.

The simulator drives a program under a daemon, optionally interleaving a
fault injector, recording a trace, and stopping on a predicate or a step
bound.  It is the workhorse behind the correctness experiments (the
lemma tests) and the hypothesis property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.gc.program import Program
from repro.gc.scheduler import Daemon, RoundRobinDaemon, is_silent
from repro.gc.state import State
from repro.gc.trace import Trace, TraceEvent
from repro.obs.tracer import ensure_tracer

StopPredicate = Callable[[State, int], bool]
StepObserver = Callable[[State, int], None]


@dataclass
class RunResult:
    """Outcome of one run."""

    state: State
    steps: int
    stopped_by: str  # "predicate" | "silent" | "max_steps"
    trace: Trace = field(default_factory=Trace)

    @property
    def reached(self) -> bool:
        """True when the stop predicate fired (not a timeout)."""
        return self.stopped_by == "predicate"


class Simulator:
    """Run a program under a daemon with optional fault injection."""

    def __init__(
        self,
        program: Program,
        daemon: Daemon | None = None,
        injector: Any = None,
        record_trace: bool = True,
        trace_capacity: int | None = None,
        tracer: Any = None,
    ) -> None:
        self.program = program
        self.daemon = daemon if daemon is not None else RoundRobinDaemon()
        self.injector = injector
        self.record_trace = record_trace
        self.trace_capacity = trace_capacity
        self.tracer = ensure_tracer(tracer)

    def _phase_observer(self, state: State):
        """A phase-event deriver when the program is a barrier (has
        ``cp``/``ph`` variables); None otherwise."""
        domains = self.program.domains
        if "cp" not in domains or "ph" not in domains:
            return None
        from repro.obs.observer import BarrierPhaseObserver

        return BarrierPhaseObserver.from_state(self.tracer, self.program, state)

    def run(
        self,
        state: State | None = None,
        max_steps: int = 10_000,
        stop: StopPredicate | None = None,
        observer: StepObserver | None = None,
    ) -> RunResult:
        """Execute up to ``max_steps`` daemon steps.

        ``stop`` is evaluated before the first step and after every step,
        so a run started in a stop state returns immediately with zero
        steps.  Fault injection (if configured) happens between steps.
        """
        if state is None:
            state = self.program.initial_state()
        trace = Trace(self.trace_capacity)
        if stop is not None and stop(state, 0):
            return RunResult(state, 0, "predicate", trace)
        tracing = self.tracer.enabled
        phase_obs = self._phase_observer(state) if tracing else None
        spec = getattr(self.injector, "spec", None)
        fault_detectable = spec.detectable if spec is not None else True

        for step in range(1, max_steps + 1):
            if self.injector is not None:
                for fault_event in self.injector.maybe_inject(state, step):
                    if self.record_trace:
                        trace.append(fault_event)
                    if tracing:
                        self.tracer.fault(
                            float(step),
                            fault_event.pid,
                            detectable=(
                                fault_event.detectable
                                if fault_event.detectable is not None
                                else fault_detectable
                            ),
                            name=fault_event.action,
                        )
                        if phase_obs is not None:
                            phase_obs.observe(
                                float(step),
                                fault_event.pid,
                                fault_event.updates,
                            )

            fired = self.daemon.step(self.program, state)
            if tracing:
                for action, ups in fired:
                    if phase_obs is not None:
                        phase_obs.observe(float(step), action.pid, ups)
                    if any(var == "sn" for var, _ in ups):
                        # A sequence-number write is the token moving
                        # (RB/MB and their BOT/TOP convergecast).
                        self.tracer.token_pass(float(step), action.pid)
            if not fired and is_silent(self.program, state):
                # A fault environment can re-enable a silent program (a
                # crash repair, most notably), so silence only ends the
                # run when no injector is attached.
                if self.injector is None:
                    return RunResult(state, step - 1, "silent", trace)

            if self.record_trace:
                for action, ups in fired:
                    trace.append(
                        TraceEvent(
                            step=step,
                            pid=action.pid,
                            action=action.name,
                            updates=tuple(ups),
                        )
                    )
            if observer is not None:
                observer(state, step)
            if stop is not None and stop(state, step):
                return RunResult(state, step, "predicate", trace)

        return RunResult(state, max_steps, "max_steps", trace)

    def run_until(
        self,
        predicate: Callable[[State], bool],
        state: State | None = None,
        max_steps: int = 10_000,
    ) -> RunResult:
        """Convenience wrapper: stop when ``predicate(state)`` holds."""
        return self.run(state, max_steps, stop=lambda s, _step: predicate(s))
