"""Guarded-command program kernel (the SIEFAST substitute).

The paper's programs are written in Dijkstra-style guarded-command
notation: each process has a finite set of variables and a finite set of
actions ``name :: guard -> statement``.  A computation is a fair
interleaving of enabled actions; the performance study additionally uses
*maximal parallel* semantics where every process with an enabled action
executes one action per step.

This subpackage provides everything needed to express and execute those
programs:

* :mod:`repro.gc.domains` -- variable domains, including the special
  sequence-number values ``BOT`` and ``TOP`` from the token-ring program;
* :mod:`repro.gc.state` -- global program states (snapshot, restore,
  hashable keys for model checking);
* :mod:`repro.gc.actions` -- guarded actions whose effects are *pure*
  (they return an update set instead of mutating), which is what makes
  synchronous/maximal-parallel execution well defined;
* :mod:`repro.gc.program` -- processes and programs, plus superposition;
* :mod:`repro.gc.scheduler` -- daemons: round-robin, random-fair and
  maximal-parallel;
* :mod:`repro.gc.simulator` -- run loops with stop predicates and traces;
* :mod:`repro.gc.timed` -- timed maximal-parallel execution with
  per-action durations (the paper's real-time values);
* :mod:`repro.gc.faults` -- fault environments (detectable/undetectable
  fault actions fired by schedules);
* :mod:`repro.gc.trace` -- event traces;
* :mod:`repro.gc.properties` -- closure/convergence and safety checkers;
* :mod:`repro.gc.explore` -- an explicit-state model checker for small
  instances (used to verify the paper's lemmas exhaustively);
* :mod:`repro.gc.compile` -- the compiled backend: guards and effects
  specialized into memo tables over an array-backed state mirror, with
  per-action fallback to live interpretation (``backend="compiled"`` on
  the daemons and the explorer).
"""

from repro.gc.domains import (
    BOT,
    TOP,
    Domain,
    EnumDomain,
    IntRange,
    SequenceNumberDomain,
)
from repro.gc.state import State
from repro.gc.actions import Action, Update
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.scheduler import (
    Daemon,
    MaximalParallelDaemon,
    RandomFairDaemon,
    RoundRobinDaemon,
)
from repro.gc.simulator import RunResult, Simulator
from repro.gc.timed import TimedResult, TimedSimulator
from repro.gc.faults import (
    BernoulliSchedule,
    ExponentialSchedule,
    FaultInjector,
    FaultSpec,
    OneShotSchedule,
)
from repro.gc.trace import Trace, TraceEvent, trace_digest
from repro.gc.properties import (
    check_closure,
    converges,
    convergence_steps,
    holds_throughout,
)
from repro.gc.compile import CompiledProgram, StateCodec
from repro.gc.explore import ExplorationResult, Explorer
from repro.gc.notation import NotationError, compile_program, parse
from repro.gc.temporal import (
    Verdict,
    always,
    atom,
    eventually,
    eventually_always,
    leads_to,
    record_run,
    until,
)

__all__ = [
    "BOT",
    "TOP",
    "Domain",
    "EnumDomain",
    "IntRange",
    "SequenceNumberDomain",
    "State",
    "Action",
    "Update",
    "Process",
    "Program",
    "VariableDecl",
    "Daemon",
    "MaximalParallelDaemon",
    "RandomFairDaemon",
    "RoundRobinDaemon",
    "RunResult",
    "Simulator",
    "TimedResult",
    "TimedSimulator",
    "BernoulliSchedule",
    "ExponentialSchedule",
    "FaultInjector",
    "FaultSpec",
    "OneShotSchedule",
    "Trace",
    "TraceEvent",
    "trace_digest",
    "check_closure",
    "converges",
    "convergence_steps",
    "holds_throughout",
    "CompiledProgram",
    "StateCodec",
    "ExplorationResult",
    "Explorer",
    "NotationError",
    "compile_program",
    "parse",
    "Verdict",
    "always",
    "atom",
    "eventually",
    "eventually_always",
    "leads_to",
    "record_run",
    "until",
]
