"""Global program states.

A state maps each declared variable name to a vector indexed by process
id.  States support cheap snapshots (used by the synchronous
maximal-parallel daemon, which must evaluate all guards against the
pre-step state), restoration, and hashable keys (used by the explorer and
by convergence detection).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gc.program import Program


class State:
    """A mutable assignment of values to every ``(variable, pid)`` pair.

    Every mutation (``set`` or ``restore``) bumps :attr:`version`, a
    monotonically increasing counter.  Consumers that cache derived
    facts about a state (the incremental daemons cache guard
    enabledness) compare versions to detect writes made behind their
    back -- fault injectors, test harnesses poking variables -- and fall
    back to full re-evaluation when the count does not match what they
    last observed.
    """

    __slots__ = ("_vectors", "_nprocs", "_version")

    def __init__(self, vectors: Mapping[str, list], nprocs: int) -> None:
        self._vectors: dict[str, list] = {k: list(v) for k, v in vectors.items()}
        self._nprocs = nprocs
        self._version = 0
        for name, vec in self._vectors.items():
            if len(vec) != nprocs:
                raise ValueError(
                    f"variable {name!r} has {len(vec)} entries, expected {nprocs}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self._nprocs

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self._vectors)

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every :meth:`set`/:meth:`restore`."""
        return self._version

    def get(self, var: str, pid: int) -> Any:
        return self._vectors[var][pid]

    def set(self, var: str, pid: int, value: Any) -> None:
        vec = self._vectors.get(var)
        if vec is None:
            raise KeyError(f"unknown variable {var!r}")
        if not 0 <= pid < self._nprocs:
            raise IndexError(f"pid {pid} out of range 0..{self._nprocs - 1}")
        vec[pid] = value
        self._version += 1

    def write_cells(self, writes: Iterable[tuple[str, int, Any]]) -> None:
        """Apply many ``(var, pid, value)`` writes with one version bump.

        The batched write path used by the compiled backend: values are
        *not* validated against domains (neither is :meth:`set`), and the
        mutation counter advances once per batch rather than once per
        cell -- consumers compare :attr:`version` against what they
        recorded, never against an absolute count, so both policies are
        observationally equivalent.
        """
        vectors = self._vectors
        for var, pid, value in writes:
            vectors[var][pid] = value
        self._version += 1

    def vector(self, var: str) -> tuple:
        """Return the whole per-process vector of ``var`` (as a tuple)."""
        return tuple(self._vectors[var])

    def locals_of(self, pid: int) -> dict[str, Any]:
        """Return all variables of process ``pid`` as a dict."""
        return {name: vec[pid] for name, vec in self._vectors.items()}

    def __contains__(self, var: str) -> bool:
        return var in self._vectors

    def items(self) -> Iterator[tuple[str, tuple]]:
        for name, vec in self._vectors.items():
            yield name, tuple(vec)

    # ------------------------------------------------------------------
    # Snapshots and keys
    # ------------------------------------------------------------------
    def snapshot(self) -> "State":
        """Return an independent copy of this state."""
        return State(self._vectors, self._nprocs)

    def restore(self, other: "State") -> None:
        """Overwrite this state in place with the contents of ``other``."""
        if other.variables != self.variables or other.nprocs != self.nprocs:
            raise ValueError("state shape mismatch in restore()")
        for name in self._vectors:
            self._vectors[name][:] = other._vectors[name]
        self._version += 1

    def key(self) -> tuple:
        """A hashable, order-stable encoding of the full state."""
        return tuple(
            (name, tuple(vec)) for name, vec in sorted(self._vectors.items())
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{name}={list(vec)}" for name, vec in sorted(self._vectors.items())
        )
        return f"State({parts})"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_key(cls, key: tuple, nprocs: int) -> "State":
        """Inverse of :meth:`key`."""
        return cls({name: list(vec) for name, vec in key}, nprocs)

    @classmethod
    def uniform(cls, program: "Program", **values: Any) -> "State":
        """Build a state assigning each named variable the same value at
        every process; unlisted variables take their declared defaults."""
        vectors: dict[str, list] = {}
        for decl in program.declarations:
            value = values.get(decl.name, decl.default)
            vectors[decl.name] = [value] * program.nprocs
        extra = set(values) - {d.name for d in program.declarations}
        if extra:
            raise KeyError(f"unknown variables in uniform(): {sorted(extra)}")
        return cls(vectors, program.nprocs)
