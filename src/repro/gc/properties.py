"""Property checkers over program runs.

Stabilizing tolerance is *closure* (legitimate states stay legitimate
under program actions) plus *convergence* (every computation from an
arbitrary state reaches a legitimate state).  These helpers test both on
concrete runs; :mod:`repro.gc.explore` proves them exhaustively on small
instances.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.gc.program import Program
from repro.gc.scheduler import Daemon, RoundRobinDaemon
from repro.gc.simulator import Simulator
from repro.gc.state import State

StatePredicate = Callable[[State], bool]


def convergence_steps(
    program: Program,
    state: State,
    legitimate: StatePredicate,
    daemon: Daemon | None = None,
    max_steps: int = 10_000,
) -> int | None:
    """Number of daemon steps to reach a legitimate state, or ``None``.

    Returns 0 when the start state is already legitimate.
    """
    sim = Simulator(program, daemon or RoundRobinDaemon(), record_trace=False)
    result = sim.run(state, max_steps=max_steps, stop=lambda s, _: legitimate(s))
    return result.steps if result.reached else None


def converges(
    program: Program,
    state: State,
    legitimate: StatePredicate,
    daemon: Daemon | None = None,
    max_steps: int = 10_000,
) -> bool:
    """True iff the run from ``state`` reaches a legitimate state."""
    return (
        convergence_steps(program, state, legitimate, daemon, max_steps) is not None
    )


def check_closure(
    program: Program,
    state: State,
    legitimate: StatePredicate,
    daemon: Daemon | None = None,
    steps: int = 1_000,
) -> bool:
    """Run ``steps`` steps from a legitimate ``state``; fail if the run
    ever leaves the legitimate set."""
    if not legitimate(state):
        raise ValueError("closure check must start in a legitimate state")
    ok = True

    def observer(s: State, _step: int) -> None:
        nonlocal ok
        if not legitimate(s):
            ok = False

    sim = Simulator(program, daemon or RoundRobinDaemon(), record_trace=False)
    sim.run(state, max_steps=steps, stop=lambda _s, _step: not ok, observer=observer)
    return ok


def holds_throughout(
    program: Program,
    state: State,
    invariant: StatePredicate,
    daemon: Daemon | None = None,
    steps: int = 1_000,
) -> bool:
    """True iff ``invariant`` holds in the start state and after every
    step of a ``steps``-step run."""
    if not invariant(state):
        return False
    violated = False

    def observer(s: State, _step: int) -> None:
        nonlocal violated
        if not invariant(s):
            violated = True

    sim = Simulator(program, daemon or RoundRobinDaemon(), record_trace=False)
    sim.run(
        state,
        max_steps=steps,
        stop=lambda _s, _step: violated,
        observer=observer,
    )
    return not violated


def stabilization_profile(
    program: Program,
    legitimate: StatePredicate,
    rng: Any,
    trials: int = 50,
    daemon_factory: Callable[[], Daemon] | None = None,
    max_steps: int = 10_000,
) -> list[int]:
    """Sample convergence times from ``trials`` random arbitrary states.

    Raises ``AssertionError`` if any trial fails to converge (stabilizing
    programs must converge from *every* state).
    """
    times: list[int] = []
    for trial in range(trials):
        state = program.arbitrary_state(rng)
        daemon = daemon_factory() if daemon_factory else RoundRobinDaemon()
        steps = convergence_steps(program, state, legitimate, daemon, max_steps)
        if steps is None:
            raise AssertionError(
                f"trial {trial}: no convergence within {max_steps} steps "
                f"from {state!r}"
            )
        times.append(steps)
    return times
