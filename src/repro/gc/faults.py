"""Fault environments.

Section 2 of the paper represents each fault as an action:

* a **detectable** fault assigns *reset* values -- the barrier programs
  reset ``cp := error`` (and ``sn := BOT`` in the ring refinements) while
  the phase gets an arbitrary value;
* an **undetectable** fault assigns nondeterministically chosen values
  from the variable domains.

A :class:`FaultSpec` captures the effect (which variables get reset
values, which get arbitrary ones); a schedule decides *when* faults fire
(one-shot, per-step Bernoulli as in the untimed runs, or exponential
arrivals calibrated so that ``P(no fault in duration d) = (1-f)^d``,
matching the paper's analytical model); the :class:`FaultInjector`
combines specs, schedules and process targeting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log
from typing import Any, Callable, Iterable, Mapping, Protocol, Sequence

import numpy as np

from repro.gc.program import Program
from repro.gc.state import State
from repro.gc.trace import TraceEvent


@dataclass(frozen=True)
class FaultSpec:
    """The effect of one fault class at one process.

    ``resets`` maps variable names to fixed reset values (the detectable
    fault's ``cp := error``); ``randomized`` lists variables that receive a
    uniformly random in-domain value (the paper's ``?``).
    """

    name: str
    resets: Mapping[str, Any] = field(default_factory=dict)
    randomized: Sequence[str] = field(default_factory=tuple)
    detectable: bool = True

    def apply(
        self, program: Program, state: State, pid: int, rng: np.random.Generator
    ) -> list[tuple[str, Any]]:
        """Perturb ``state`` at ``pid``; return the writes performed."""
        domains = program.domains
        writes: list[tuple[str, Any]] = []
        for var in self.randomized:
            value = domains[var].sample(rng)
            state.set(var, pid, value)
            writes.append((var, value))
        for var, value in self.resets.items():
            state.set(var, pid, value)
            writes.append((var, value))
        return writes

    @classmethod
    def undetectable_all(cls, program: Program, name: str = "undetectable") -> "FaultSpec":
        """A transient corruption of *every* variable of one process."""
        return cls(
            name=name,
            randomized=tuple(d.name for d in program.declarations),
            detectable=False,
        )


class Schedule(Protocol):
    """Decides whether a fault fires at a given (step, time)."""

    def fires(self, step: int, time: float, rng: np.random.Generator) -> bool: ...


@dataclass
class OneShotSchedule:
    """Fire exactly once, at a fixed step."""

    at_step: int
    _done: bool = field(default=False, init=False)

    def fires(self, step: int, time: float, rng: np.random.Generator) -> bool:
        if not self._done and step >= self.at_step:
            self._done = True
            return True
        return False


@dataclass
class BernoulliSchedule:
    """Fire independently with probability ``p`` at every step."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"probability out of range: {self.p}")

    def fires(self, step: int, time: float, rng: np.random.Generator) -> bool:
        return self.p > 0 and rng.random() < self.p


@dataclass
class ExponentialSchedule:
    """Exponential inter-arrival times in *virtual time*.

    The rate is derived from the paper's per-unit-time fault frequency
    ``f`` as ``lambda = -ln(1 - f)`` so that the probability of no fault
    in a duration ``d`` equals ``(1 - f)**d``, which is exactly the term
    appearing in the Section 6.1 analysis.
    """

    frequency: float
    _next: float = field(default=-1.0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.frequency < 1.0:
            raise ValueError(
                f"fault frequency must lie in [0, 1): {self.frequency}"
            )

    @property
    def rate(self) -> float:
        return 0.0 if self.frequency == 0.0 else -log(1.0 - self.frequency)

    def fires(self, step: int, time: float, rng: np.random.Generator) -> bool:
        if self.frequency == 0.0:
            return False
        if self._next < 0.0:
            self._next = time + rng.exponential(1.0 / self.rate)
        if time >= self._next:
            self._next = time + rng.exponential(1.0 / self.rate)
            return True
        return False


class FaultInjector:
    """Fires fault specs at scheduled points against random processes."""

    def __init__(
        self,
        program: Program,
        spec: FaultSpec,
        schedule: Schedule,
        targets: Sequence[int] | None = None,
        seed: Any = None,
        max_faults: int | None = None,
    ) -> None:
        self.program = program
        self.spec = spec
        self.schedule = schedule
        self.targets = tuple(targets) if targets is not None else tuple(
            range(program.nprocs)
        )
        if not self.targets:
            raise ValueError("fault injector needs at least one target")
        self.rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self.max_faults = max_faults
        self.count = 0

    def maybe_inject(
        self, state: State, step: int, time: float = 0.0
    ) -> Iterable[TraceEvent]:
        """Fire zero or one fault for this step; yield trace events."""
        if self.max_faults is not None and self.count >= self.max_faults:
            return
        if not self.schedule.fires(step, time, self.rng):
            return
        pid = self.targets[int(self.rng.integers(0, len(self.targets)))]
        writes = self.spec.apply(self.program, state, pid, self.rng)
        self.count += 1
        yield TraceEvent(
            step=step,
            pid=pid,
            action=f"fault:{self.spec.name}",
            updates=tuple(writes),
            time=time,
            is_fault=True,
            detectable=self.spec.detectable,
        )


class ScriptedInjector:
    """Deterministic fault injection from an explicit schedule.

    ``schedule`` is a sequence of ``(step, pid)`` pairs: the spec is
    applied to ``pid`` at the first injection opportunity at or after
    ``step``.  Unlike :class:`FaultInjector`, both the timing and the
    victims are fixed up front, which is what the cross-implementation
    conformance suite needs -- the *same* seeded schedule replayed
    against CB, RB, RB' and MB.  The spec's ``?``-randomized variables
    still draw from ``seed``.
    """

    def __init__(
        self,
        program: Program,
        spec: FaultSpec,
        schedule: Sequence[tuple[int, int]],
        seed: Any = None,
    ) -> None:
        self.program = program
        self.spec = spec
        self.schedule = sorted(schedule)
        for step, pid in self.schedule:
            if not 0 <= pid < program.nprocs:
                raise ValueError(f"scheduled fault at bad pid {pid}")
            if step < 0:
                raise ValueError(f"scheduled fault at negative step {step}")
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.count = 0
        self._next = 0

    def maybe_inject(
        self, state: State, step: int, time: float = 0.0
    ) -> Iterable[TraceEvent]:
        """Fire every scheduled fault due at or before ``step``."""
        while self._next < len(self.schedule) and self.schedule[self._next][0] <= step:
            _due, pid = self.schedule[self._next]
            self._next += 1
            writes = self.spec.apply(self.program, state, pid, self.rng)
            self.count += 1
            yield TraceEvent(
                step=step,
                pid=pid,
                action=f"fault:{self.spec.name}",
                updates=tuple(writes),
                time=time,
                is_fault=True,
                detectable=self.spec.detectable,
            )

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.schedule)


class PlanInjector:
    """Deterministic injection with a *per-event* fault spec.

    The chaos campaigns replay one serialized schedule that mixes fault
    classes (detectable resets and undetectable scrambles) in a single
    run, which :class:`ScriptedInjector` cannot express -- it carries one
    spec for the whole schedule.  ``schedule`` here is a sequence of
    ``(step, pid, spec)`` triples; each entry fires its own spec at the
    first opportunity at or after ``step``, and the emitted trace event
    is stamped with that spec's detectability.
    """

    def __init__(
        self,
        program: Program,
        schedule: Sequence[tuple[int, int, FaultSpec]],
        seed: Any = None,
    ) -> None:
        self.program = program
        self.schedule = sorted(schedule, key=lambda e: (e[0], e[1]))
        for step, pid, spec in self.schedule:
            if not 0 <= pid < program.nprocs:
                raise ValueError(f"scheduled fault at bad pid {pid}")
            if step < 0:
                raise ValueError(f"scheduled fault at negative step {step}")
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"schedule entry needs a FaultSpec, got {spec!r}")
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.count = 0
        self._next = 0

    def maybe_inject(
        self, state: State, step: int, time: float = 0.0
    ) -> Iterable[TraceEvent]:
        """Fire every scheduled fault due at or before ``step``."""
        while self._next < len(self.schedule) and self.schedule[self._next][0] <= step:
            _due, pid, spec = self.schedule[self._next]
            self._next += 1
            writes = spec.apply(self.program, state, pid, self.rng)
            self.count += 1
            yield TraceEvent(
                step=step,
                pid=pid,
                action=f"fault:{spec.name}",
                updates=tuple(writes),
                time=time,
                is_fault=True,
                detectable=spec.detectable,
            )

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.schedule)


class MultiInjector:
    """Compose several independent injectors (e.g. detectable at one rate
    and undetectable at another)."""

    def __init__(self, injectors: Sequence[FaultInjector]) -> None:
        self.injectors = list(injectors)

    def maybe_inject(
        self, state: State, step: int, time: float = 0.0
    ) -> Iterable[TraceEvent]:
        for injector in self.injectors:
            yield from injector.maybe_inject(state, step, time)

    @property
    def count(self) -> int:
        return sum(inj.count for inj in self.injectors)
