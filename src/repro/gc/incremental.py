"""Incremental guard evaluation.

Every daemon step of the naive kind re-evaluates every guard of every
process against the full state, although a step writes only a handful of
cells.  When actions declare their guard read-sets
(:attr:`repro.gc.actions.Action.reads`), enabledness can instead be
maintained *incrementally*: keep a cached enabled/disabled flag per
action, track the set of ``(variable, pid)`` cells written by the last
step, and re-evaluate only the guards whose declared read-set intersects
that dirty set.  Undeclared actions are re-evaluated every step, so the
scheme is correctness-preserving by construction: declaring nothing
degenerates to full evaluation.

Writes made behind the daemon's back (fault injectors, tests poking the
state) are detected through :attr:`repro.gc.state.State.version`: when
the observed mutation count does not match what the index recorded after
its own writes, the cache is discarded and every guard is re-evaluated.

The declaration is a purity contract (see :class:`Action`): a declared
guard must be a deterministic function of exactly its declared cells.
:func:`observed_guard_reads` evaluates a guard under a recording view so
tests can check declarations against actual behaviour.
"""

from __future__ import annotations

from bisect import insort
from typing import Any

from repro.gc.actions import Action, StateView
from repro.gc.program import Program
from repro.gc.state import State


class EnabledIndex:
    """Cached per-action enabledness with dirty-cell invalidation.

    Protocol (driven by the daemons)::

        flags = index.refresh(state, rng)   # start of step
        ... fire actions, apply updates ...
        index.note_fire(idx, updates)       # once per fired action
        index.commit(state)                 # end of step

    ``refresh`` returns a list of booleans aligned with
    :attr:`actions` (the program's actions in declaration order).
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.actions: tuple[Action, ...] = tuple(program.actions())
        n = len(self.actions)
        # Per-process slices into the flat action list (declaration order).
        by_pid: list[tuple[int, ...]] = []
        i = 0
        for proc in program.processes:
            by_pid.append(tuple(range(i, i + len(proc.actions))))
            i += len(proc.actions)
        self.by_pid: tuple[tuple[int, ...], ...] = tuple(by_pid)
        self.pid_of: tuple[int, ...] = tuple(
            a.pid for a in self.actions
        )
        # Per-action dirty cells from the declared write-set.  ``None``
        # means undeclared (derive cells from the actual update list);
        # an empty tuple means the action *declared* it writes nothing,
        # which is a first-class promise, not a missing declaration.
        self._write_cells: tuple[tuple[tuple[str, int], ...] | None, ...] = tuple(
            None
            if action.writes is None
            else tuple(sorted((var, action.pid) for var in action.writes))
            for action in self.actions
        )
        watchers: dict[tuple[str, int], list[int]] = {}
        untracked: list[int] = []
        for idx, action in enumerate(self.actions):
            if action.reads is None:
                untracked.append(idx)
                continue
            for cell in action.reads:
                watchers.setdefault(cell, []).append(idx)
        self.watchers: dict[tuple[str, int], tuple[int, ...]] = {
            cell: tuple(ix) for cell, ix in watchers.items()
        }
        self.untracked: tuple[int, ...] = tuple(untracked)
        #: True when at least one action declares a read-set -- without
        #: any declarations the cache is pure overhead and daemons fall
        #: back to plain full evaluation.
        self.has_tracked = len(untracked) < n
        self.flags: list[bool] = [False] * n
        self._stale = bytearray(b"\x01" * n)
        self._lazy_used = True
        self._state: State | None = None
        self._expected_version = -1
        self._dirty: set[tuple[str, int]] = set()
        #: Sorted indices of enabled actions, maintained across the
        #: eager :meth:`refresh` fast path so daemons read the (small)
        #: enabled set in O(#enabled) instead of scanning every flag.
        #: ``None`` means "recompute on demand" (after rebuilds or lazy
        #: :meth:`is_enabled` use, which mutate flags behind its back).
        self._enabled: list[int] | None = None

    def refresh(self, state: State, rng: Any = None) -> list[bool]:
        """Bring the enabledness flags up to date with ``state``.

        Guards are (re-)evaluated in declaration order, so any RNG
        consumption by *undeclared* guards happens in the same order as
        under full evaluation (declared guards must not draw).
        """
        actions = self.actions
        flags = self.flags
        stale_bits = self._stale
        if state is not self._state or state.version != self._expected_version:
            # First use, a different state object, or external writes:
            # rebuild from scratch.
            for idx, action in enumerate(actions):
                flags[idx] = action.enabled(state, rng)
            self._state = state
            self._enabled = None
        else:
            stale = set(self.untracked)
            watchers = self.watchers
            for cell in self._dirty:
                hit = watchers.get(cell)
                if hit is not None:
                    stale.update(hit)
            if self._lazy_used:
                # Entries left stale by earlier mark_stale()/is_enabled().
                stale.update(
                    idx for idx in range(len(stale_bits)) if stale_bits[idx]
                )
            enabled = self._enabled
            for idx in sorted(stale):
                new = actions[idx].enabled(state, rng)
                if new != flags[idx]:
                    flags[idx] = new
                    if enabled is not None:
                        if new:
                            insort(enabled, idx)
                        else:
                            enabled.remove(idx)
        if self._lazy_used:
            stale_bits[:] = bytes(len(stale_bits))
            self._lazy_used = False
        self._dirty.clear()
        self._expected_version = state.version
        return flags

    def mark_stale(self, state: State) -> None:
        """Lazy counterpart of :meth:`refresh`: *mark* what the dirty set
        invalidates instead of re-evaluating it, and let the caller pull
        individual flags through :meth:`is_enabled`.

        This is the right shape for scan-based daemons (round-robin)
        that normally touch only one or two guards per step: eagerly
        re-evaluating every watcher of a write would cost more than the
        scan itself.  Entries never visited simply stay stale until a
        scan reaches them.
        """
        stale = self._stale
        self._lazy_used = True
        if state is not self._state or state.version != self._expected_version:
            for idx in range(len(stale)):
                stale[idx] = 1
            self._state = state
        else:
            for idx in self.untracked:
                stale[idx] = 1
            watchers = self.watchers
            for cell in self._dirty:
                hit = watchers.get(cell)
                if hit is not None:
                    for idx in hit:
                        stale[idx] = 1
        self._dirty.clear()
        self._expected_version = state.version

    def is_enabled(self, idx: int, state: State, rng: Any = None) -> bool:
        """Cached enabledness of one action, re-evaluating iff stale."""
        if self._stale[idx]:
            self.flags[idx] = self.actions[idx].enabled(state, rng)
            self._stale[idx] = 0
            self._enabled = None
        return self.flags[idx]

    def enabled_slots(self) -> list[int]:
        """Indices of enabled actions, in declaration order.

        Valid only right after an eager :meth:`refresh`.  Maintained
        incrementally across refreshes (a step typically toggles one or
        two flags), recomputed in full only after rebuilds or lazy use.
        The caller must not mutate the returned list.
        """
        enabled = self._enabled
        if enabled is None:
            self._enabled = enabled = [
                idx for idx, on in enumerate(self.flags) if on
            ]
        return enabled

    def note_writes(self, pid: int, updates: Any) -> None:
        """Record the cells a fired action wrote (its dirty set)."""
        dirty = self._dirty
        for var, _value in updates:
            dirty.add((var, pid))

    def note_fire(self, idx: int, updates: Any) -> None:
        """Record the dirty cells of fired action ``idx``.

        When the action declares a write-set
        (:attr:`~repro.gc.actions.Action.writes`), its precomputed cells
        are dirtied directly and the update list is ignored -- in
        particular a declared-*empty* write-set (``frozenset()``) means
        the action promised its updates never change any cell (the
        heartbeat idiom of rewriting a value already in place), so
        firing it invalidates nothing.  Only ``writes is None`` falls
        back to scanning the actual updates.
        """
        cells = self._write_cells[idx]
        if cells is None:
            self.note_writes(self.pid_of[idx], updates)
        else:
            self._dirty.update(cells)

    def commit(self, state: State) -> None:
        """Record the post-step version so own writes don't invalidate."""
        self._expected_version = state.version


class RecordingStateView(StateView):
    """A :class:`StateView` that records every cell a guard reads.

    ``vector`` and ``any_with`` touch the whole per-process vector, so
    they record every pid's cell.  Used by tests to verify that declared
    read-sets cover actual guard behaviour.
    """

    __slots__ = ("observed",)

    def __init__(self, state: Any, pid: int, rng: Any = None) -> None:
        super().__init__(state, pid, rng)
        self.observed: set[tuple[str, int]] = set()

    def my(self, var: str) -> Any:
        self.observed.add((var, self.pid))
        return super().my(var)

    def of(self, var: str, pid: int) -> Any:
        self.observed.add((var, pid))
        return super().of(var, pid)

    def vector(self, var: str) -> tuple:
        self.observed.update((var, pid) for pid in range(self.nprocs))
        return super().vector(var)

    def any_with(self, var: str, value: Any) -> int | None:
        self.observed.update((var, pid) for pid in range(self.nprocs))
        return super().any_with(var, value)


def observed_guard_reads(
    action: Action, state: State, rng: Any = None
) -> set[tuple[str, int]]:
    """The cells ``action``'s guard actually reads in ``state``."""
    view = RecordingStateView(state, action.pid, rng)
    action.guard(view)
    return view.observed


def check_declared_reads(
    program: Program, state: State
) -> list[tuple[Action, set[tuple[str, int]]]]:
    """Return actions whose guard read cells outside their declaration.

    Each offending entry carries the undeclared cells observed in
    ``state``.  An empty list means every declared read-set covered its
    guard's behaviour *in this state* (run over many states for
    confidence; guards may read data-dependently).
    """
    offenders: list[tuple[Action, set[tuple[str, int]]]] = []
    for action in program.actions():
        if action.reads is None:
            continue
        extra = observed_guard_reads(action, state) - set(action.reads)
        if extra:
            offenders.append((action, extra))
    return offenders
