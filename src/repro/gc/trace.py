"""Execution traces.

A trace records which action fired at which process at which step (and,
for timed runs, at which virtual time), together with the writes it made.
The barrier specification oracle (:mod:`repro.barrier.spec`) consumes
traces to decide whether Safety and Progress held.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One action execution (or fault occurrence).

    ``detectable`` qualifies fault events only: injectors that mix fault
    classes in one run (the chaos campaigns) stamp each fault event with
    its own class, so downstream consumers (the structured tracer, the
    guarantee monitors) never have to guess from a single injector-wide
    spec.  ``None`` means "unspecified" -- callers fall back to the
    injector's spec, preserving the pre-chaos behaviour.
    """

    step: int
    pid: int
    action: str
    updates: tuple[tuple[str, Any], ...]
    time: float = 0.0
    is_fault: bool = False
    detectable: bool | None = None

    def wrote(self, var: str) -> bool:
        return any(name == var for name, _ in self.updates)

    def value_written(self, var: str) -> Any:
        for name, value in self.updates:
            if name == var:
                return value
        raise KeyError(f"event did not write {var!r}")


class Trace:
    """An append-only sequence of :class:`TraceEvent`."""

    def __init__(self, capacity: int | None = None) -> None:
        self._events: list[TraceEvent] = []
        self._capacity = capacity
        self._dropped = 0

    def append(self, event: TraceEvent) -> None:
        if self._capacity is not None and len(self._events) >= self._capacity:
            self._dropped += 1
            return
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        return self._events

    @property
    def dropped(self) -> int:
        """Events discarded because the capacity bound was hit."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def filter(
        self,
        *,
        pid: int | None = None,
        action: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Select events by pid, action name, and/or arbitrary predicate."""
        out = []
        for ev in self._events:
            if pid is not None and ev.pid != pid:
                continue
            if action is not None and ev.action != action:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def faults(self) -> list[TraceEvent]:
        return [ev for ev in self._events if ev.is_fault]

    def count(self, action: str) -> int:
        return sum(1 for ev in self._events if ev.action == action)


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """SHA-256 hex digest of a trace's full event sequence.

    Every field of every event enters the hash (via ``repr``, which is
    deterministic for all domain values used here -- ints, strings,
    ``BOT``/``TOP``), so two runs agree iff they fired the same actions
    at the same processes in the same order with the same writes.  This
    is the equality the differential-testing oracle demands of the
    compiled backend: not just the same final state, but the
    bit-identical execution.
    """
    h = hashlib.sha256()
    for ev in events:
        h.update(
            repr(
                (
                    ev.step,
                    ev.pid,
                    ev.action,
                    tuple(ev.updates),
                    ev.time,
                    ev.is_fault,
                    ev.detectable,
                )
            ).encode()
        )
    return h.hexdigest()
