"""Timed maximal-parallel execution.

SIEFAST associates "a real-time value with each action to model the time
required to execute that action".  We reproduce that: every action costs
a duration (looked up by the action's ``kind`` tag, overridable per
action), processes execute concurrently, and the simulator advances a
virtual clock.

Semantics
---------
Each process is either *idle* or *busy*.  An idle process whose actions
include an enabled one starts executing it immediately (first-enabled, or
a uniformly random enabled one under ``random_choice``).  The action's
statement applies **atomically at its completion instant**, provided its
guard still holds then; if the world changed and the guard is now false,
the work is wasted and the process goes idle (this is what lets failed
phase instances finish early, the effect the paper credits for the
simulated overhead in Figure 6 undercutting the analytical bound).

Simultaneous completions apply against a common snapshot, giving maximal
parallelism at equal time stamps.  Zero-duration actions are allowed but
bounded per instant to catch non-terminating instantaneous loops.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Mapping

import numpy as np

from repro.gc.actions import Action, apply_updates
from repro.gc.program import Program
from repro.gc.state import State
from repro.gc.trace import Trace, TraceEvent

DurationFn = Callable[[Action], float]

#: Default costs by action kind: "compute" models executing a phase
#: (the paper's unit time), "comm" models one message hop (latency ``c``),
#: "local" is free.
DEFAULT_KIND_COSTS: dict[str, float] = {"compute": 1.0, "comm": 0.0, "local": 0.0}

_MAX_ZERO_DURATION_ROUNDS = 10_000


def make_duration_fn(
    kind_costs: Mapping[str, float] | None = None,
) -> DurationFn:
    """Build a duration function from per-kind costs.

    An action's explicit ``duration`` attribute wins over its kind cost.
    """
    costs = dict(DEFAULT_KIND_COSTS)
    if kind_costs:
        costs.update(kind_costs)

    def duration(action: Action) -> float:
        if action.duration is not None:
            return float(action.duration)
        return float(costs.get(action.kind, 0.0))

    return duration


@dataclass
class TimedResult:
    """Outcome of a timed run."""

    state: State
    time: float
    completions: int
    stopped_by: str  # "predicate" | "silent" | "max_time"
    trace: Trace = field(default_factory=Trace)
    wasted: int = 0  # completions whose guard had become false

    @property
    def reached(self) -> bool:
        return self.stopped_by == "predicate"


class TimedSimulator:
    """Discrete-event execution of a guarded-command program."""

    def __init__(
        self,
        program: Program,
        durations: DurationFn | Mapping[str, float] | None = None,
        seed: Any = None,
        injector: Any = None,
        random_choice: bool = False,
        record_trace: bool = False,
        trace_capacity: int | None = None,
    ) -> None:
        self.program = program
        if durations is None or isinstance(durations, Mapping):
            self.duration_fn = make_duration_fn(durations)
        else:
            self.duration_fn = durations
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.injector = injector
        self.random_choice = random_choice
        self.record_trace = record_trace
        self.trace_capacity = trace_capacity

    def _pick_action(self, pid: int, state: State) -> Action | None:
        enabled = [
            a
            for a in self.program.processes[pid].actions
            if a.enabled(state, self.rng)
        ]
        if not enabled:
            return None
        if self.random_choice and len(enabled) > 1:
            return enabled[int(self.rng.integers(0, len(enabled)))]
        return enabled[0]

    def run(
        self,
        state: State | None = None,
        max_time: float = 1_000.0,
        stop: Callable[[State, float], bool] | None = None,
    ) -> TimedResult:
        if state is None:
            state = self.program.initial_state()
        trace = Trace(self.trace_capacity)
        n = self.program.nprocs

        # Per-process status: None when idle, else the in-flight action.
        in_flight: list[Action | None] = [None] * n
        heap: list[tuple[float, int, int]] = []  # (finish, tiebreak, pid)
        tick = count()
        now = 0.0
        completions = 0
        wasted = 0
        zero_rounds = 0

        def start_idle_processes() -> bool:
            """Start actions for all idle processes; True if any started."""
            started = False
            for pid in range(n):
                if in_flight[pid] is not None:
                    continue
                action = self._pick_action(pid, state)
                if action is None:
                    continue
                in_flight[pid] = action
                finish = now + self.duration_fn(action)
                heapq.heappush(heap, (finish, next(tick), pid))
                started = True
            return started

        if stop is not None and stop(state, now):
            return TimedResult(state, now, 0, "predicate", trace)

        start_idle_processes()
        while heap:
            finish, _, _ = heap[0]
            if finish > max_time:
                return TimedResult(
                    state, max_time, completions, "max_time", trace, wasted
                )
            if finish > now:
                now = finish
                zero_rounds = 0
            else:
                zero_rounds += 1
                if zero_rounds > _MAX_ZERO_DURATION_ROUNDS:
                    raise RuntimeError(
                        "instantaneous action loop: >10000 zero-duration "
                        "completions at one time stamp"
                    )

            if self.injector is not None:
                for ev in self.injector.maybe_inject(state, completions, now):
                    if self.record_trace:
                        trace.append(ev)

            # Gather all completions at this instant; evaluate against a
            # common snapshot (maximal parallelism at equal timestamps).
            batch: list[int] = []
            while heap and heap[0][0] <= now:
                _, _, pid = heapq.heappop(heap)
                batch.append(pid)
            snapshot = state.snapshot()
            for pid in batch:
                action = in_flight[pid]
                in_flight[pid] = None
                assert action is not None
                if action.enabled(snapshot, self.rng):
                    ups = action.updates(snapshot, self.rng)
                    apply_updates(state, pid, ups)
                    completions += 1
                    if self.record_trace:
                        trace.append(
                            TraceEvent(
                                step=completions,
                                pid=pid,
                                action=action.name,
                                updates=tuple(ups),
                                time=now,
                            )
                        )
                else:
                    wasted += 1

            if stop is not None and stop(state, now):
                return TimedResult(state, now, completions, "predicate", trace, wasted)

            start_idle_processes()

        return TimedResult(state, now, completions, "silent", trace, wasted)
