"""Program MB -- the message-passing refinement (Section 5).

Each action now instantaneously either *reads one neighbour* or *updates
its own state*, never both, which is implementable with messages.  To
get there, every ring process ``j`` keeps local copies of its
predecessor's variables (``lsn_prev``, ``lcp_prev``, ``lph_prev``,
mirroring ``sn.(j-1)``, ``cp.(j-1)``, ``ph.(j-1)``) and of its
successor's sequence number (``lsn_next``, which only ever tracks TOP).

The local-copy cell behaves exactly like a virtual ring process wedged
between ``j-1`` and ``j`` ("the resulting local copy update action is
identical to the superposed action T2 at a non-0 process"), which is why
the paper proves MB's computations equivalent to RB on a ring of
``2(N+1)`` processes, and why the sequence-number domain widens to
``L > 2N + 1``.

Actions at process ``j``:

* ``CPREV`` -- copy the predecessor (guard: ``sn.(j-1)`` ordinary and
  ``lsn_prev.j != sn.(j-1)``); applies the follower update to the copy
  cell (``lsn_prev := sn.(j-1)``, ``lph_prev := ph.(j-1)``, ``lcp_prev``
  stepped by the RB follower rules against ``cp.(j-1)``);
* ``T1`` (j = 0) -- as in RB but against the local copies;
* ``T2`` (j != 0) -- as in RB but against the local copies;
* ``T3`` (j = N) -- ``sn.N = BOT -> sn.N := TOP`` (reads own state);
* ``T4`` (j != N) -- ``sn.j = BOT and lsn_next.j = TOP -> sn.j := TOP``;
* ``CNEXT`` (j != N) -- ``sn.(j+1) = TOP and lsn_next.j != TOP ->
  lsn_next.j := TOP``;
* ``T5`` (j = 0) -- ``sn.0 = TOP -> sn.0 := 0``.

Fault actions additionally hit the local copies: a detectable fault at
``j`` sets ``lsn_prev.j`` and ``lsn_next.j`` to BOT, ``lcp_prev.j`` to
error and ``lph_prev.j`` arbitrary (this reset is what keeps stale TOP
copies from ever mis-firing T4); an undetectable fault randomizes
everything.
"""

from __future__ import annotations

from typing import Any

from repro.barrier.control import CP, RB_CP_DOMAIN
from repro.gc.actions import Action, StateView
from repro.gc.domains import BOT, TOP, IntRange, SequenceNumberDomain
from repro.gc.faults import FaultSpec
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State


def _ordinary(value: Any) -> bool:
    return value is not BOT and value is not TOP


def _follower_cp(current: Any, upstream: Any) -> Any | None:
    """The RB follower control-position rules; ``None`` means no change."""
    if current is CP.READY and upstream is CP.EXECUTE:
        return CP.EXECUTE
    if current is CP.EXECUTE and upstream is CP.SUCCESS:
        return CP.SUCCESS
    if current is not CP.EXECUTE and upstream is CP.READY:
        return CP.READY
    if current is CP.ERROR or upstream is not current:
        return CP.REPEAT
    return None


def _make_cprev(pred: int):
    """Copy-predecessor action (the virtual ring process)."""

    def guard(view: StateView) -> bool:
        psn = view.of("sn", pred)
        return _ordinary(psn) and view.my("lsn_prev") != psn

    def stmt(view: StateView):
        updates: list[tuple[str, Any]] = [
            ("lsn_prev", view.of("sn", pred)),
            ("lph_prev", view.of("ph", pred)),
        ]
        new_cp = _follower_cp(view.my("lcp_prev"), view.of("cp", pred))
        if new_cp is not None:
            updates.append(("lcp_prev", new_cp))
        return updates

    return guard, stmt


def _make_t1(domain: SequenceNumberDomain, nphases: int):
    """Process 0's token receipt, against its local copies of N."""

    def guard(view: StateView) -> bool:
        lsn = view.my("lsn_prev")
        if not _ordinary(lsn):
            return False
        mine = view.my("sn")
        return mine == lsn or not _ordinary(mine)

    def stmt(view: StateView):
        updates: list[tuple[str, Any]] = [("sn", domain.succ(view.my("lsn_prev")))]
        cp0 = view.my("cp")
        ph0 = view.my("ph")
        lcp = view.my("lcp_prev")
        lph = view.my("lph_prev")
        if cp0 is CP.READY and lcp is CP.READY and lph == ph0:
            updates.append(("cp", CP.EXECUTE))
        elif cp0 is CP.EXECUTE:
            updates.append(("cp", CP.SUCCESS))
        elif cp0 is CP.SUCCESS:
            if lcp is CP.SUCCESS and lph == ph0:
                updates.append(("ph", (ph0 + 1) % nphases))
            else:
                updates.append(("ph", lph))
            updates.append(("cp", CP.READY))
        elif cp0 is CP.ERROR or cp0 is CP.REPEAT:
            updates.append(("ph", lph))
            updates.append(("cp", CP.READY))
        return updates

    return guard, stmt


def _make_t2():
    """A follower's token receipt, against its local copies."""

    def guard(view: StateView) -> bool:
        lsn = view.my("lsn_prev")
        return _ordinary(lsn) and view.my("sn") != lsn

    def stmt(view: StateView):
        updates: list[tuple[str, Any]] = [
            ("sn", view.my("lsn_prev")),
            ("ph", view.my("lph_prev")),
        ]
        new_cp = _follower_cp(view.my("cp"), view.my("lcp_prev"))
        if new_cp is not None:
            updates.append(("cp", new_cp))
        return updates

    return guard, stmt


def _t3_guard(view: StateView) -> bool:
    return view.my("sn") is BOT


def _t3_stmt(view: StateView):
    return [("sn", TOP)]


def _t4_guard(view: StateView) -> bool:
    return view.my("sn") is BOT and view.my("lsn_next") is TOP


def _t4_stmt(view: StateView):
    return [("sn", TOP)]


def _make_cnext(succ: int):
    def guard(view: StateView) -> bool:
        return view.of("sn", succ) is TOP and view.my("lsn_next") is not TOP

    def stmt(view: StateView):
        return [("lsn_next", TOP)]

    return guard, stmt


def _t5_guard(view: StateView) -> bool:
    return view.my("sn") is TOP


def _t5_stmt(view: StateView):
    return [("sn", 0)]


def make_mb(nprocs: int, nphases: int = 2, l_domain: int | None = None) -> Program:
    """Build program MB on a ring of ``nprocs`` processes.

    ``l_domain`` defaults to ``2 * nprocs`` (the paper requires
    ``L > 2N + 1`` with ``N = nprocs - 1``, i.e. ``L >= 2 * nprocs``).
    """
    if nprocs < 2:
        raise ValueError("MB needs at least 2 processes")
    if nphases < 2:
        raise ValueError("MB needs >= 2 phases (replicate a single phase)")
    L = l_domain if l_domain is not None else 2 * nprocs
    if L < 2 * nprocs:
        raise ValueError(f"need L >= {2 * nprocs} (L > 2N+1), got {L}")
    domain = SequenceNumberDomain(L)
    last = nprocs - 1

    declarations = [
        VariableDecl("sn", domain, 0),
        VariableDecl("cp", RB_CP_DOMAIN, CP.READY),
        VariableDecl("ph", IntRange(0, nphases - 1), 0),
        VariableDecl("lsn_prev", domain, 0),
        VariableDecl("lcp_prev", RB_CP_DOMAIN, CP.READY),
        VariableDecl("lph_prev", IntRange(0, nphases - 1), 0),
        VariableDecl("lsn_next", domain, 0),
    ]

    processes = []
    for j in range(nprocs):
        pred = (j - 1) % nprocs
        succ = (j + 1) % nprocs
        actions: list[Action] = []
        # MB's guards each touch at most two cells -- its own sn plus one
        # local copy, or one neighbour's sn -- exactly the message-passing
        # locality Section 5 refines towards; the declarations make MB
        # the best case for incremental evaluation.
        if j == 0:
            g, s = _make_t1(domain, nphases)
            actions.append(
                Action(
                    "T1", j, g, s, kind="local",
                    reads=frozenset([("lsn_prev", j), ("sn", j)]),
                    writes=frozenset(("sn", "cp", "ph")),
                )
            )
            actions.append(
                Action(
                    "T5", j, _t5_guard, _t5_stmt, kind="local",
                    reads=frozenset([("sn", j)]),
                    writes=frozenset(("sn",)),
                )
            )
        else:
            g, s = _make_t2()
            actions.append(
                Action(
                    "T2", j, g, s, kind="local",
                    reads=frozenset([("lsn_prev", j), ("sn", j)]),
                    writes=frozenset(("sn", "cp", "ph")),
                )
            )
        if j == last:
            actions.append(
                Action(
                    "T3", j, _t3_guard, _t3_stmt, kind="local",
                    reads=frozenset([("sn", j)]),
                    writes=frozenset(("sn",)),
                )
            )
        else:
            actions.append(
                Action(
                    "T4", j, _t4_guard, _t4_stmt, kind="local",
                    reads=frozenset([("sn", j), ("lsn_next", j)]),
                    writes=frozenset(("sn",)),
                )
            )
            g, s = _make_cnext(succ)
            actions.append(
                Action(
                    "CNEXT", j, g, s, kind="comm",
                    reads=frozenset([("sn", succ), ("lsn_next", j)]),
                    writes=frozenset(("lsn_next",)),
                )
            )
        g, s = _make_cprev(pred)
        actions.append(
            Action(
                "CPREV", j, g, s, kind="comm",
                reads=frozenset([("sn", pred), ("lsn_prev", j)]),
                writes=frozenset(("lsn_prev", "lph_prev", "lcp_prev")),
            )
        )
        processes.append(Process(j, tuple(actions)))

    def initial(program: Program) -> State:
        return State.uniform(
            program,
            sn=0,
            cp=CP.READY,
            ph=0,
            lsn_prev=0,
            lcp_prev=CP.READY,
            lph_prev=0,
            lsn_next=0,
        )

    return Program(
        "MB(ring)",
        declarations,
        processes,
        initial_state=initial,
        metadata={
            "family": "mb",
            "nphases": nphases,
            "sn_domain": domain,
        },
    )


def mb_detectable_fault() -> FaultSpec:
    """Detectable fault for MB: resets the process *and* its copies."""
    return FaultSpec(
        name="mb-detectable",
        resets={
            "cp": CP.ERROR,
            "sn": BOT,
            "lsn_prev": BOT,
            "lsn_next": BOT,
            "lcp_prev": CP.ERROR,
        },
        randomized=("ph", "lph_prev"),
        detectable=True,
    )


def mb_undetectable_fault() -> FaultSpec:
    """Undetectable fault for MB: randomizes everything at the process."""
    return FaultSpec(
        name="mb-undetectable",
        randomized=(
            "sn",
            "cp",
            "ph",
            "lsn_prev",
            "lcp_prev",
            "lph_prev",
            "lsn_next",
        ),
        detectable=False,
    )
