"""The paper's programs in the guarded-command notation, as text.

These are transcriptions of the displayed programs of Sections 3 and
4.1 into the ASCII notation of :mod:`repro.gc.notation`; the test-suite
proves the compiled programs transition-for-transition equivalent to
the hand-built ones in :mod:`repro.barrier.cb` and
:mod:`repro.barrier.tokenring`.

Two deliberate deviations (see EXPERIMENTS.md, "Reproduction notes"):
CB4's second branch uses the existential reading the paper's prose
dictates, and its no-witness fallback (the paper's "arbitrary number")
is pinned to 0 so the compiled and hand-built programs agree
deterministically.
"""

from __future__ import annotations

from repro.barrier.control import CP
from repro.gc.notation import compile_program
from repro.gc.program import Program

CB_SOURCE = """
program CB
param n
var cp : enum(ready, execute, success, error) = ready
var ph : int[0, n - 1] = 0

# CB1: begin executing once everyone is ready (or someone already runs).
action CB1 :: cp.j = ready and
    ((forall k : cp.k = ready) or (exists k : cp.k = execute)) ->
    cp.j := execute

# CB2: complete only after every process has started (no one ready).
action CB2 :: cp.j = execute and
    ((forall k : cp.k != ready) or (exists k : cp.k = success)) ->
    cp.j := success

# CB3: hand over to the next phase, or re-execute after a fault.
action CB3 :: cp.j = success and (forall k : cp.k != execute) ->
    if (exists k : cp.k = ready) then
        ph.j := any k : cp.k = ready : ph.k
    elif (forall k : cp.k = success) then
        ph.j := (ph.j + 1) % n
    fi;
    cp.j := ready

# CB4: recover a detectably corrupted process.
action CB4 :: cp.j = error and (forall k : cp.k != execute) ->
    if (exists k : cp.k = ready) then
        ph.j := any k : cp.k = ready : ph.k
    else
        ph.j := any k : cp.k = success : ph.k default 0
    fi;
    cp.j := ready

# The Section 3 fault actions.
fault detectable :: ph.j := ?; cp.j := error
fault undetectable :: ph.j := ?; cp.j := ?
"""

TOKEN_RING_SOURCE = """
program TokenRing
param K
var sn : seq(K) = 0

# T1: process 0 creates the next token.
action T1 [j = 0] :: sn.N != BOT and sn.N != TOP and
    (sn.j = sn.N or sn.j = BOT or sn.j = TOP) ->
    sn.j := (sn.N + 1) % K

# T2: pass the token along the ring.
action T2 [j != 0] :: sn.(j - 1) != BOT and sn.(j - 1) != TOP and
    sn.j != sn.(j - 1) ->
    sn.j := sn.(j - 1)

# T3/T4/T5: flush a fully corrupted ring through TOP.
action T3 [j = N] :: sn.j = BOT -> sn.j := TOP
action T4 [j != N] :: sn.j = BOT and sn.(j + 1) = TOP -> sn.j := TOP
action T5 [j = 0] :: sn.j = TOP -> sn.j := 0
"""

RB_SOURCE = """
program RB
param n
param K
var sn : seq(K) = 0
var cp : enum(ready, execute, success, error, repeat) = ready
var ph : int[0, n - 1] = 0

# Token receipt at process 0, with the superposed cp/ph update.
action T1 [j = 0] :: sn.N != BOT and sn.N != TOP and
    (sn.j = sn.N or sn.j = BOT or sn.j = TOP) ->
    sn.j := (sn.N + 1) % K;
    if cp.j = ready and cp.N = ready and ph.j = ph.N then
        cp.j := execute
    elif cp.j = execute then
        cp.j := success
    elif cp.j = success then
        if cp.N = success and ph.j = ph.N then
            ph.j := (ph.j + 1) % n; cp.j := ready
        else
            ph.j := ph.N; cp.j := ready
        fi
    elif cp.j = error or cp.j = repeat then
        ph.j := ph.N; cp.j := ready
    fi

# Token receipt at a follower, with the superposed cp/ph update.
action T2 [j != 0] :: sn.(j - 1) != BOT and sn.(j - 1) != TOP and
    sn.j != sn.(j - 1) ->
    sn.j := sn.(j - 1);
    ph.j := ph.(j - 1);
    if cp.j = ready and cp.(j - 1) = execute then cp.j := execute
    elif cp.j = execute and cp.(j - 1) = success then cp.j := success
    elif cp.j != execute and cp.(j - 1) = ready then cp.j := ready
    elif cp.j = error or cp.(j - 1) != cp.j then cp.j := repeat
    fi

action T3 [j = N] :: sn.j = BOT -> sn.j := TOP
action T4 [j != N] :: sn.j = BOT and sn.(j + 1) = TOP -> sn.j := TOP
action T5 [j = 0] :: sn.j = TOP -> sn.j := 0

# The Section 4.1 fault actions.
fault detectable :: ph.j := ?; cp.j := error; sn.j := BOT
fault undetectable :: ph.j := ?; cp.j := ?; sn.j := ?
"""

MB_SOURCE = """
program MB
param n
param L
var sn : seq(L) = 0
var cp : enum(ready, execute, success, error, repeat) = ready
var ph : int[0, n - 1] = 0
var lsn_prev : seq(L) = 0
var lcp_prev : enum(ready, execute, success, error, repeat) = ready
var lph_prev : int[0, n - 1] = 0
var lsn_next : seq(L) = 0

# Token receipt at 0, against the local copies of process N's state.
action T1 [j = 0] :: lsn_prev.j != BOT and lsn_prev.j != TOP and
    (sn.j = lsn_prev.j or sn.j = BOT or sn.j = TOP) ->
    sn.j := (lsn_prev.j + 1) % L;
    if cp.j = ready and lcp_prev.j = ready and lph_prev.j = ph.j then
        cp.j := execute
    elif cp.j = execute then
        cp.j := success
    elif cp.j = success then
        if lcp_prev.j = success and lph_prev.j = ph.j then
            ph.j := (ph.j + 1) % n; cp.j := ready
        else
            ph.j := lph_prev.j; cp.j := ready
        fi
    elif cp.j = error or cp.j = repeat then
        ph.j := lph_prev.j; cp.j := ready
    fi

# Token receipt at a follower, against its local copies.
action T2 [j != 0] :: lsn_prev.j != BOT and lsn_prev.j != TOP and
    sn.j != lsn_prev.j ->
    sn.j := lsn_prev.j;
    ph.j := lph_prev.j;
    if cp.j = ready and lcp_prev.j = execute then cp.j := execute
    elif cp.j = execute and lcp_prev.j = success then cp.j := success
    elif cp.j != execute and lcp_prev.j = ready then cp.j := ready
    elif cp.j = error or lcp_prev.j != cp.j then cp.j := repeat
    fi

# The local-copy cell: "identical to the superposed action T2 at a
# non-0 process" -- the virtual process of the 2(N+1) ring.
action CPREV :: sn.(j - 1) != BOT and sn.(j - 1) != TOP and
    lsn_prev.j != sn.(j - 1) ->
    lsn_prev.j := sn.(j - 1);
    lph_prev.j := ph.(j - 1);
    if lcp_prev.j = ready and cp.(j - 1) = execute then lcp_prev.j := execute
    elif lcp_prev.j = execute and cp.(j - 1) = success then lcp_prev.j := success
    elif lcp_prev.j != execute and cp.(j - 1) = ready then lcp_prev.j := ready
    elif lcp_prev.j = error or cp.(j - 1) != lcp_prev.j then lcp_prev.j := repeat
    fi

action T3 [j = N] :: sn.j = BOT -> sn.j := TOP
action T4 [j != N] :: sn.j = BOT and lsn_next.j = TOP -> sn.j := TOP
action CNEXT [j != N] :: sn.(j + 1) = TOP and lsn_next.j != TOP ->
    lsn_next.j := TOP
action T5 [j = 0] :: sn.j = TOP -> sn.j := 0

# The Section 5 fault actions (a detectable fault also resets the
# struck process's local copies).
fault detectable :: ph.j := ?; cp.j := error; sn.j := BOT;
    lsn_prev.j := BOT; lsn_next.j := BOT; lcp_prev.j := error;
    lph_prev.j := ?
fault undetectable :: ph.j := ?; cp.j := ?; sn.j := ?;
    lsn_prev.j := ?; lsn_next.j := ?; lcp_prev.j := ?; lph_prev.j := ?
"""

#: Literal bindings so the compiled CB shares value identities with the
#: hand-built one.
CP_LITERALS = {
    "ready": CP.READY,
    "execute": CP.EXECUTE,
    "success": CP.SUCCESS,
    "error": CP.ERROR,
    "repeat": CP.REPEAT,
}


def compile_cb(nprocs: int, nphases: int = 2) -> Program:
    """Compile the textual CB for ``nprocs`` processes."""
    return compile_program(
        CB_SOURCE,
        nprocs=nprocs,
        params={"n": nphases},
        literal_values=CP_LITERALS,
    )


def compile_token_ring(nprocs: int, k: int | None = None) -> Program:
    """Compile the textual token ring for ``nprocs`` processes."""
    return compile_program(
        TOKEN_RING_SOURCE,
        nprocs=nprocs,
        params={"K": k if k is not None else nprocs + 1},
    )


def compile_rb(nprocs: int, nphases: int = 2, k: int | None = None) -> Program:
    """Compile the textual RB (ring topology) for ``nprocs`` processes."""
    return compile_program(
        RB_SOURCE,
        nprocs=nprocs,
        params={"n": nphases, "K": k if k is not None else nprocs + 1},
        literal_values=CP_LITERALS,
    )


def compile_mb(nprocs: int, nphases: int = 2, l_domain: int | None = None) -> Program:
    """Compile the textual MB for ``nprocs`` processes."""
    return compile_program(
        MB_SOURCE,
        nprocs=nprocs,
        params={
            "n": nphases,
            "L": l_domain if l_domain is not None else 2 * nprocs,
        },
        literal_values=CP_LITERALS,
    )
