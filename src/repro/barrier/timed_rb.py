"""Timed execution of the literal RB program (SIEFAST-style).

The performance study (Section 6) attaches real-time values to the
actions of RB and simulates it.  :mod:`repro.protosim` reproduces that
with a dedicated event model; this module closes the loop from the
other side: it takes the *guarded-command RB itself*, superposes the
phase work explicitly, and runs it in the generic
:class:`~repro.gc.timed.TimedSimulator` -- so the timing predictions can
be cross-validated against both the analytical model and the protocol
simulator from the paper's actual program text.

The work superposition: each process gets a ``work`` variable
(``idle -> pending -> done``).  Entering ``execute`` sets it to
``pending``; a WORK action (duration: the unit phase time) completes
it; and the token action that would move the process out of
``execute`` is gated on ``work = done`` -- the token waits for the
phase's computation, which is precisely how the ``1 + 3hc`` timing
arises on a ring of height ``h = N - 1`` hops... with the ring's three
circulations costing ``(N-1)c`` each from process 0's perspective plus
the unit of work.
"""

from __future__ import annotations

from typing import Any

from repro.barrier.control import CP
from repro.barrier.rb import make_rb
from repro.gc.actions import Action, StateView
from repro.gc.domains import EnumDomain
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State
from repro.gc.timed import TimedResult, TimedSimulator

WORK_DOMAIN = EnumDomain(("idle", "pending", "done"))


def make_timed_rb(
    nprocs: int | None = None,
    nphases: int = 2,
    k: int | None = None,
    topology=None,
) -> Program:
    """RB with explicit phase work, ready for timed execution.

    Defaults to a ring; pass a :class:`~repro.topology.graphs.Topology`
    for the tree refinements.  Action kinds: T1/T2 are ``comm`` (cost:
    the latency ``c``); the superposed WORK action is ``compute`` (cost:
    the unit phase time); T3/T4/T5 are ``local`` (free).
    """
    base = make_rb(nprocs, topology=topology, nphases=nphases, k=k)
    nprocs = base.nprocs

    def make_gated(action: Action) -> Action:
        """Gate a token action: while this process is in execute with
        unfinished work, it holds the token."""

        def guard(view: StateView, _g=action.guard) -> bool:
            if view.my("cp") is CP.EXECUTE and view.my("work") != "done":
                return False
            return _g(view)

        def stmt(view: StateView, _s=action.statement):
            updates = list(_s(view))
            new_cp = dict(updates).get("cp")
            if new_cp is CP.EXECUTE:
                updates.append(("work", "pending"))
            elif new_cp is not None:
                updates.append(("work", "idle"))
            return updates

        return Action(action.name, action.pid, guard, stmt, kind="comm")

    def work_guard(view: StateView) -> bool:
        if view.my("work") == "pending":
            return True
        # Stabilizing rule: an undetectable fault can strand a process
        # in execute with work = idle, which would deadlock the token
        # gate; treat that as work still owed.
        return view.my("cp") is CP.EXECUTE and view.my("work") == "idle"

    def work_stmt(view: StateView):
        return [("work", "done")]

    processes = []
    for proc in base.processes:
        actions = []
        for action in proc.actions:
            if action.name in ("T1", "T2"):
                actions.append(make_gated(action))
            else:
                actions.append(action)
        actions.append(
            Action("WORK", proc.pid, work_guard, work_stmt, kind="compute")
        )
        processes.append(Process(proc.pid, tuple(actions)))

    declarations = list(base.declarations) + [
        VariableDecl("work", WORK_DOMAIN, "idle")
    ]

    base_initial = base.initial_state

    def initial(program: Program) -> State:
        b = base_initial()
        vectors = {v: list(b.vector(v)) for v in b.variables}
        vectors["work"] = ["idle"] * program.nprocs
        return State(vectors, program.nprocs)

    return Program(
        f"TimedRB({base.metadata['topology'].name}-{nprocs})",
        declarations,
        processes,
        initial_state=initial,
        metadata=dict(base.metadata),
    )


def run_timed_rb(
    nprocs: int,
    latency: float,
    phases: int,
    nphases: int = 4,
    work_time: float = 1.0,
    seed: int | None = 0,
    injector: Any = None,
    max_time: float = 100_000.0,
) -> tuple[TimedResult, Program]:
    """Run the timed RB until process 0 completes ``phases`` barriers.

    Returns the timed result and the program (for trace analysis).
    Phase completions are counted as process 0's phase increments, read
    from the recorded trace by :func:`completed_phases`.
    """
    program = make_timed_rb(nprocs, nphases=nphases)
    sim = TimedSimulator(
        program,
        durations={"comm": latency, "compute": work_time, "local": 0.0},
        seed=seed,
        injector=injector,
        record_trace=True,
    )
    target = phases

    counter = {"count": 0, "last_ph": 0}

    def stop(state: State, _now: float) -> bool:
        ph0 = state.get("ph", 0)
        if ph0 != counter["last_ph"]:
            # Process 0's phase changed; count forward steps only.
            if ph0 == (counter["last_ph"] + 1) % nphases:
                counter["count"] += 1
            counter["last_ph"] = ph0
        return counter["count"] >= target

    result = sim.run(max_time=max_time, stop=stop)
    return result, program


def timed_recovery(
    nprocs: int,
    latency: float,
    trials: int = 20,
    nphases: int = 4,
    work_time: float = 1.0,
    topology=None,
    seed: int = 0,
    max_time: float = 200.0,
) -> list[float]:
    """Figure 7 cross-check from the literal program: perturb the timed
    RB to an arbitrary state and measure virtual time to a start state.

    Returns the per-trial recovery times.  Unlike the protocol
    simulator's recovery experiment there is no separate stage-1 charge:
    the sequence-number stabilization happens *inside* the run, priced
    by the same ``comm`` action costs.
    """
    import numpy as np

    from repro.barrier.legitimacy import rb_start_state

    program = make_timed_rb(nprocs, nphases=nphases, topology=topology)
    topo = program.metadata["topology"]
    k = program.metadata["sn_domain"].k
    times: list[float] = []
    base = np.random.SeedSequence(seed)
    for child in base.spawn(trials):
        trial_seed = int(child.generate_state(1)[0])
        rng = np.random.default_rng(trial_seed)
        state = program.arbitrary_state(rng)
        sim = TimedSimulator(
            program,
            durations={"comm": latency, "compute": work_time, "local": 0.0},
            seed=trial_seed,
        )
        result = sim.run(
            state,
            max_time=max_time,
            stop=lambda s, _t: rb_start_state(s, topo, k),
        )
        if not result.reached:  # pragma: no cover - stabilization guard
            raise AssertionError(
                f"timed RB did not recover (nprocs={nprocs}, "
                f"c={latency}, seed={trial_seed})"
            )
        times.append(result.time)
    return times


def completed_phases(result: TimedResult, nphases: int) -> int:
    """Process 0's forward phase increments in a timed trace."""
    count = 0
    last = 0
    for ev in result.trace.filter(pid=0):
        for var, value in ev.updates:
            if var == "ph":
                if value == (last + 1) % nphases:
                    count += 1
                last = value
    return count
