"""The barrier-synchronization specification oracle (Section 2).

The specification:

* **Safety** -- execution of ``phase.(i+1)`` begins only after ``phase.i``
  is executed successfully;
* **Progress** -- eventually ``phase.i`` is executed successfully;

where *an instance of phase.i is executed* iff some process starts
executing phase.i and each process executes it at most once in that
instance; an instance is *executed successfully* iff all processes
execute the phase fully in it; and *phase.i is executed successfully* iff
one or more instances execute in sequence, the last successfully.

The oracle replays a trace (action events and fault events) on top of the
initial state, watches each process's ``cp`` transitions, reconstructs
phase instances, and reports:

* safety violations: ``overlap`` (two instances of a phase overlap, i.e.
  a new instance starts while a process is still executing the previous
  one) and ``wrong-phase`` (an instance of a phase other than the
  expected one begins);
* the instance log: which phases executed, how many instances each took,
  and which completed successfully (Progress is then a statement about
  the count of successful instances);
* the set of phase values executed incorrectly -- the quantity bounded by
  ``m`` in Lemma 3.4.

Instances are never *caused* to fail by the oracle; a phase instance that
closes without all processes completing is merely unsuccessful, which the
specification permits as long as a successful instance eventually follows
(that is exactly the masking behaviour under detectable faults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.barrier.control import CP
from repro.gc.state import State
from repro.gc.trace import Trace, TraceEvent


@dataclass
class Violation:
    """One detected specification violation."""

    kind: str  # "overlap" | "wrong-phase"
    step: int
    pid: int
    phase: int
    detail: str = ""


@dataclass
class InstanceRecord:
    """One reconstructed phase instance."""

    phase: int
    open_step: int
    started: set[int] = field(default_factory=set)
    completed: set[int] = field(default_factory=set)
    close_step: int | None = None
    successful: bool = False
    flagged: bool = False  # a violation was recorded at/for this instance


@dataclass
class SpecReport:
    """Result of checking one trace against the specification."""

    nprocs: int
    nphases: int
    instances: list[InstanceRecord]
    violations: list[Violation]

    def violations_after(self, step: int) -> list[Violation]:
        return [v for v in self.violations if v.step > step]

    @property
    def safety_ok(self) -> bool:
        return not self.violations

    def safety_ok_after(self, step: int) -> bool:
        return not self.violations_after(step)

    @property
    def successful_instances(self) -> list[InstanceRecord]:
        return [inst for inst in self.instances if inst.successful]

    @property
    def phases_completed(self) -> int:
        """Number of successful instances (successful phase executions)."""
        return len(self.successful_instances)

    @property
    def incorrect_phase_values(self) -> set[int]:
        """Distinct phase numbers executed incorrectly (Lemma 3.4's bound)."""
        return {inst.phase for inst in self.instances if inst.flagged}

    def instances_per_phase(self) -> dict[int, list[int]]:
        """For each successful phase occurrence, how many instances ran.

        Returns ``{occurrence_index: instance_count}``-style data keyed by
        position in the successful sequence; used by the Figure 3/5 style
        measurements on the guarded-command programs.
        """
        counts: dict[int, list[int]] = {}
        run = 0
        occurrence = 0
        for inst in self.instances:
            run += 1
            if inst.successful:
                counts.setdefault(occurrence, []).append(run)
                occurrence += 1
                run = 0
        return counts


class BarrierSpecChecker:
    """Replay-based specification oracle.

    Parameters
    ----------
    nprocs, nphases:
        Shape of the program under check.
    cp_var, ph_var:
        Variable names carrying the control position and phase.
    """

    def __init__(
        self,
        nprocs: int,
        nphases: int,
        cp_var: str = "cp",
        ph_var: str = "ph",
    ) -> None:
        self.nprocs = nprocs
        self.nphases = nphases
        self.cp_var = cp_var
        self.ph_var = ph_var

    # ------------------------------------------------------------------
    def check(
        self, trace: Trace | Iterable[TraceEvent], initial_state: State | None = None
    ) -> SpecReport:
        """Replay ``trace`` and return a :class:`SpecReport`.

        ``initial_state`` anchors the replay; when omitted, a canonical
        start state (all ready, phase 0) is assumed, which matches the
        programs' default initial states.
        """
        cp: list[Any]
        ph: list[int]
        if initial_state is not None:
            cp = [initial_state.get(self.cp_var, p) for p in range(self.nprocs)]
            ph = [initial_state.get(self.ph_var, p) for p in range(self.nprocs)]
        else:
            cp = [CP.READY] * self.nprocs
            ph = [0] * self.nprocs

        events = list(trace)
        instances: list[InstanceRecord] = []
        violations: list[Violation] = []
        executing: set[int] = set()
        open_inst: InstanceRecord | None = None

        # Phase-order tracking.  ``current`` is the phase whose instance
        # may legally run next (re-execution is always legal; advancing
        # to ``current + 1`` is legal only after a successful instance of
        # ``current`` -- "the last instance of which is executed
        # successfully").  Anchored when the start state is clean,
        # floating otherwise (perturbed starts).
        current: int | None = None
        last_successful = False
        if all(c is CP.READY for c in cp) and len(set(ph)) == 1:
            # "Initially, phase.(n-1) has executed successfully and each
            # process is thus ready to execute phase.0": the common phase
            # is the one whose instance may legally open first.
            current = ph[0]

        def close_open(step: int) -> None:
            nonlocal open_inst, current, last_successful
            if open_inst is None:
                return
            open_inst.close_step = step
            open_inst.successful = (
                len(open_inst.completed) == self.nprocs
            )
            current = open_inst.phase
            last_successful = open_inst.successful
            instances.append(open_inst)
            open_inst = None

        def legal_open(phase: int) -> bool:
            if current is None:
                return True
            if phase == current:
                return True  # re-execution of the current phase
            return phase == (current + 1) % self.nphases and last_successful

        def start_execution(pid: int, phase: int, step: int) -> None:
            nonlocal open_inst, current, last_successful
            if (
                open_inst is not None
                and open_inst.phase == phase
                and pid not in open_inst.started
                and executing
            ):
                # A late joiner of the still-running instance.  (If no
                # process is executing any more, the instance is over: in
                # CB a process can only reach execute again through an
                # all-ready start state, and in RB/MB through a fresh
                # execute wave from process 0 -- so this is a new
                # instance, handled below.)
                open_inst.started.add(pid)
                executing.add(pid)
                return
            # A new instance begins (same phase re-executed by a process
            # that already participated, or a different phase).
            overlap_with = executing - {pid}
            if open_inst is not None and overlap_with:
                v = Violation(
                    kind="overlap",
                    step=step,
                    pid=pid,
                    phase=phase,
                    detail=(
                        f"instance of phase {phase} begins while "
                        f"{sorted(overlap_with)} still execute phase "
                        f"{open_inst.phase}"
                    ),
                )
                violations.append(v)
                open_inst.flagged = True
            close_open(step)
            executing.intersection_update({pid})
            ok = legal_open(phase)
            open_inst = InstanceRecord(phase=phase, open_step=step)
            open_inst.started.add(pid)
            executing.add(pid)
            if not ok:
                violations.append(
                    Violation(
                        kind="wrong-phase",
                        step=step,
                        pid=pid,
                        phase=phase,
                        detail=(
                            f"phase {phase} began after phase {current} "
                            f"({'successful' if last_successful else 'unsuccessful'})"
                        ),
                    )
                )
                open_inst.flagged = True
                # Resynchronize so one perturbation is not double counted.
                current = phase
                last_successful = False

        def complete_execution(pid: int) -> None:
            if open_inst is not None and pid in executing:
                open_inst.completed.add(pid)
            executing.discard(pid)

        def abort_execution(pid: int) -> None:
            executing.discard(pid)

        # Processes already executing in the initial state participate in
        # (possibly conflicting) instances from step 0.
        for pid in range(self.nprocs):
            if cp[pid] is CP.EXECUTE:
                start_execution(pid, ph[pid], 0)

        for ev in events:
            pid = ev.pid
            old_cp = cp[pid]
            for var, value in ev.updates:
                if var == self.cp_var:
                    cp[pid] = value
                elif var == self.ph_var:
                    ph[pid] = value
            new_cp = cp[pid]
            if new_cp is CP.EXECUTE:
                if old_cp is not CP.EXECUTE:
                    start_execution(pid, ph[pid], ev.step)
                elif ev.is_fault:
                    # A fault "restarting" execution with corrupted state:
                    # the old participation is lost, a fresh one begins.
                    abort_execution(pid)
                    start_execution(pid, ph[pid], ev.step)
            elif old_cp is CP.EXECUTE:
                if new_cp is CP.SUCCESS and not ev.is_fault:
                    complete_execution(pid)
                else:
                    # error / repeat / ready, or any fault-driven exit:
                    # partial execution.
                    abort_execution(pid)

        close_open(step=events[-1].step if events else 0)
        return SpecReport(
            nprocs=self.nprocs,
            nphases=self.nphases,
            instances=instances,
            violations=violations,
        )
