"""Lookup-table compilation of the RB update rules (Section 8).

"our program is concise and can be implemented as a simple table
lookup.  Therefore, it can be implemented in the hardware."

This module makes that claim executable: the follower (non-0) control
position update is compiled into a table indexed by
``(cp.j, cp.parent)``, and the root update into a table indexed by
``(cp.0, finals-ready?, finals-success?, finals-in-phase?)``.  The test
suite verifies the tables agree with the guarded-command statements on
every input, and counts the bits of state per process (the paper's
O(log N) claim).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.barrier.control import CP

_ALL_CP = (CP.READY, CP.EXECUTE, CP.SUCCESS, CP.ERROR, CP.REPEAT)


def follower_table() -> Mapping[tuple[CP, CP], CP]:
    """``(cp.j, cp.parent) -> cp.j'`` for the superposed T2 statement.

    Entries where the statement leaves cp unchanged map to the current
    value, so the table is total (25 entries).
    """
    table: dict[tuple[CP, CP], CP] = {}
    for current in _ALL_CP:
        for upstream in _ALL_CP:
            if current is CP.READY and upstream is CP.EXECUTE:
                new = CP.EXECUTE
            elif current is CP.EXECUTE and upstream is CP.SUCCESS:
                new = CP.SUCCESS
            elif current is not CP.EXECUTE and upstream is CP.READY:
                new = CP.READY
            elif current is CP.ERROR or upstream is not current:
                new = CP.REPEAT
            else:
                new = current
            table[(current, upstream)] = new
    return table


#: Root decision outcomes: what process 0 does upon receiving the token.
ROOT_BEGIN = "begin-instance"  # cp.0 := execute
ROOT_COMPLETE = "complete-phase"  # ph.0 += 1; cp.0 := ready
ROOT_REEXECUTE = "re-execute"  # ph.0 := ph.final; cp.0 := ready
ROOT_RECOVER = "recover"  # (error/repeat) ph.0 := ph.final; cp.0 := ready
ROOT_IDLE = "idle"  # forward the token, change nothing


def root_table() -> Mapping[tuple[CP, bool, bool, bool], str]:
    """``(cp.0, finals_ready, finals_success, finals_in_phase) ->
    decision`` for the superposed T1 statement."""
    table: dict[tuple[CP, bool, bool, bool], str] = {}
    for cp0 in _ALL_CP:
        for ready in (False, True):
            for success in (False, True):
                for in_phase in (False, True):
                    if cp0 is CP.READY:
                        decision = (
                            ROOT_BEGIN if ready and in_phase else ROOT_IDLE
                        )
                    elif cp0 is CP.EXECUTE:
                        decision = ROOT_COMPLETE  # cp.0 := success; the
                        # "complete" here is the execute->success step
                    elif cp0 is CP.SUCCESS:
                        decision = (
                            ROOT_COMPLETE
                            if success and in_phase
                            else ROOT_REEXECUTE
                        )
                    else:  # error / repeat
                        decision = ROOT_RECOVER
                    table[(cp0, ready, success, in_phase)] = decision
    return table


# Naming nit: for cp0=EXECUTE the decision constant is reused to mean
# "advance the root's own control position"; disambiguate for clients:
def root_decision(cp0: CP, ready: bool, success: bool, in_phase: bool) -> str:
    """Decision lookup with the EXECUTE case named explicitly."""
    if cp0 is CP.EXECUTE:
        return "to-success"
    return root_table()[(cp0, ready, success, in_phase)]


def state_bits(nprocs: int, nphases: int, k: int | None = None) -> int:
    """Bits of protocol state per process (the paper's O(log N) claim).

    A sequence number over {0..K-1, BOT, TOP}, a control position (5
    values), and a phase (n values).
    """
    if k is None:
        k = nprocs + 1
    return (
        math.ceil(math.log2(k + 2))
        + math.ceil(math.log2(5))
        + math.ceil(math.log2(max(nphases, 2)))
    )
