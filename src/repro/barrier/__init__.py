"""The paper's barrier-synchronization programs.

* :mod:`repro.barrier.control` -- control positions and phase arithmetic;
* :mod:`repro.barrier.spec` -- the Section 2 specification oracle;
* :mod:`repro.barrier.cb` -- coarse-grain program CB (Section 3);
* :mod:`repro.barrier.tokenring` -- the multitolerant token ring (T1-T5);
* :mod:`repro.barrier.rb` -- ring-refined program RB (Section 4.1);
* :mod:`repro.barrier.trees` -- RB' and tree refinements (Section 4.2);
* :mod:`repro.barrier.mb` -- message-passing program MB (Section 5);
* :mod:`repro.barrier.intolerant` -- fault-intolerant baseline;
* :mod:`repro.barrier.legitimacy` -- legitimate-state predicates.
"""

from repro.barrier.control import CP, CB_CP_DOMAIN, RB_CP_DOMAIN, phase_succ
from repro.barrier.cb import (
    cb_detectable_fault,
    cb_undetectable_fault,
    make_cb,
)
from repro.barrier.tokenring import (
    holds_token,
    make_token_ring,
    token_count,
)
from repro.barrier.rb import (
    make_rb,
    rb_detectable_fault,
    rb_undetectable_fault,
)
from repro.barrier.trees import make_rb_tree, make_rb_two_ring
from repro.barrier.mb import (
    make_mb,
    mb_detectable_fault,
    mb_undetectable_fault,
)
from repro.barrier.intolerant import make_intolerant_barrier
from repro.barrier.sources import (
    CB_SOURCE,
    MB_SOURCE,
    RB_SOURCE,
    TOKEN_RING_SOURCE,
    compile_cb,
    compile_mb,
    compile_rb,
    compile_token_ring,
)
from repro.barrier.tables import follower_table, root_table, state_bits
from repro.barrier.timed_rb import make_timed_rb, run_timed_rb
from repro.barrier.refinement import (
    check_mb_refines_rb,
    check_rb_refines_cb,
    states_from_run,
)
from repro.barrier.spec import BarrierSpecChecker, SpecReport
from repro.barrier.legitimacy import (
    cb_legitimate,
    cb_start_state,
    rb_legitimate,
    rb_start_state,
)

__all__ = [
    "CP",
    "CB_CP_DOMAIN",
    "RB_CP_DOMAIN",
    "phase_succ",
    "make_cb",
    "cb_detectable_fault",
    "cb_undetectable_fault",
    "make_token_ring",
    "holds_token",
    "token_count",
    "make_rb",
    "rb_detectable_fault",
    "rb_undetectable_fault",
    "make_rb_tree",
    "make_rb_two_ring",
    "make_mb",
    "mb_detectable_fault",
    "mb_undetectable_fault",
    "make_intolerant_barrier",
    "CB_SOURCE",
    "RB_SOURCE",
    "MB_SOURCE",
    "TOKEN_RING_SOURCE",
    "compile_cb",
    "compile_rb",
    "compile_mb",
    "compile_token_ring",
    "follower_table",
    "root_table",
    "state_bits",
    "make_timed_rb",
    "run_timed_rb",
    "check_rb_refines_cb",
    "check_mb_refines_rb",
    "states_from_run",
    "BarrierSpecChecker",
    "SpecReport",
    "cb_legitimate",
    "cb_start_state",
    "rb_legitimate",
    "rb_start_state",
]
