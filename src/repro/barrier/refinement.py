"""Mechanical refinement checks between CB, RB and MB.

The paper's design method is stepwise refinement: "In each step, we will
verify that the program is a refinement of the program in the previous
step, enabling a simple proof of correctness for the final program."
This module makes those verifications executable:

* :func:`check_rb_refines_cb` -- every RB transition, projected through
  the abstraction that forgets the sequence numbers and reads ``repeat``
  as ``error``, is a CB transition, a stutter, or (when enabled) the
  image of a detectable fault.  Fault-free runs must map to CB steps and
  stutters only.  Under faults, two corners of process 0's superposed
  decision are deliberately *not* CB transitions (both safe, argued by
  Lemma 4.1.2): the root recovers from ``error`` as soon as it holds the
  token, ahead of CB4's everyone-stopped guard; and the root completes a
  phase even when a *post-success* fault left a ``repeat`` behind --
  every process did execute the phase fully, so completing is correct
  where CB would conservatively re-execute.
  :meth:`RefinementReport.unexplained` filters those corners out.
* :func:`check_mb_refines_rb` -- the Section 5 claim: MB's computations
  are "equivalent to that of RB where the ring consists of 2(N+1)
  processes".  The embedding places each local-copy cell as a *virtual
  process* between its owner and the owner's predecessor; every MB
  transition from an ordinary-sequence-number state must then map to a
  transition (or stutter) of RB on the doubled ring.  The domain
  requirement ``L > 2N + 1`` is exactly what makes the embedded
  sequence numbers legal for the doubled ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.barrier.cb import make_cb
from repro.barrier.control import CP
from repro.barrier.rb import make_rb
from repro.gc.domains import BOT, TOP
from repro.gc.program import Program
from repro.gc.state import State


@dataclass
class RefinementReport:
    """Classification of every checked transition."""

    checked: int = 0
    stutters: int = 0
    mapped: int = 0
    fault_images: int = 0
    recovery_images: int = 0
    violations: list[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def unexplained(self) -> list[tuple]:
        """Violations that are not root-decision corners.

        Two RB root behaviours are deliberately *not* CB transitions
        (see the module docstring): recovering from error while others
        execute, and completing a phase whose repeat signal arrived only
        after every process had already succeeded.  Both originate in
        process 0's superposed T1 decision; anything else is a genuine
        refinement failure.
        """
        return [v for v in self.violations if not (v[1] == "T1" and v[2] == 0)]


# ----------------------------------------------------------------------
# RB -> CB
# ----------------------------------------------------------------------
def rb_to_cb_abstraction(state: State, nprocs: int) -> State:
    """Forget the sequence numbers; ``repeat`` abstracts to ``error``
    (both mean "this instance is abandoned; rejoin at ready")."""
    cp = [
        CP.ERROR if state.get("cp", p) is CP.REPEAT else state.get("cp", p)
        for p in range(nprocs)
    ]
    ph = [state.get("ph", p) for p in range(nprocs)]
    return State({"cp": cp, "ph": ph}, nprocs)


def _cb_successors(cb: Program, state: State) -> set:
    out = set()
    for action in cb.actions():
        if action.enabled(state):
            succ = state.snapshot()
            action.execute(succ)
            out.add(succ.key())
    return out


def _cb_fault_images(state: State, nphases: int) -> set:
    """Images of the CB detectable fault (cp := error, ph arbitrary)."""
    out = set()
    for pid in range(state.nprocs):
        for ph in range(nphases):
            succ = state.snapshot()
            succ.set("cp", pid, CP.ERROR)
            succ.set("ph", pid, ph)
            out.add(succ.key())
    return out


def _cb_recovery_images(state: State, nphases: int) -> set:
    """Eager error recovery: an ``error`` process re-enters ``ready``.

    RB's process 0 recovers from a detectable fault as soon as it holds
    the token (the Lemma 4.1.2/4.1.3 root case), even while other
    processes are still executing -- *earlier* than CB4's guard permits.
    The refinement therefore holds modulo this image class; safety is
    re-established by the superposed repeat mechanism, exactly as the
    paper's Lemma 4.1.2 argues.
    """
    out = set()
    for pid in range(state.nprocs):
        if state.get("cp", pid) is not CP.ERROR:
            continue
        for ph in range(nphases):
            succ = state.snapshot()
            succ.set("cp", pid, CP.READY)
            succ.set("ph", pid, ph)
            out.add(succ.key())
    return out


def check_rb_refines_cb(
    rb: Program,
    states: Iterable[State],
    allow_fault_images: bool = True,
) -> RefinementReport:
    """Check every RB transition out of ``states`` against CB."""
    nprocs = rb.nprocs
    nphases = rb.metadata["nphases"]
    cb = make_cb(nprocs, nphases)
    report = RefinementReport()
    for state in states:
        abstract = rb_to_cb_abstraction(state, nprocs)
        cb_next = _cb_successors(cb, abstract)
        faults = _cb_fault_images(abstract, nphases) if allow_fault_images else set()
        recoveries = (
            _cb_recovery_images(abstract, nphases) if allow_fault_images else set()
        )
        for action in rb.actions():
            if not action.enabled(state):
                continue
            succ = state.snapshot()
            action.execute(succ)
            image = rb_to_cb_abstraction(succ, nprocs).key()
            report.checked += 1
            if image == abstract.key():
                report.stutters += 1
            elif image in cb_next:
                report.mapped += 1
            elif image in faults:
                report.fault_images += 1
            elif image in recoveries:
                report.recovery_images += 1
            else:
                report.violations.append(
                    (state.key(), action.name, action.pid, image)
                )
    return report


# ----------------------------------------------------------------------
# MB -> RB on the doubled ring
# ----------------------------------------------------------------------
def mb_to_doubled_rb_abstraction(state: State, nprocs: int) -> State:
    """Embed an MB state into RB on a ring of ``2 * nprocs`` processes.

    Ring order: ``real 0, copy@1, real 1, copy@2, ..., real N, copy@0``
    -- the copy cell that feeds real process j holds (a possibly stale
    view of) process j-1's state and sits immediately before j.  Real
    process 0 occupies position 0, so the doubled ring's distinguished
    process is MB's process 0, and RB's T1 there reads position 2N+1 =
    the copy cell at 0 (``lsn_prev.0``) -- exactly MB's T1.
    """
    sn, cp, ph = [], [], []
    for j in range(nprocs):
        sn.append(state.get("sn", j))
        cp.append(state.get("cp", j))
        ph.append(state.get("ph", j))
        succ = (j + 1) % nprocs
        sn.append(state.get("lsn_prev", succ))
        cp.append(state.get("lcp_prev", succ))
        ph.append(state.get("lph_prev", succ))
    return State({"sn": sn, "cp": cp, "ph": ph}, 2 * nprocs)


def _doubled_rb_successors(rb2: Program, state: State) -> set:
    out = set()
    for action in rb2.actions():
        if action.enabled(state):
            succ = state.snapshot()
            action.execute(succ)
            out.add(succ.key())
    return out


def _ordinary_sns(state: State, variables: Iterable[str]) -> bool:
    for var in variables:
        for p in range(state.nprocs):
            v = state.get(var, p)
            if v is BOT or v is TOP:
                return False
    return True


def check_mb_refines_rb(
    mb: Program,
    states: Iterable[State],
) -> RefinementReport:
    """Check MB transitions against RB on the 2(N+1) ring.

    Restricted to states whose sequence numbers (including the copies)
    are ordinary, matching the appendix: after T3/T4/T5 and the CNEXT
    copy action are disabled, "the computations of MB are equivalent to
    the computations of [RB] where the ring consists of 2(N+1)
    processes".
    """
    nprocs = mb.nprocs
    nphases = mb.metadata["nphases"]
    L = mb.metadata["sn_domain"].k
    # The doubled ring needs K > (number of ring processes) - 1, i.e.
    # K >= 2 * nprocs: exactly L (the paper's L > 2N + 1).
    rb2 = make_rb(2 * nprocs, nphases=nphases, k=L)
    report = RefinementReport()
    for state in states:
        if not _ordinary_sns(state, ("sn", "lsn_prev")):
            continue
        abstract = mb_to_doubled_rb_abstraction(state, nprocs)
        rb_next = _doubled_rb_successors(rb2, abstract)
        for action in mb.actions():
            if action.name in ("T3", "T4", "T5", "CNEXT"):
                continue  # disabled in the ordinary-sn region anyway
            if not action.enabled(state):
                continue
            succ = state.snapshot()
            action.execute(succ)
            image = mb_to_doubled_rb_abstraction(succ, nprocs).key()
            report.checked += 1
            if image == abstract.key():
                report.stutters += 1
            elif image in rb_next:
                report.mapped += 1
            else:
                report.violations.append(
                    (state.key(), action.name, action.pid, image)
                )
    return report


# ----------------------------------------------------------------------
# Run collectors
# ----------------------------------------------------------------------
def states_from_run(
    program: Program,
    steps: int,
    daemon=None,
    state: State | None = None,
) -> list[State]:
    """Distinct states visited by a run (the refinement check inputs)."""
    from repro.gc.scheduler import RoundRobinDaemon
    from repro.gc.simulator import Simulator

    seen: dict = {}
    current = state.snapshot() if state is not None else program.initial_state()
    seen[current.key()] = current.snapshot()

    def observer(s: State, _step: int) -> None:
        key = s.key()
        if key not in seen:
            seen[key] = s.snapshot()

    sim = Simulator(program, daemon or RoundRobinDaemon(), record_trace=False)
    sim.run(current, max_steps=steps, observer=observer)
    return list(seen.values())
