"""Section 4.2 refinements: two rings, trees, and arbitrary graphs.

These are thin instantiations of the generic RB construction over the
Figure 2 topologies:

* :func:`make_rb_two_ring` -- Figure 2(b), two rings intersecting in a
  shared prefix; process 0 checks both ring tails (N1, N2) before T1,
  T3 runs at both tails, T4 at every other process against all its
  successors (items 1-4 of Section 4.2);
* :func:`make_rb_tree` -- Figure 2(c), a k-ary tree with all leaves
  (conceptually) connected back to the root, giving ``O(h)`` barrier
  latency;
* :func:`make_rb_for_graph` -- the closing remark of Section 4.2: embed
  a (BFS) spanning tree into any connected graph and run the tree
  refinement on it.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.barrier.rb import make_rb
from repro.gc.program import Program
from repro.topology.embedding import spanning_tree_topology
from repro.topology.graphs import kary_tree, two_ring


def make_rb_two_ring(
    branch_a: int,
    branch_b: int,
    shared: int = 1,
    nphases: int = 2,
    k: int | None = None,
) -> Program:
    """Program RB' on the Figure 2(b) two-ring topology."""
    return make_rb(topology=two_ring(branch_a, branch_b, shared), nphases=nphases, k=k)


def make_rb_tree(
    nprocs: int,
    arity: int = 2,
    nphases: int = 2,
    k: int | None = None,
) -> Program:
    """Program RB on the Figure 2(c) tree topology."""
    return make_rb(topology=kary_tree(nprocs, arity), nphases=nphases, k=k)


def make_rb_for_graph(
    graph: nx.Graph,
    root: Hashable = 0,
    nphases: int = 2,
    k: int | None = None,
) -> tuple[Program, dict[int, Hashable]]:
    """Program RB on a spanning tree embedded in an arbitrary connected
    graph; returns the program and the pid -> original-node mapping."""
    topology, mapping = spanning_tree_topology(graph, root)
    return make_rb(topology=topology, nphases=nphases, k=k), mapping
