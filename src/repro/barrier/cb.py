"""Program CB -- the coarse-grain barrier (Section 3).

Every process ``j`` maintains ``cp.j`` (control position) and ``ph.j``
(phase, mod n).  Actions read the *global* state instantaneously, which
is the deliberately strong assumption that the Section 4/5 refinements
remove.  The four actions are transcribed from the paper:

``CB1 :: cp.j = ready and ((forall k :: cp.k = ready) or
(exists k :: cp.k = execute)) -> cp.j := execute``

``CB2 :: cp.j = execute and ((forall k :: cp.k != ready) or
(exists k :: cp.k = success)) -> cp.j := success``

``CB3 :: cp.j = success and (forall k :: cp.k != execute) ->
if (exists k :: cp.k = ready) then ph.j := (any ready k).ph
elseif (forall k :: cp.k = success) then ph.j := ph.j + 1;
cp.j := ready``

``CB4 :: cp.j = error and (forall k :: cp.k != execute) ->
if (exists k :: cp.k = ready) then ph.j := (any ready k).ph
elseif (exists k :: cp.k = success) then ph.j := (any success k).ph
else ph.j := arbitrary;
cp.j := ready``

Note on CB4: the paper's formal text writes the second branch with a
universal quantifier, which is unsatisfiable while ``j`` itself is in
``error``; the prose ("Otherwise, it obtains the phase from some process
that is [in] control position success ... if there is no process in
control position ready [or success] ... the phase is chosen arbitrarily")
and the paper's ``any``-operator fallback make the intended existential
reading unambiguous, so that is what we implement.

The paper assumes the cyclic sequence has at least two phases; the
single-phase case is handled by replicating the phase (the remark at the
end of Section 3), which :func:`make_cb` performs automatically.
"""

from __future__ import annotations

from typing import Any

from repro.barrier.control import CP, CB_CP_DOMAIN
from repro.gc.actions import Action, StateView
from repro.gc.domains import IntRange
from repro.gc.faults import FaultSpec
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State


def _all_cp(view: StateView, value: CP) -> bool:
    return all(view.of("cp", k) is value for k in view.others())


def _some_cp(view: StateView, value: CP) -> bool:
    return any(view.of("cp", k) is value for k in view.others())


def _no_cp(view: StateView, value: CP) -> bool:
    return not _some_cp(view, value)


def _cb1_guard(view: StateView) -> bool:
    return view.my("cp") is CP.READY and (
        _all_cp(view, CP.READY) or _some_cp(view, CP.EXECUTE)
    )


def _cb1_stmt(view: StateView):
    return [("cp", CP.EXECUTE)]


def _cb2_guard(view: StateView) -> bool:
    return view.my("cp") is CP.EXECUTE and (
        _no_cp(view, CP.READY) or _some_cp(view, CP.SUCCESS)
    )


def _cb2_stmt(view: StateView):
    return [("cp", CP.SUCCESS)]


def _cb3_guard(view: StateView) -> bool:
    return view.my("cp") is CP.SUCCESS and _no_cp(view, CP.EXECUTE)


def _make_cb3_stmt(nphases: int):
    def stmt(view: StateView):
        updates: list[tuple[str, Any]] = []
        ready_k = view.any_with("cp", CP.READY)
        if ready_k is not None:
            updates.append(("ph", view.of("ph", ready_k)))
        elif _all_cp(view, CP.SUCCESS):
            updates.append(("ph", (view.my("ph") + 1) % nphases))
        # Otherwise (some process in error): keep the phase so a new
        # instance of the *current* phase is executed.
        updates.append(("cp", CP.READY))
        return updates

    return stmt


def _cb4_guard(view: StateView) -> bool:
    return view.my("cp") is CP.ERROR and _no_cp(view, CP.EXECUTE)


def _make_cb4_stmt(nphases: int):
    def stmt(view: StateView):
        updates: list[tuple[str, Any]] = []
        ready_k = view.any_with("cp", CP.READY)
        if ready_k is not None:
            updates.append(("ph", view.of("ph", ready_k)))
        else:
            success_k = view.any_with("cp", CP.SUCCESS)
            if success_k is not None:
                updates.append(("ph", view.of("ph", success_k)))
            else:
                # Every process is corrupted: arbitrary phase (the paper's
                # where-clause); this case is classified as undetectable.
                updates.append(("ph", view.choose(range(nphases))))
        updates.append(("cp", CP.READY))
        return updates

    return stmt


def make_cb(nprocs: int, nphases: int = 2) -> Program:
    """Build program CB for ``nprocs`` processes and ``nphases`` phases.

    A single-phase computation is mapped onto two replicated phases, per
    the remark closing Section 3; the program metadata records the
    user-visible phase count in ``metadata["user_nphases"]``.
    """
    if nprocs < 2:
        raise ValueError("barrier synchronization needs at least 2 processes")
    if nphases < 1:
        raise ValueError("need at least one phase")
    user_nphases = nphases
    if nphases == 1:
        nphases = 2  # replicate the single phase

    declarations = [
        VariableDecl("cp", CB_CP_DOMAIN, CP.READY),
        VariableDecl("ph", IntRange(0, nphases - 1), 0),
    ]
    # Every CB guard quantifies over all control positions (that is the
    # coarse-grain barrier's deliberately strong atomicity), so each
    # guard's read-set is the full cp vector -- the incremental daemons
    # gain little on CB, but the declaration keeps it correct.
    all_cp = frozenset(("cp", k) for k in range(nprocs))
    processes = []
    for j in range(nprocs):
        actions = (
            # CB2 carries the "compute" kind: the phase's work happens
            # between entering execute and completing the transition to
            # success, so the timed simulator charges the unit phase time
            # to the execute->success action.
            Action(
                "CB1", j, _cb1_guard, _cb1_stmt, kind="local",
                reads=all_cp, writes=frozenset(("cp",)),
            ),
            Action(
                "CB2", j, _cb2_guard, _cb2_stmt, kind="compute",
                reads=all_cp, writes=frozenset(("cp",)),
            ),
            Action(
                "CB3", j, _cb3_guard, _make_cb3_stmt(nphases), kind="local",
                reads=all_cp, writes=frozenset(("cp", "ph")),
            ),
            Action(
                "CB4", j, _cb4_guard, _make_cb4_stmt(nphases), kind="local",
                reads=all_cp, writes=frozenset(("cp", "ph")),
            ),
        )
        processes.append(Process(j, actions))

    def initial(program: Program) -> State:
        # The paper's start state: phase.(n-1) has executed successfully,
        # all processes ready to execute phase 0.
        return State.uniform(program, cp=CP.READY, ph=0)

    return Program(
        "CB",
        declarations,
        processes,
        initial_state=initial,
        metadata={
            "family": "cb",
            "nphases": nphases,
            "user_nphases": user_nphases,
        },
    )


def cb_detectable_fault() -> FaultSpec:
    """The Section 3 detectable fault: ``ph.j, cp.j := ?, error``."""
    return FaultSpec(
        name="cb-detectable",
        resets={"cp": CP.ERROR},
        randomized=("ph",),
        detectable=True,
    )


def cb_undetectable_fault() -> FaultSpec:
    """The Section 3 undetectable fault: ``ph.j, cp.j := ?, ?``."""
    return FaultSpec(
        name="cb-undetectable",
        randomized=("ph", "cp"),
        detectable=False,
    )
