"""Control positions and phase arithmetic.

Each process ``j`` maintains a control position ``cp.j`` (Figure 1 of the
paper) and a phase number ``ph.j`` in modulo-``n`` arithmetic:

* ``READY``   -- j is ready to execute its phase;
* ``EXECUTE`` -- j is executing its phase;
* ``SUCCESS`` -- j has completed its phase;
* ``ERROR``   -- j's control position was detectably corrupted;
* ``REPEAT``  -- (ring/tree refinements only) a detected fault is being
  propagated along the token so process 0 re-executes the current phase.
"""

from __future__ import annotations

import enum

from repro.gc.domains import EnumDomain


class CP(enum.Enum):
    """Control positions (Figure 1, plus the refinement's ``REPEAT``)."""

    READY = "ready"
    EXECUTE = "execute"
    SUCCESS = "success"
    ERROR = "error"
    REPEAT = "repeat"

    def __repr__(self) -> str:
        return self.value


#: Domain of ``cp`` in the coarse-grain program CB (no ``repeat``).
CB_CP_DOMAIN = EnumDomain((CP.READY, CP.EXECUTE, CP.SUCCESS, CP.ERROR))

#: Domain of ``cp`` in the refined programs RB/MB (adds ``repeat``).
RB_CP_DOMAIN = EnumDomain(
    (CP.READY, CP.EXECUTE, CP.SUCCESS, CP.ERROR, CP.REPEAT)
)


def phase_succ(phase: int, nphases: int) -> int:
    """The paper's ``ph + 1`` in modulo-``n`` arithmetic."""
    if nphases < 1:
        raise ValueError("need at least one phase")
    return (phase + 1) % nphases


def phase_pred(phase: int, nphases: int) -> int:
    """Modulo-``n`` predecessor of a phase."""
    if nphases < 1:
        raise ValueError("need at least one phase")
    return (phase - 1) % nphases


def phase_distance(frm: int, to: int, nphases: int) -> int:
    """Forward distance from phase ``frm`` to phase ``to`` (mod ``n``)."""
    return (to - frm) % nphases
