"""Legitimate-state predicates.

A stabilizing program recovers to its *legitimate* states, from where
every computation satisfies the specification.  For CB the legitimate set
is characterized exactly (it is small enough); for RB/MB the convergence
tests target the paper's *start states* ("all processes are in the
control position ready and in the same phase", with a quiescent token),
which every recovery passes through.
"""

from __future__ import annotations

from repro.barrier.control import CP
from repro.barrier.tokenring import ring_legitimate_sn
from repro.gc.state import State
from repro.topology.graphs import Topology


# ----------------------------------------------------------------------
# CB (Section 3)
# ----------------------------------------------------------------------
def cb_start_state(state: State) -> bool:
    """All processes ready, all in the same phase."""
    n = state.nprocs
    return all(state.get("cp", p) is CP.READY for p in range(n)) and (
        len(set(state.get("ph", p) for p in range(n))) == 1
    )


def cb_legitimate(state: State, nphases: int) -> bool:
    """The fault-free reachable states of CB.

    With common phase ``i`` these are exactly:

    (a) every process in {ready, execute} with phase ``i`` (the entry
        wave: processes move to execute one at a time);
    (b) every process in {execute, success} with phase ``i`` (the exit
        wave);
    (c) processes in {success, ready} where the success processes have
        phase ``i`` and the ready processes phase ``i+1`` (the phase
        hand-over wave).
    """
    n = state.nprocs
    cp = [state.get("cp", p) for p in range(n)]
    ph = [state.get("ph", p) for p in range(n)]

    # (a) ready/execute, one phase
    if all(c is CP.READY or c is CP.EXECUTE for c in cp):
        return len(set(ph)) == 1
    # (b) execute/success, one phase
    if all(c is CP.EXECUTE or c is CP.SUCCESS for c in cp):
        return len(set(ph)) == 1
    # (c) success(i) / ready(i+1)
    if all(c is CP.SUCCESS or c is CP.READY for c in cp):
        succ_ph = {ph[p] for p in range(n) if cp[p] is CP.SUCCESS}
        ready_ph = {ph[p] for p in range(n) if cp[p] is CP.READY}
        if len(succ_ph) != 1 or len(ready_ph) != 1:
            return False
        i = next(iter(succ_ph))
        return next(iter(ready_ph)) == (i + 1) % nphases
    return False


# ----------------------------------------------------------------------
# RB (Section 4)
# ----------------------------------------------------------------------
def rb_start_state(state: State, topology: Topology, k: int) -> bool:
    """All ready, one phase, sequence numbers uniform and ordinary.

    This is the quiescent start state: the token has just completed the
    hand-over circulation and sits at the final process(es), so process 0
    may begin the next instance.
    """
    n = topology.nprocs
    if not all(state.get("cp", p) is CP.READY for p in range(n)):
        return False
    if len(set(state.get("ph", p) for p in range(n))) != 1:
        return False
    sns = {state.get("sn", p) for p in range(n)}
    if len(sns) != 1:
        return False
    sn = next(iter(sns))
    return isinstance(sn, int) and 0 <= sn < k


def rb_legitimate(state: State, topology: Topology, k: int, nphases: int) -> bool:
    """A weaker legitimate predicate for RB used by closure-style tests:
    legitimate sequence numbers, no error/repeat control positions, and
    phases spanning at most two consecutive values."""
    n = topology.nprocs
    if not ring_legitimate_sn(state, topology, k):
        return False
    cps = [state.get("cp", p) for p in range(n)]
    if any(c is CP.ERROR or c is CP.REPEAT for c in cps):
        return False
    phs = {state.get("ph", p) for p in range(n)}
    if len(phs) == 1:
        return True
    if len(phs) == 2:
        a, b = sorted(phs)
        return (b - a) % nphases == 1 or (a - b) % nphases == 1
    return False


# ----------------------------------------------------------------------
# MB (Section 5)
# ----------------------------------------------------------------------
def mb_start_state(state: State, l_domain: int) -> bool:
    """MB's quiescent start state: all ready in one phase, sequence
    numbers and predecessor copies uniform and ordinary, predecessor
    control-position copies ready."""
    n = state.nprocs
    if not all(state.get("cp", p) is CP.READY for p in range(n)):
        return False
    if len(set(state.get("ph", p) for p in range(n))) != 1:
        return False
    values = {state.get("sn", p) for p in range(n)} | {
        state.get("lsn_prev", p) for p in range(n)
    }
    if len(values) != 1:
        return False
    sn = next(iter(values))
    if not (isinstance(sn, int) and 0 <= sn < l_domain):
        return False
    if not all(state.get("lcp_prev", p) is CP.READY for p in range(n)):
        return False
    return len(
        set(state.get("lph_prev", p) for p in range(n))
        | set(state.get("ph", p) for p in range(n))
    ) == 1
