"""The underlying multitolerant token-ring program (Section 4.1).

Each process ``j`` maintains a sequence number ``sn.j`` over
``{0..K-1} + {BOT, TOP}`` with ``K > N``.  The five actions:

``T1 :: j=0 and sn.N not in {BOT,TOP} and (sn.0 = sn.N or sn.0 in
{BOT,TOP}) -> sn.0 := sn.N + 1``

``T2 :: j!=0 and sn.(j-1) not in {BOT,TOP} and sn.j != sn.(j-1) ->
sn.j := sn.(j-1)``

``T3 :: sn.N = BOT -> sn.N := TOP``

``T4 :: j != N and sn.j = BOT and sn.(j+1) = TOP -> sn.j := TOP``

``T5 :: sn.0 = TOP -> sn.0 := 0``

Token predicates (ring form): process ``j != N`` has the token iff
``sn.j != sn.(j+1)`` with both ordinary; process ``N`` has the token iff
``sn.N = sn.0`` with both ordinary.

The program is written generically over a
:class:`~repro.topology.graphs.Topology`: ``j-1`` generalizes to j's
parent, ``j+1`` to j's children, ``N`` to the topology's *finals* (the
paper's Section 4.2 items 1-4: the root checks all finals before T1, T3
runs at every final, T4 at every non-final checking all its successors).
The plain ring is the single-path topology.
"""

from __future__ import annotations

from typing import Any

from repro.gc.actions import Action, StateView
from repro.gc.domains import BOT, TOP, SequenceNumberDomain
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State
from repro.topology.graphs import Topology, ring


def _ordinary(value: Any) -> bool:
    return value is not BOT and value is not TOP


def make_t1_guard(topology: Topology):
    """Root receives the token: all finals ordinary and equal, and the
    root's own number matches -- or the root's own number is corrupted
    (BOT/TOP), in which case it re-seeds the circulation as soon as all
    finals are ordinary, even if the branches disagree.  On the ring
    (one final) this is exactly the paper's T1; on branching topologies
    the relaxation is needed for convergence: with a corrupted root the
    branches have no way to re-synchronize except through a fresh value
    from the root."""
    finals = topology.finals

    def guard(view: StateView) -> bool:
        final_sns = [view.of("sn", f) for f in finals]
        if not all(_ordinary(snf) for snf in final_sns):
            return False
        mine = view.my("sn")
        if not _ordinary(mine):
            return True
        first = final_sns[0]
        return all(snf == first for snf in final_sns) and mine == first

    return guard


def make_t1_sn_stmt(topology: Topology, domain: SequenceNumberDomain):
    final0 = topology.finals[0]

    def stmt(view: StateView):
        return [("sn", domain.succ(view.of("sn", final0)))]

    return stmt


def make_t2_guard(topology: Topology, pid: int):
    parent = topology.parent[pid]

    def guard(view: StateView) -> bool:
        psn = view.of("sn", parent)
        return _ordinary(psn) and view.my("sn") != psn

    return guard


def make_t2_sn_stmt(topology: Topology, pid: int):
    parent = topology.parent[pid]

    def stmt(view: StateView):
        return [("sn", view.of("sn", parent))]

    return stmt


def _t3_guard(view: StateView) -> bool:
    return view.my("sn") is BOT


def _t3_stmt(view: StateView):
    return [("sn", TOP)]


def make_t4_guard(topology: Topology, pid: int, mode: str = "any"):
    """T4: a corrupted (BOT) non-final adopts TOP from its successors.

    On the ring each process has one successor, so "any" and "all" are
    the same and both match the paper's T4.  On branching topologies the
    paper's prose says "all its successors"; we default to "any" because
    the "all" reading can freeze: a BOT node with one TOP child and one
    ordinary child can neither flush (T4 blocked) nor heal (its own
    parent may be corrupted too), a corner the single-successor ring
    never exhibits.  With "any", a single surviving TOP still implies a
    flush is in progress somewhere below, and detectable-fault safety is
    unaffected because T4 still fires only at processes that are
    themselves corrupted.
    """
    if mode not in ("any", "all"):
        raise ValueError(f"t4 mode must be 'any' or 'all', got {mode!r}")
    kids = topology.children[pid]
    combine = any if mode == "any" else all

    def guard(view: StateView) -> bool:
        if view.my("sn") is not BOT:
            return False
        return bool(kids) and combine(
            view.of("sn", c) is TOP for c in kids
        )

    return guard


def _t4_stmt(view: StateView):
    return [("sn", TOP)]


def _t5_guard(view: StateView) -> bool:
    return view.my("sn") is TOP


def _t5_stmt(view: StateView):
    return [("sn", 0)]


def build_token_actions(
    topology: Topology,
    domain: SequenceNumberDomain,
    pid: int,
    t1_extra=None,
    t2_extra=None,
) -> list[Action]:
    """The token actions of process ``pid``, optionally with superposed
    statements executed in parallel with T1/T2 (how RB is built).

    Every guard reads only sequence numbers, so the declared read-sets
    stay valid under superposition: the extra statements write ``cp``
    and ``ph``, which no token guard inspects.  The declarations are
    what lets the incremental daemons skip guard re-evaluation for
    processes far from the circulating token.
    """
    actions: list[Action] = []
    is_final = pid in topology.finals
    #: Superposed statements write the barrier variables as well.
    extra_writes = frozenset(("cp", "ph"))
    if pid == 0:
        sn_stmt = make_t1_sn_stmt(topology, domain)
        t1_writes = frozenset(("sn",))
        if t1_extra is not None:
            extra = t1_extra
            t1_writes |= extra_writes

            def t1_stmt(view: StateView, _sn=sn_stmt, _x=extra):
                return list(_sn(view)) + list(_x(view) or [])

        else:

            def t1_stmt(view: StateView, _sn=sn_stmt):
                return _sn(view)

        actions.append(
            Action(
                "T1",
                0,
                make_t1_guard(topology),
                t1_stmt,
                kind="comm",
                reads=frozenset(
                    [("sn", 0)] + [("sn", f) for f in topology.finals]
                ),
                writes=t1_writes,
            )
        )
        actions.append(
            Action(
                "T5",
                0,
                _t5_guard,
                _t5_stmt,
                kind="local",
                reads=frozenset([("sn", 0)]),
                writes=frozenset(("sn",)),
            )
        )
    else:
        sn_stmt = make_t2_sn_stmt(topology, pid)
        t2_writes = frozenset(("sn",))
        if t2_extra is not None:
            extra = t2_extra
            t2_writes |= extra_writes

            def t2_stmt(view: StateView, _sn=sn_stmt, _x=extra):
                return list(_sn(view)) + list(_x(view) or [])

        else:

            def t2_stmt(view: StateView, _sn=sn_stmt):
                return _sn(view)

        actions.append(
            Action(
                "T2",
                pid,
                make_t2_guard(topology, pid),
                t2_stmt,
                kind="comm",
                reads=frozenset([("sn", pid), ("sn", topology.parent[pid])]),
                writes=t2_writes,
            )
        )
    if is_final:
        actions.append(
            Action(
                "T3",
                pid,
                _t3_guard,
                _t3_stmt,
                kind="local",
                reads=frozenset([("sn", pid)]),
                writes=frozenset(("sn",)),
            )
        )
    else:
        actions.append(
            Action(
                "T4",
                pid,
                make_t4_guard(topology, pid),
                _t4_stmt,
                kind="comm",
                reads=frozenset(
                    [("sn", pid)] + [("sn", c) for c in topology.children[pid]]
                ),
                writes=frozenset(("sn",)),
            )
        )
    return actions


def make_token_ring(
    nprocs: int | None = None,
    topology: Topology | None = None,
    k: int | None = None,
) -> Program:
    """Build the standalone token-ring program.

    Either ``nprocs`` (plain ring) or an explicit ``topology`` must be
    given.  ``k`` defaults to ``nprocs + 1`` (the paper requires
    ``K > N``; note the paper's N is our ``nprocs - 1``).
    """
    if topology is None:
        if nprocs is None:
            raise ValueError("give nprocs or topology")
        topology = ring(nprocs)
    n = topology.nprocs
    domain = SequenceNumberDomain(k if k is not None else n + 1)
    declarations = [VariableDecl("sn", domain, 0)]
    processes = [
        Process(pid, tuple(build_token_actions(topology, domain, pid)))
        for pid in range(n)
    ]

    def initial(program: Program) -> State:
        return State.uniform(program, sn=0)

    return Program(
        f"TokenRing({topology.name})",
        declarations,
        processes,
        initial_state=initial,
        metadata={
            "family": "tokenring",
            "topology": topology,
            "sn_domain": domain,
        },
    )


# ----------------------------------------------------------------------
# Token predicates (the paper's definitions, generalized)
# ----------------------------------------------------------------------
def holds_token(state: State, topology: Topology, pid: int) -> bool:
    """Does ``pid`` hold the token?

    Ring form: j != N holds it iff ``sn.j != sn.(j+1)`` (both ordinary);
    N holds it iff ``sn.N = sn.0``.  Generalized: a non-final holds the
    token iff its value is ordinary and differs from some child's
    ordinary value... conservatively, iff some child still has to copy
    (``sn.child != sn.j``); a final holds it iff its ordinary value
    equals the root's ordinary value.
    """
    sn = state.get("sn", pid)
    if not _ordinary(sn):
        return False
    kids = topology.children[pid]
    if kids:
        for c in kids:
            snc = state.get("sn", c)
            if not _ordinary(snc):
                return False
        return any(state.get("sn", c) != sn for c in kids)
    sn0 = state.get("sn", 0)
    return _ordinary(sn0) and sn == sn0


def token_count(state: State, topology: Topology) -> int:
    """Number of processes currently holding a token.

    On a branching topology a single logical circulation shows one token
    per active branch; on the plain ring this is the paper's token count
    (exactly 1 in legitimate states).
    """
    return sum(
        holds_token(state, topology, pid) for pid in range(topology.nprocs)
    )


def sn_all_ordinary(state: State, nprocs: int) -> bool:
    """No sequence number is BOT or TOP."""
    return all(_ordinary(state.get("sn", p)) for p in range(nprocs))


def ring_legitimate_sn(state: State, topology: Topology, k: int) -> bool:
    """Legitimate sequence-number configurations.

    For each process the value must equal either the root's value or its
    parent's value, and along every root-to-final path the values form a
    prefix of the root's value ``v`` followed by a suffix of ``v - 1``
    (mod K).  On the plain ring this is exactly 'at most two consecutive
    values, new prefix then old suffix', which implies exactly one token.
    """
    if not sn_all_ordinary(state, topology.nprocs):
        return False
    v = state.get("sn", 0)
    prev = (v - 1) % k
    depth = topology.depth
    for pid in range(1, topology.nprocs):
        sn = state.get("sn", pid)
        if sn not in (v, prev):
            return False
        parent_sn = state.get("sn", topology.parent[pid])
        # The new value propagates downward: a process can hold the new
        # value only if its parent already does.
        if sn == v and parent_sn != v:
            return False
        _ = depth  # depth retained for future diagnostics
    return True
