"""The fault-intolerant baseline barrier.

Section 6.1: "if fault-tolerance is not an issue, barrier
synchronization can be achieved in time ``1 + 2hc`` -- one communication
over the tree suffices to detect that all processes have completed
execution of their phase and another to inform them to start the next
phase."

This is the classic two-wave tree barrier: every process executes its
phase; completion aggregates up the tree (``done`` states); the root
advances the phase and the new phase number disseminates down the tree.
It satisfies the barrier specification in the absence of faults and is
the baseline against which the overhead of fault-tolerance (Figures 4
and 6) is measured.  It has no tolerance whatsoever: a single corrupted
phase counter deadlocks or desynchronizes it, which the tests
demonstrate.
"""

from __future__ import annotations

import enum

from repro.gc.actions import Action, StateView
from repro.gc.domains import EnumDomain, IntRange
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State
from repro.topology.graphs import Topology, kary_tree, ring


class ICP(enum.Enum):
    """Control positions of the intolerant barrier."""

    EXECUTE = "execute"
    SUCCESS = "success"
    DONE = "done"  # own work and whole subtree's work complete

    def __repr__(self) -> str:
        return self.value


INTOLERANT_CP_DOMAIN = EnumDomain((ICP.EXECUTE, ICP.SUCCESS, ICP.DONE))


def make_intolerant_barrier(
    nprocs: int | None = None,
    topology: Topology | None = None,
    nphases: int = 2,
    arity: int = 2,
) -> Program:
    """Build the two-wave fault-intolerant tree barrier.

    Actions at process j (parent p, children C):

    * ``WORK :: cp.j = execute -> cp.j := success`` -- the phase's work;
    * ``UP   :: cp.j = success and (forall c in C: cp.c = done and
      ph.c = ph.j) -> cp.j := done`` -- subtree completion aggregates
      upward (leaves pass immediately);
    * root:  ``NEXT :: cp.0 = done -> ph.0 := ph.0 + 1;
      cp.0 := execute`` -- barrier achieved, start the next phase;
    * other: ``NEXT :: cp.j = done and ph.p = ph.j + 1 ->
      ph.j := ph.p; cp.j := execute`` -- the new phase disseminates
      downward.
    """
    if topology is None:
        if nprocs is None:
            raise ValueError("give nprocs or topology")
        topology = kary_tree(nprocs, arity) if nprocs > 2 else ring(nprocs)
    n = topology.nprocs
    if nphases < 2:
        raise ValueError("need >= 2 phases (replicate a single phase)")

    declarations = [
        VariableDecl("cp", INTOLERANT_CP_DOMAIN, ICP.EXECUTE),
        VariableDecl("ph", IntRange(0, nphases - 1), 0),
    ]

    def work_guard(view: StateView) -> bool:
        return view.my("cp") is ICP.EXECUTE

    def work_stmt(view: StateView):
        return [("cp", ICP.SUCCESS)]

    def make_up(pid: int):
        kids = topology.children[pid]

        def guard(view: StateView) -> bool:
            if view.my("cp") is not ICP.SUCCESS:
                return False
            my_ph = view.my("ph")
            return all(
                view.of("cp", c) is ICP.DONE and view.of("ph", c) == my_ph
                for c in kids
            )

        def stmt(view: StateView):
            return [("cp", ICP.DONE)]

        return guard, stmt

    processes = []
    for pid in range(n):
        up_guard, up_stmt = make_up(pid)
        actions: list[Action] = [
            Action("WORK", pid, work_guard, work_stmt, kind="compute"),
            Action("UP", pid, up_guard, up_stmt, kind="comm"),
        ]
        if pid == 0:

            def root_guard(view: StateView) -> bool:
                return view.my("cp") is ICP.DONE

            def root_stmt(view: StateView, _n=nphases):
                return [("ph", (view.my("ph") + 1) % _n), ("cp", ICP.EXECUTE)]

            actions.append(Action("NEXT", 0, root_guard, root_stmt, kind="comm"))
        else:
            parent = topology.parent[pid]

            def follow_guard(view: StateView, _p=parent, _n=nphases) -> bool:
                return (
                    view.my("cp") is ICP.DONE
                    and view.of("ph", _p) == (view.my("ph") + 1) % _n
                )

            def follow_stmt(view: StateView, _p=parent):
                return [("ph", view.of("ph", _p)), ("cp", ICP.EXECUTE)]

            actions.append(
                Action("NEXT", pid, follow_guard, follow_stmt, kind="comm")
            )
        processes.append(Process(pid, tuple(actions)))

    def initial(program: Program) -> State:
        return State.uniform(program, cp=ICP.EXECUTE, ph=0)

    return Program(
        f"Intolerant({topology.name})",
        declarations,
        processes,
        initial_state=initial,
        metadata={
            "family": "intolerant",
            "topology": topology,
            "nphases": nphases,
        },
    )


def intolerant_phases_completed(state: State) -> int:
    """Lower bound on completed barriers read off the root's phase
    counter (meaningful for runs shorter than one phase wrap)."""
    return int(state.get("ph", 0))
