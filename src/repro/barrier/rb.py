"""Program RB -- the barrier superposed on the token ring (Section 4.1).

Process 0 bears the responsibility of all global detections: when it
receives the token (action T1) it inspects the final process(es) of the
circulation and updates its phase and control position; every other
process updates when it receives the token (action T2), copying its
parent's phase and following its parent's control position.  The new
control position ``repeat`` carries "a detectable fault happened during
this instance" back to process 0.

Statement superposed on T1 at process 0 (paper text, extended to the
branching topologies of Section 4.2 where ``N`` becomes the set of
finals, and -- per the Lemma 4.1.2/4.1.3 proof text -- with the recovery
case for a corrupted control position at 0)::

    if cp.0 = ready and cp.F = ready and ph.F = ph.0 then cp.0 := execute
    elseif cp.0 = execute then cp.0 := success
    elseif cp.0 = success then
        if cp.F = success and ph.F = ph.0
        then ph.0 := ph.0 + 1; cp.0 := ready      -- barrier achieved
        else ph.0 := ph.(some final); cp.0 := ready  -- re-execute phase
    elseif cp.0 in {error, repeat} then
        ph.0 := ph.(some final); cp.0 := ready

Statement superposed on T2 at process j != 0 (parent p)::

    ph.j := ph.p
    if cp.j = ready and cp.p = execute then cp.j := execute
    elseif cp.j = execute and cp.p = success then cp.j := success
    elseif cp.j != execute and cp.p = ready then cp.j := ready
    elseif cp.j = error or cp.p != cp.j then cp.j := repeat
"""

from __future__ import annotations

from typing import Any

from repro.barrier.control import CP, RB_CP_DOMAIN
from repro.barrier.tokenring import build_token_actions
from repro.gc.actions import StateView
from repro.gc.domains import BOT, IntRange, SequenceNumberDomain
from repro.gc.faults import FaultSpec
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State
from repro.topology.graphs import Topology, ring


def make_root_update(topology: Topology, nphases: int):
    """The cp/ph statement process 0 executes in parallel with T1."""
    finals = topology.finals

    def stmt(view: StateView):
        cp0 = view.my("cp")
        ph0 = view.my("ph")
        final_cps = [view.of("cp", f) for f in finals]
        final_phs = [view.of("ph", f) for f in finals]
        finals_ready = all(c is CP.READY for c in final_cps)
        finals_success = all(c is CP.SUCCESS for c in final_cps)
        finals_in_phase = all(p == ph0 for p in final_phs)
        updates: list[tuple[str, Any]] = []
        if cp0 is CP.READY and finals_ready and finals_in_phase:
            updates.append(("cp", CP.EXECUTE))
        elif cp0 is CP.EXECUTE:
            updates.append(("cp", CP.SUCCESS))
        elif cp0 is CP.SUCCESS:
            if finals_success and finals_in_phase:
                updates.append(("ph", (ph0 + 1) % nphases))
            else:
                updates.append(("ph", view.choose(final_phs)))
            updates.append(("cp", CP.READY))
        elif cp0 is CP.ERROR or cp0 is CP.REPEAT:
            updates.append(("ph", view.choose(final_phs)))
            updates.append(("cp", CP.READY))
        # cp0 = ready but finals not ready/in-phase: the token circulates
        # without a barrier-layer change.
        return updates

    return stmt


def make_follower_update(topology: Topology, pid: int):
    """The cp/ph statement process ``pid`` executes in parallel with T2."""
    parent = topology.parent[pid]

    def stmt(view: StateView):
        cpj = view.my("cp")
        cpp = view.of("cp", parent)
        updates: list[tuple[str, Any]] = [("ph", view.of("ph", parent))]
        if cpj is CP.READY and cpp is CP.EXECUTE:
            updates.append(("cp", CP.EXECUTE))
        elif cpj is CP.EXECUTE and cpp is CP.SUCCESS:
            updates.append(("cp", CP.SUCCESS))
        elif cpj is not CP.EXECUTE and cpp is CP.READY:
            updates.append(("cp", CP.READY))
        elif cpj is CP.ERROR or cpp is not cpj:
            updates.append(("cp", CP.REPEAT))
        return updates

    return stmt


def make_rb(
    nprocs: int | None = None,
    topology: Topology | None = None,
    nphases: int = 2,
    k: int | None = None,
) -> Program:
    """Build program RB over a ring (default) or a given topology."""
    if topology is None:
        if nprocs is None:
            raise ValueError("give nprocs or topology")
        topology = ring(nprocs)
    n = topology.nprocs
    if nphases < 2:
        raise ValueError(
            "RB needs >= 2 phases (replicate a single phase, Section 3 remark)"
        )
    domain = SequenceNumberDomain(k if k is not None else n + 1)
    declarations = [
        VariableDecl("sn", domain, 0),
        VariableDecl("cp", RB_CP_DOMAIN, CP.READY),
        VariableDecl("ph", IntRange(0, nphases - 1), 0),
    ]
    processes = []
    for pid in range(n):
        if pid == 0:
            actions = build_token_actions(
                topology, domain, pid, t1_extra=make_root_update(topology, nphases)
            )
        else:
            actions = build_token_actions(
                topology, domain, pid, t2_extra=make_follower_update(topology, pid)
            )
        processes.append(Process(pid, tuple(actions)))

    def initial(program: Program) -> State:
        return State.uniform(program, sn=0, cp=CP.READY, ph=0)

    return Program(
        f"RB({topology.name})",
        declarations,
        processes,
        initial_state=initial,
        metadata={
            "family": "rb",
            "topology": topology,
            "nphases": nphases,
            "sn_domain": domain,
        },
    )


def rb_detectable_fault() -> FaultSpec:
    """Section 4.1 detectable fault: ``ph, cp, sn := ?, error, BOT``."""
    return FaultSpec(
        name="rb-detectable",
        resets={"cp": CP.ERROR, "sn": BOT},
        randomized=("ph",),
        detectable=True,
    )


def rb_undetectable_fault() -> FaultSpec:
    """Section 4.1 undetectable fault: ``ph, cp, sn := ?, ?, ?``."""
    return FaultSpec(
        name="rb-undetectable",
        randomized=("ph", "cp", "sn"),
        detectable=False,
    )
