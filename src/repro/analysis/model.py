"""The Section 6.1 analytical performance model.

Units: the time to execute one phase is the unit time; ``c`` is the
communication latency per tree hop and ``h`` the tree height, so one
token circulation over the Figure 2(c) tree costs ``h*c``; ``f`` is the
fault frequency per unit time, so the probability that no fault occurs
during a duration ``d`` is ``(1 - f)**d``.

Key formulae (all derived in the paper):

* a successful phase instance of the fault-tolerant barrier costs
  ``1 + 3hc`` (three control-position changes, each one circulation);
* the probability a fault hits an instance is
  ``f_inst = 1 - (1-f)**(1+3hc)``;
* the number of instances per successful phase is geometric:
  ``E[instances] = 1 / (1-f)**(1+3hc)``;
* the expected time per successful phase is
  ``(1 + 3hc) / (1-f)**(1+3hc)`` (worst case: failed instances are
  charged their full duration);
* the fault-intolerant barrier costs ``1 + 2hc`` per phase;
* the overhead of fault-tolerance is the ratio of the two minus one;
* recovery from an arbitrary state takes at most ``5hc`` beyond work in
  progress (one circulation to fix the sequence numbers, at most four
  to restore the control positions); with the operating assumption
  ``2hc <= 0.5`` that is at most 1.25 time units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _validate(h: int, c: float, f: float) -> None:
    if h < 0:
        raise ValueError(f"tree height must be >= 0, got {h}")
    if c < 0:
        raise ValueError(f"communication latency must be >= 0, got {c}")
    if not 0.0 <= f < 1.0:
        raise ValueError(f"fault frequency must lie in [0, 1), got {f}")


def ft_instance_time(h: int, c: float) -> float:
    """Duration of one instance of the fault-tolerant barrier:
    ``1 + 3hc``."""
    _validate(h, c, 0.0)
    return 1.0 + 3.0 * h * c


def intolerant_phase_time(h: int, c: float) -> float:
    """Duration of one phase under the fault-intolerant barrier:
    ``1 + 2hc``."""
    _validate(h, c, 0.0)
    return 1.0 + 2.0 * h * c


def fault_probability_per_instance(h: int, c: float, f: float) -> float:
    """``f_inst = 1 - (1-f)**(1+3hc)``."""
    _validate(h, c, f)
    return 1.0 - (1.0 - f) ** ft_instance_time(h, c)


def expected_instances(h: int, c: float, f: float) -> float:
    """Expected instances per successful phase:
    ``1 / (1-f)**(1+3hc)`` (mean of the geometric distribution)."""
    _validate(h, c, f)
    return 1.0 / (1.0 - f) ** ft_instance_time(h, c)


def ft_phase_time(h: int, c: float, f: float) -> float:
    """Expected time per successful phase of the fault-tolerant barrier
    (worst case: every instance charged ``1 + 3hc``)."""
    return ft_instance_time(h, c) * expected_instances(h, c, f)


def overhead(h: int, c: float, f: float) -> float:
    """Fractional overhead of fault-tolerance over the intolerant
    baseline: ``ft_phase_time / intolerant_phase_time - 1``."""
    return ft_phase_time(h, c, f) / intolerant_phase_time(h, c) - 1.0


def recovery_time_bound(h: int, c: float) -> float:
    """Upper bound on the protocol's recovery from an arbitrary state:
    ``5hc`` (one circulation for sequence numbers, four for the
    control positions)."""
    _validate(h, c, 0.0)
    return 5.0 * h * c


def recovery_envelope(h: int, c: float) -> float:
    """The paper's operating-point envelope: with ``2hc <= 0.5`` the
    recovery bound 5hc is at most 1.25 time units."""
    return min(recovery_time_bound(h, c), 1.25)


def instances_variance(h: int, c: float, f: float) -> float:
    """Variance of the geometric instance count: ``p / (1-p)^2`` with
    failure probability ``p`` per instance."""
    p_fail = fault_probability_per_instance(h, c, f)
    if p_fail >= 1.0:
        return float("inf")
    return p_fail / (1.0 - p_fail) ** 2


def instances_ci(
    h: int, c: float, f: float, phases: int, z: float = 1.96
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the *mean measured*
    instances-per-phase over ``phases`` successful phases.

    This is what makes the Figure 5 sim-vs-analytic comparisons honest:
    the acceptance band in the tests is the sampling noise of the
    geometric mean, not an arbitrary epsilon.
    """
    if phases < 1:
        raise ValueError("need at least one phase")
    mean = expected_instances(h, c, f)
    half = z * (instances_variance(h, c, f) / phases) ** 0.5
    return (mean - half, mean + half)


def instances_quantile(h: int, c: float, f: float, q: float) -> int:
    """Quantile of the geometric instance count (diagnostics for the
    simulation-vs-analysis comparison)."""
    if not 0.0 < q < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    p_fail = fault_probability_per_instance(h, c, f)
    if p_fail == 0.0:
        return 1
    # P(K <= k) = 1 - p_fail**k  >= q  <=>  k >= log(1-q)/log(p_fail)
    return max(1, math.ceil(math.log(1.0 - q) / math.log(p_fail)))


def height_for_procs(nprocs: int, arity: int = 2) -> int:
    """The paper's mapping from process count to tree height:
    32 processes <-> h = 5, 128 <-> h = 7 (i.e. ``h = log2 N``)."""
    if nprocs < 2:
        raise ValueError("need at least 2 processes")
    return max(1, math.ceil(math.log(nprocs, arity)))


@dataclass(frozen=True)
class AnalyticalModel:
    """Bundled model for a fixed tree height (convenience facade)."""

    h: int

    def instance_time(self, c: float) -> float:
        return ft_instance_time(self.h, c)

    def expected_instances(self, c: float, f: float) -> float:
        return expected_instances(self.h, c, f)

    def phase_time(self, c: float, f: float) -> float:
        return ft_phase_time(self.h, c, f)

    def intolerant_time(self, c: float) -> float:
        return intolerant_phase_time(self.h, c)

    def overhead(self, c: float, f: float) -> float:
        return overhead(self.h, c, f)

    def recovery_bound(self, c: float) -> float:
        return recovery_time_bound(self.h, c)
