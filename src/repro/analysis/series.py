"""Parameter sweeps generating the analytical figure series.

The paper's operating ranges: 32 processes (h = 5), fault frequency
``f`` in [0, 0.1], latency ``c`` in [0, 0.05] (so that ``2hc <= 0.5``,
i.e. synchronization costs at most half a phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.model import expected_instances, overhead, recovery_time_bound

#: Default sweep values, matching the paper's figures.
DEFAULT_H = 5
DEFAULT_F_VALUES = tuple(np.round(np.linspace(0.0, 0.1, 11), 3))
DEFAULT_C_VALUES = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05)
DEFAULT_H_VALUES = (1, 2, 3, 4, 5, 6, 7)


@dataclass(frozen=True)
class Series:
    """One plotted series: x values, y values, a label, and the fixed
    parameters it was generated under."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    params: dict

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x/y length mismatch")


def fig3_series(
    h: int = DEFAULT_H,
    f_values: Sequence[float] = DEFAULT_F_VALUES,
    c_values: Sequence[float] = (0.0, 0.01, 0.05),
) -> list[Series]:
    """Figure 3: expected instances per successful phase vs fault
    frequency, one series per communication latency."""
    return [
        Series(
            label=f"c={c:g}",
            x=tuple(float(f) for f in f_values),
            y=tuple(expected_instances(h, c, float(f)) for f in f_values),
            params={"h": h, "c": c},
        )
        for c in c_values
    ]


def fig4_series(
    h: int = DEFAULT_H,
    c_values: Sequence[float] = DEFAULT_C_VALUES,
    f_values: Sequence[float] = (0.0, 0.01, 0.05),
) -> list[Series]:
    """Figure 4: fractional overhead of fault-tolerance vs latency, one
    series per fault frequency."""
    return [
        Series(
            label=f"f={f:g}",
            x=tuple(float(c) for c in c_values),
            y=tuple(overhead(h, float(c), f) for c in c_values),
            params={"h": h, "f": f},
        )
        for f in f_values
    ]


def recovery_bound_series(
    h_values: Sequence[int] = DEFAULT_H_VALUES,
    c_values: Sequence[float] = DEFAULT_C_VALUES,
) -> list[Series]:
    """The 5hc analytical recovery bound vs latency, one series per tree
    height (the envelope the Figure 7 simulation sits under)."""
    return [
        Series(
            label=f"h={h}",
            x=tuple(float(c) for c in c_values),
            y=tuple(recovery_time_bound(h, float(c)) for c in c_values),
            params={"h": h},
        )
        for h in h_values
    ]
