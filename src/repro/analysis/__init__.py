"""Closed-form performance model from Section 6.1 of the paper."""

from repro.analysis.model import (
    AnalyticalModel,
    expected_instances,
    fault_probability_per_instance,
    ft_phase_time,
    intolerant_phase_time,
    overhead,
    recovery_time_bound,
)
from repro.analysis.series import (
    fig3_series,
    fig4_series,
    recovery_bound_series,
)

__all__ = [
    "AnalyticalModel",
    "expected_instances",
    "fault_probability_per_instance",
    "ft_phase_time",
    "intolerant_phase_time",
    "overhead",
    "recovery_time_bound",
    "fig3_series",
    "fig4_series",
    "recovery_bound_series",
]
