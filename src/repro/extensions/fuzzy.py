"""Fuzzy barriers (Section 8's closing remark).

"The transition from execute to success is the same as entering the
barrier, and the transition from ready to execute is the same as
leaving the barrier.  It is therefore possible to allow a process [to]
perform some useful work between these two state transitions."

On the simulated MPI runtime the split is ``barrier_enter`` /
``barrier_wait``: a rank enters the barrier as soon as its *ordered*
phase work finishes, overlaps the synchronization latency with any work
that does not depend on other ranks, and only then waits.  The helper
below packages that pattern; the benchmarks use it to measure the
latency-hiding win over the plain barrier.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.simmpi.runtime import Comm


def fuzzy_phase(
    comm: Comm,
    ordered_work: float,
    fuzzy_work: float,
) -> Generator[Any, Any, int]:
    """One phase with a fuzzy barrier.

    ``ordered_work`` must complete before the barrier is entered (other
    ranks depend on it); ``fuzzy_work`` is local work overlapped with
    the barrier's synchronization latency.  Yields the barrier result
    (SUCCESS / ERR_FAULT).

    Use as ``result = yield from fuzzy_phase(comm, 1.0, 0.2)``.
    """
    if ordered_work < 0 or fuzzy_work < 0:
        raise ValueError("work durations must be >= 0")
    yield comm.compute(ordered_work)
    handle = yield comm.barrier_enter()
    if fuzzy_work:
        yield comm.compute(fuzzy_work)
    result = yield comm.barrier_wait(handle)
    return result


def plain_phase(
    comm: Comm,
    ordered_work: float,
    fuzzy_work: float,
) -> Generator[Any, Any, int]:
    """The same phase without the fuzzy split (baseline): all work is
    serialized before a plain barrier."""
    yield comm.compute(ordered_work + fuzzy_work)
    result = yield comm.barrier()
    return result
