"""Fail-safe tolerance for uncorrectable detectable faults (Section 7).

"If a fault is uncorrectable, it may be impossible to guarantee that
Progress is satisfied.  Still, if the fault is at least immediately
detectable, it is possible to ensure that Safety is always satisfied
... the program guarantees that it never reports a completion of a
barrier incorrectly.  But the program may not always report a
completion in the presence of faults."

We realise this as the crash-extended CB *without* repair: the crash is
uncorrectable, the crashed process never acts again, and the remaining
processes block rather than complete a barrier without it.  The
:class:`FailSafeMonitor` watches a run and reports the fatal error to
the application (the paper's "report a fatal error and stop") while
certifying that no barrier was ever reported complete incorrectly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.barrier.cb import make_cb
from repro.barrier.spec import BarrierSpecChecker, SpecReport
from repro.extensions.crash import crashed_processes, with_crash
from repro.gc.program import Program
from repro.gc.state import State
from repro.gc.trace import Trace


def make_failsafe_cb(nprocs: int, nphases: int = 2) -> Program:
    """CB extended with uncorrectable crashes (``up`` guard, no repair)."""
    return with_crash(make_cb(nprocs, nphases))


@dataclass
class FailSafeVerdict:
    """Outcome of a fail-safe run."""

    fatal_reported: bool
    crashed: list[int]
    report: SpecReport

    @property
    def safety_ok(self) -> bool:
        """Safety must hold unconditionally (the fail-safe guarantee)."""
        return self.report.safety_ok

    @property
    def completions_after_crash(self) -> int:
        """Barriers reported complete after the crash.  At most the
        in-flight phase may complete; nothing after it."""
        return self._post_crash_completions

    _post_crash_completions: int = 0


class FailSafeMonitor:
    """Checks the fail-safe guarantee on a finished run."""

    def __init__(self, nprocs: int, nphases: int) -> None:
        self.nprocs = nprocs
        self.nphases = nphases

    def verdict(
        self, trace: Trace, initial_state: State, final_state: State
    ) -> FailSafeVerdict:
        crashed = crashed_processes(final_state)
        checker = BarrierSpecChecker(self.nprocs, self.nphases)
        report = checker.check(trace, initial_state)
        verdict = FailSafeVerdict(
            fatal_reported=bool(crashed),
            crashed=crashed,
            report=report,
        )
        if crashed:
            crash_steps = [
                ev.step for ev in trace.faults() if ev.action == "fault:crash"
            ]
            first_crash = min(crash_steps) if crash_steps else 0
            verdict._post_crash_completions = sum(
                1
                for inst in report.instances
                if inst.successful
                and inst.close_step is not None
                and inst.close_step > first_crash
            )
        return verdict
