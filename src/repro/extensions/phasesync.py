"""Phase synchronization instantiated from the barrier program (§7).

"In the phase synchronization problem, each process executes a
(potentially infinite) sequence of phases.  A process executes a phase
only when all processes have completed the previous phase."  The
traditional fault model corrupts phases *initially only*, and requires
every phase to execute correctly without assumptions on process speeds.

The mapping: each phase of phase synchronization is an instance of a
phase of barrier synchronization.  The barrier programs tolerate
detectable initial corruption without executing any phase incorrectly;
this module provides the invariant characterizing phase synchronization
over barrier-program states and a helper asserting the no-skip property
over a trace (no process ever advances its phase by more than one, and
never past a process that has not completed the previous phase).
"""

from __future__ import annotations

from repro.barrier.control import CP
from repro.barrier.spec import SpecReport
from repro.gc.state import State


def phase_sync_invariant(state: State, nphases: int) -> bool:
    """A process may be at most one phase ahead, and only if every
    process behind it has *completed* the previous phase.

    Over CB states: processes in phase ``i+1`` coexist with processes in
    phase ``i`` only while the latter are in control position success
    (they completed phase i) -- the hand-over wave.
    """
    n = state.nprocs
    phases = [state.get("ph", p) for p in range(n)]
    distinct = sorted(set(phases))
    if len(distinct) == 1:
        return True
    if len(distinct) != 2:
        return False
    lo, hi = distinct
    if (hi - lo) % nphases != 1 and (lo - hi) % nphases != 1:
        return False
    # Normalize: behind = the predecessor phase.
    behind = lo if (hi - lo) % nphases == 1 else hi
    return all(
        state.get("cp", p) is CP.SUCCESS
        for p in range(n)
        if phases[p] == behind
    )


def no_phase_skipped(report: SpecReport) -> bool:
    """Across a run, successful phases advance one at a time (the
    phase-synchronization progress discipline)."""
    last: int | None = None
    for inst in report.instances:
        if not inst.successful:
            continue
        if last is not None:
            step = (inst.phase - last) % report.nphases
            if step not in (0, 1):
                return False
        last = inst.phase
    return True
