"""Section 7: extensions and instantiations.

* :mod:`repro.extensions.classification` -- Table 1, the fault
  classification (detectability x correctability) and the appropriate
  tolerance for each class;
* :mod:`repro.extensions.crash` -- modelling crash and Byzantine faults
  with auxiliary ``up``/``good`` variables;
* :mod:`repro.extensions.failsafe` -- fail-safe tolerance for
  uncorrectable detectable faults (never report a completion wrongly);
* :mod:`repro.extensions.commit` -- atomic commitment instantiation;
* :mod:`repro.extensions.unison` -- clock unison instantiation;
* :mod:`repro.extensions.phasesync` -- phase synchronization
  instantiation;
* :mod:`repro.extensions.fuzzy` -- fuzzy barriers (split enter/wait).
"""

from repro.extensions.classification import (
    Correctability,
    Detectability,
    FaultClass,
    Tolerance,
    appropriate_tolerance,
    classify,
    STANDARD_FAULTS,
)
from repro.extensions.crash import with_byzantine, with_crash
from repro.extensions.failsafe import FailSafeMonitor, make_failsafe_cb
from repro.extensions.commit import TransactionOutcome, run_transactions
from repro.extensions.unison import clock_unison_invariant, clocks_of
from repro.extensions.phasesync import phase_sync_invariant
from repro.extensions.fuzzy import fuzzy_phase

__all__ = [
    "Correctability",
    "Detectability",
    "FaultClass",
    "Tolerance",
    "appropriate_tolerance",
    "classify",
    "STANDARD_FAULTS",
    "with_crash",
    "with_byzantine",
    "FailSafeMonitor",
    "make_failsafe_cb",
    "TransactionOutcome",
    "run_transactions",
    "clock_unison_invariant",
    "clocks_of",
    "phase_sync_invariant",
    "fuzzy_phase",
]
