"""Clock unison instantiated from the barrier program (Section 7).

"In the clock unison problem, every process maintains a bounded-value
counter (clock) such that, at all times, the counter at two processes
differs by at most one and, infinitely often, the counter is
incremented.  ... phase i of the computation may be mapped onto the
i-th value of the counter."

The phase variable of CB/RB *is* the clock: in the absence of
undetectable faults the phases of any two processes differ by at most
one (cyclically), and every successful barrier increments them.  The
paper's solution is stabilizing, so the clocks re-unify from arbitrary
corruption -- which is exactly the traditional clock-unison tolerance
requirement.
"""

from __future__ import annotations

from repro.gc.state import State


def clocks_of(state: State, ph_var: str = "ph") -> list[int]:
    """Read the clock (phase) vector out of a barrier program state."""
    return [state.get(ph_var, p) for p in range(state.nprocs)]


def cyclic_distance(a: int, b: int, n: int) -> int:
    """min(|a-b| mod n, |b-a| mod n) -- the unison metric on Z_n."""
    d = (a - b) % n
    return min(d, n - d)


def clock_unison_invariant(state: State, nphases: int, ph_var: str = "ph") -> bool:
    """At all times the clocks of any two processes differ by <= 1."""
    clocks = clocks_of(state, ph_var)
    return all(
        cyclic_distance(a, b, nphases) <= 1
        for i, a in enumerate(clocks)
        for b in clocks[i + 1 :]
    )


def max_clock_skew(state: State, nphases: int, ph_var: str = "ph") -> int:
    """The largest pairwise cyclic clock distance (0 or 1 when unison
    holds; larger only transiently after undetectable faults)."""
    clocks = clocks_of(state, ph_var)
    if len(clocks) < 2:
        return 0
    return max(
        cyclic_distance(a, b, nphases)
        for i, a in enumerate(clocks)
        for b in clocks[i + 1 :]
    )
