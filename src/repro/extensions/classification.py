"""Table 1: classification of faults and the appropriate tolerances.

==============  ==================  =============
Correctability  Detectable          Undetectable
==============  ==================  =============
Immediately     trivially masking   (same row: pretend the fault away)
Eventually      masking             stabilizing
Uncorrectable   fail-safe           intolerant
==============  ==================  =============

The paper's main program covers the middle row; immediately-correctable
faults are handled trivially (e.g. ECC-corrected message corruption);
for uncorrectable detectable faults the program is extended to report a
fatal error and stop -- fail-safe -- and for uncorrectable undetectable
faults no tolerance is possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Detectability(enum.Enum):
    DETECTABLE = "detectable"
    UNDETECTABLE = "undetectable"


class Correctability(enum.Enum):
    IMMEDIATE = "immediately-correctable"
    EVENTUAL = "eventually-correctable"
    UNCORRECTABLE = "uncorrectable"


class Tolerance(enum.Enum):
    TRIVIALLY_MASKING = "trivially-masking"
    MASKING = "masking"
    STABILIZING = "stabilizing"
    FAIL_SAFE = "fail-safe"
    INTOLERANT = "intolerant"


@dataclass(frozen=True)
class FaultClass:
    """One cell of Table 1."""

    detectability: Detectability
    correctability: Correctability

    @property
    def tolerance(self) -> Tolerance:
        return appropriate_tolerance(self.detectability, self.correctability)


def appropriate_tolerance(
    detectability: Detectability, correctability: Correctability
) -> Tolerance:
    """Table 1's mapping from fault class to appropriate tolerance."""
    if correctability is Correctability.IMMEDIATE:
        # Correction can be modelled as simultaneous with occurrence, so
        # the program may pretend the fault does not exist.
        return Tolerance.TRIVIALLY_MASKING
    if correctability is Correctability.EVENTUAL:
        if detectability is Detectability.DETECTABLE:
            return Tolerance.MASKING
        return Tolerance.STABILIZING
    # Uncorrectable.
    if detectability is Detectability.DETECTABLE:
        return Tolerance.FAIL_SAFE
    return Tolerance.INTOLERANT


#: The paper's Section 1/2 examples of standard fault types, classified.
STANDARD_FAULTS: dict[str, FaultClass] = {
    # Communication faults
    "message-loss": FaultClass(Detectability.DETECTABLE, Correctability.EVENTUAL),
    "message-corruption-detected": FaultClass(
        Detectability.DETECTABLE, Correctability.EVENTUAL
    ),
    "message-corruption-ecc": FaultClass(
        Detectability.DETECTABLE, Correctability.IMMEDIATE
    ),
    "message-corruption-undetected": FaultClass(
        Detectability.UNDETECTABLE, Correctability.EVENTUAL
    ),
    "message-duplication": FaultClass(
        Detectability.DETECTABLE, Correctability.EVENTUAL
    ),
    "message-reorder": FaultClass(Detectability.DETECTABLE, Correctability.EVENTUAL),
    "unexpected-reception": FaultClass(
        Detectability.DETECTABLE, Correctability.EVENTUAL
    ),
    # Processor faults
    "fail-stop": FaultClass(Detectability.DETECTABLE, Correctability.EVENTUAL),
    "reboot": FaultClass(Detectability.DETECTABLE, Correctability.EVENTUAL),
    "permanent-crash": FaultClass(
        Detectability.DETECTABLE, Correctability.UNCORRECTABLE
    ),
    # Process faults
    "design-error": FaultClass(Detectability.UNDETECTABLE, Correctability.EVENTUAL),
    "hanging-process": FaultClass(
        Detectability.UNDETECTABLE, Correctability.EVENTUAL
    ),
    "byzantine": FaultClass(
        Detectability.UNDETECTABLE, Correctability.UNCORRECTABLE
    ),
    # System faults
    "memory-leak": FaultClass(Detectability.UNDETECTABLE, Correctability.EVENTUAL),
    "memory-corruption": FaultClass(
        Detectability.UNDETECTABLE, Correctability.EVENTUAL
    ),
    "io-error": FaultClass(Detectability.DETECTABLE, Correctability.EVENTUAL),
    "reconfiguration": FaultClass(
        Detectability.DETECTABLE, Correctability.EVENTUAL
    ),
    # Performance faults
    "floating-point-exception": FaultClass(
        Detectability.DETECTABLE, Correctability.EVENTUAL
    ),
    "transient-state-corruption": FaultClass(
        Detectability.UNDETECTABLE, Correctability.EVENTUAL
    ),
}


def classify(fault_name: str) -> FaultClass:
    """Look up a standard fault type; raises KeyError for unknown names."""
    try:
        return STANDARD_FAULTS[fault_name]
    except KeyError:
        raise KeyError(
            f"unknown fault {fault_name!r}; known: {sorted(STANDARD_FAULTS)}"
        ) from None


def table1_rows() -> list[tuple[str, str, str]]:
    """The rendered Table 1 (correctability, detectable, undetectable)."""
    rows = []
    for corr in Correctability:
        det_tol = appropriate_tolerance(Detectability.DETECTABLE, corr)
        undet_tol = appropriate_tolerance(Detectability.UNDETECTABLE, corr)
        rows.append((corr.value, det_tol.value, undet_tol.value))
    return rows
