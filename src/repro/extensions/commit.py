"""Atomic commitment instantiated from the barrier program (Section 7).

"To obtain an atomic commitment program, we allow each subtransaction
to change its control position from execute to success if that
subtransaction has completed successfully.  Otherwise, it changes its
control position to error."

A transaction is one phase; each rank executes its subtransaction and
votes; a NO vote plays the role of the detectable ``error`` -- the
transaction's instance fails and (in TOLERATE spirit) is retried, so
transaction ``j+1`` executes only after transaction ``j`` commits.

:func:`run_transactions` drives this on the simulated MPI runtime: the
vote aggregation is an ``allreduce(min)`` (commit iff everyone voted
yes) and the barrier semantics guarantee no rank starts transaction
``j+1`` before ``j`` commits everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.simmpi.runtime import Comm, Runtime

#: vote_fn(rank, transaction_index, attempt) -> bool (yes/no)
VoteFn = Callable[[int, int, int], bool]


@dataclass
class TransactionOutcome:
    """History of one transaction across its attempts."""

    index: int
    attempts: int = 0
    committed: bool = False
    votes: list[tuple[bool, ...]] = field(default_factory=list)


def commit_protocol(comm: Comm, ntransactions: int, vote_fn: VoteFn, max_attempts: int = 50):
    """The per-rank generator: run ``ntransactions`` transactions, each
    retried until every subtransaction succeeds (votes yes)."""
    log: list[TransactionOutcome] = []
    for t in range(ntransactions):
        outcome = TransactionOutcome(index=t)
        for attempt in range(max_attempts):
            outcome.attempts += 1
            yield comm.compute(0.1)  # execute the subtransaction
            vote = bool(vote_fn(comm.rank, t, attempt))
            all_yes = yield comm.allreduce(1 if vote else 0, op="min")
            if all_yes == 1:
                outcome.committed = True
                break
            # A NO vote is the detectable error: re-execute the
            # transaction (new instance of the same phase).
        if not outcome.committed:
            raise RuntimeError(
                f"transaction {t} did not commit in {max_attempts} attempts"
            )
        log.append(outcome)
        yield comm.barrier()  # transaction boundary
    return log


def run_transactions(
    nprocs: int,
    ntransactions: int,
    vote_fn: VoteFn,
    latency: float = 0.01,
    seed: int = 0,
    max_attempts: int = 50,
    **runtime_kwargs,
) -> list[list[TransactionOutcome]]:
    """Run the commit protocol; returns each rank's transaction log.

    The logs agree across ranks on commit order and attempt counts
    (asserted by the test-suite), which is the atomic-commitment
    guarantee inherited from the barrier's Safety.
    """
    runtime = Runtime(nprocs, latency=latency, seed=seed, **runtime_kwargs)
    return runtime.run(
        lambda comm: commit_protocol(comm, ntransactions, vote_fn, max_attempts)
    )
