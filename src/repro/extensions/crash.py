"""Crash and Byzantine faults via auxiliary variables (Section 7).

"A fault such as a permanent crash of a processor or a fault that
causes a process to become Byzantine seems to corrupt actions -- as
opposed to variables ... It is, however, possible to represent the
corruption of actions by faults that corrupt variables, by introducing
so-called auxiliary variables."

* :func:`with_crash` adds a boolean ``up`` per process; every program
  action is guarded by ``up``.  The crash fault sets ``up := false``;
  the (optional) repair fault restarts the process with reset state
  (``up := true`` plus the program's detectable reset), modelling
  "restart all fail-stopped processes of that processor on some other
  processor -- albeit with different states".
* :func:`with_byzantine` adds a boolean ``good``; while ``good`` holds
  the process runs its normal actions; when a fault sets ``good :=
  false`` an extra always-enabled action assigns nondeterministic values
  to the process's variables (Byzantine behaviour).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.gc.actions import Action, StateView
from repro.gc.domains import EnumDomain
from repro.gc.faults import FaultSpec
from repro.gc.program import Process, Program, VariableDecl
from repro.gc.state import State

BOOL_DOMAIN = EnumDomain((False, True))


def _guarded(action: Action, aux: str) -> Action:
    """Wrap an action so it is enabled only while ``aux`` holds."""

    def guard(view: StateView, _g=action.guard) -> bool:
        return bool(view.my(aux)) and _g(view)

    return Action(
        action.name,
        action.pid,
        guard,
        action.statement,
        kind=action.kind,
        duration=action.duration,
    )


def _extend(
    program: Program,
    name: str,
    aux: str,
    extra_actions: Mapping[int, list[Action]] | None = None,
) -> Program:
    declarations = list(program.declarations) + [
        VariableDecl(aux, BOOL_DOMAIN, True)
    ]
    processes = []
    for proc in program.processes:
        actions = [_guarded(a, aux) for a in proc.actions]
        if extra_actions:
            actions.extend(extra_actions.get(proc.pid, []))
        processes.append(Process(proc.pid, tuple(actions)))

    base_initial = program.initial_state

    def initial(p: Program) -> State:
        base = base_initial()
        vectors = {v: list(base.vector(v)) for v in base.variables}
        vectors[aux] = [True] * p.nprocs
        return State(vectors, p.nprocs)

    return Program(
        name, declarations, processes, initial_state=initial, metadata=dict(program.metadata)
    )


# ----------------------------------------------------------------------
# Crash
# ----------------------------------------------------------------------
def with_crash(program: Program) -> Program:
    """The ``up``-guarded version of ``program``."""
    return _extend(program, f"{program.name}+crash", "up")


def crash_fault() -> FaultSpec:
    """Permanent (until repaired) crash: ``up := false``."""
    return FaultSpec(name="crash", resets={"up": False}, detectable=True)


def repair_fault(reset: FaultSpec) -> FaultSpec:
    """Repair a crashed process: ``up := true`` plus the program's own
    detectable reset (the restarted process has a fresh, reset state)."""
    resets = dict(reset.resets)
    resets["up"] = True
    return FaultSpec(
        name=f"repair+{reset.name}",
        resets=resets,
        randomized=tuple(reset.randomized),
        detectable=True,
    )


def crashed_processes(state: State) -> list[int]:
    return [p for p in range(state.nprocs) if not state.get("up", p)]


# ----------------------------------------------------------------------
# Byzantine
# ----------------------------------------------------------------------
def with_byzantine(program: Program) -> Program:
    """The ``good``-guarded version of ``program`` with a Byzantine
    action per process (enabled while ``good`` is false) that assigns
    nondeterministic values to the process's program variables."""
    base_vars = [(d.name, d.domain) for d in program.declarations]

    def byz_guard(view: StateView) -> bool:
        return not view.my("good")

    def byz_stmt(view: StateView):
        updates: list[tuple[str, Any]] = []
        for name, domain in base_vars:
            values = list(domain.values())
            updates.append((name, view.choose(values)))
        return updates

    extra = {
        pid: [Action("BYZ", pid, byz_guard, byz_stmt, kind="local")]
        for pid in range(program.nprocs)
    }
    return _extend(program, f"{program.name}+byzantine", "good", extra)


def byzantine_fault() -> FaultSpec:
    """Turn a process Byzantine: ``good := false``."""
    return FaultSpec(name="byzantine", resets={"good": False}, detectable=False)


def byzantine_repair(reset: FaultSpec) -> FaultSpec:
    """Restore a Byzantine process with a reset state."""
    resets = dict(reset.resets)
    resets["good"] = True
    return FaultSpec(
        name=f"byz-repair+{reset.name}",
        resets=resets,
        randomized=tuple(reset.randomized),
        detectable=True,
    )
