"""Metrics extracted from the timed barrier simulations.

The aggregates are derivable from structured traces: an engine run with
a :class:`repro.obs.Tracer` yields ``phase_start``/``phase_end`` events
from which :func:`metrics_from_events` rebuilds the same
:class:`PhaseMetrics` the engine computed natively -- the conformance
property the test suite pins down to 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class InstanceStat:
    """One phase instance: the attempt window and its outcome."""

    phase: int
    start: float
    end: float
    success: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PhaseMetrics:
    """Aggregated simulation output."""

    instances: list[InstanceStat] = field(default_factory=list)
    total_time: float = 0.0

    def record(self, stat: InstanceStat) -> None:
        self.instances.append(stat)

    # ------------------------------------------------------------------
    @property
    def total_instances(self) -> int:
        return len(self.instances)

    @property
    def successful_phases(self) -> int:
        return sum(1 for s in self.instances if s.success)

    @property
    def failed_instances(self) -> int:
        return self.total_instances - self.successful_phases

    @property
    def instances_per_phase(self) -> float:
        """The Figure 3/5 quantity: instances executed per successful
        phase (1.0 when no faults occur).

        With zero successful phases the ratio is ``inf`` -- every
        instance was "spent" without completing a phase -- and
        consistently so whatever the instance count, matching
        :attr:`repro.obs.summary.TraceSummary.instances_per_phase`.
        """
        succ = self.successful_phases
        if succ == 0:
            return float("inf")
        return self.total_instances / succ

    @property
    def time_per_phase(self) -> float:
        """Mean virtual time per successful phase, including failed
        instances and all circulations."""
        succ = self.successful_phases
        if succ == 0:
            return float("nan")
        return self.total_time / succ

    def instance_runs(self) -> list[int]:
        """Consecutive instance counts per successful phase (each run
        ends with its successful instance)."""
        runs: list[int] = []
        current = 0
        for stat in self.instances:
            current += 1
            if stat.success:
                runs.append(current)
                current = 0
        return runs

    def mean_failed_duration(self) -> float:
        failed = [s.duration for s in self.instances if not s.success]
        return sum(failed) / len(failed) if failed else 0.0

    def mean_successful_duration(self) -> float:
        ok = [s.duration for s in self.instances if s.success]
        return sum(ok) / len(ok) if ok else float("nan")


def metrics_from_events(events: Iterable) -> PhaseMetrics:
    """Rebuild :class:`PhaseMetrics` from a structured trace.

    Pairs each ``phase_end`` with the open ``phase_start`` (a trailing
    start with no end -- a run stopped mid-instance -- is ignored,
    exactly as the engines only record completed instances).
    """
    from repro.obs.events import PHASE_END, PHASE_START

    metrics = PhaseMetrics()
    open_start: float | None = None
    last_time = 0.0
    for event in events:
        if event.time > last_time:
            last_time = event.time
        if event.kind == PHASE_START:
            open_start = event.time
        elif event.kind == PHASE_END:
            if open_start is None:
                continue  # end without a start: partial trace, skip
            metrics.record(
                InstanceStat(
                    phase=int(event.data["phase"]),
                    start=open_start,
                    end=event.time,
                    success=bool(event.data["success"]),
                )
            )
            open_start = None
    metrics.total_time = last_time
    return metrics


def overhead_vs_baseline(ft_time_per_phase: float, base_time_per_phase: float) -> float:
    """Fractional overhead of the fault-tolerant barrier over the
    intolerant baseline (the Figure 4/6 quantity)."""
    if base_time_per_phase <= 0:
        raise ValueError("baseline time per phase must be positive")
    return ft_time_per_phase / base_time_per_phase - 1.0
