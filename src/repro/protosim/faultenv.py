"""Fault arrival processes for the timed simulations.

The paper's fault frequency ``f`` is defined against unit time (the
phase-execution time): the probability that no fault occurs during a
duration ``d`` is ``(1 - f)**d``.  That makes fault arrivals a Poisson
process with rate ``lambda = -ln(1 - f)`` per unit time, which is what
:class:`DetectableFaultEnv` draws.  Each arrival strikes a uniformly
random process.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, log
from typing import Any, Iterator

import numpy as np


@dataclass
class DetectableFaultEnv:
    """Exponential fault arrivals over ``nprocs`` processes.

    With a ``tracer``, the environment counts its arrival draws
    (``faultenv.draws``) and victim picks (``faultenv.victims``) so a
    trace records how much fault pressure a run was configured for --
    the injection sites themselves emit the ``fault`` events.
    """

    frequency: float
    nprocs: int
    tracer: Any = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.frequency < 1.0:
            raise ValueError(f"fault frequency must be in [0, 1): {self.frequency}")
        if self.nprocs < 1:
            raise ValueError("need at least one process")

    @property
    def rate(self) -> float:
        """Arrival rate: ``-ln(1 - f)`` per unit time."""
        return 0.0 if self.frequency == 0.0 else -log(1.0 - self.frequency)

    def arrivals(
        self, rng: np.random.Generator, until: float
    ) -> Iterator[tuple[float, int]]:
        """Yield ``(time, victim_pid)`` pairs with time < ``until``."""
        rate = self.rate
        if rate == 0.0:
            return
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= until:
                return
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.incr("faultenv.draws")
                self.tracer.incr("faultenv.victims")
            yield t, int(rng.integers(0, self.nprocs))

    def next_arrival(self, rng: np.random.Generator, now: float) -> float:
        """One draw: the next arrival time after ``now`` (inf if f=0)."""
        rate = self.rate
        if rate == 0.0:
            return inf
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.incr("faultenv.draws")
        return now + rng.exponential(1.0 / rate)

    def victim(self, rng: np.random.Generator) -> int:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.incr("faultenv.victims")
        return int(rng.integers(0, self.nprocs))
