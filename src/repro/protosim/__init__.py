"""Timed protocol simulation (the Section 6.2 simulation study).

The paper simulated program RB in SIEFAST under maximal parallel
semantics with a real-time value per action and a fault environment.  We
reproduce that with a discrete-event simulation of the tree-structured
protocol (Figure 2c):

* :mod:`repro.protosim.treebarrier` -- the fault-tolerant barrier node
  state machine driven by token circulations (waves) from process 0;
* :mod:`repro.protosim.intolerant` -- the two-wave baseline;
* :mod:`repro.protosim.faultenv` -- fault arrival processes calibrated
  to the paper's frequency parameter ``f``;
* :mod:`repro.protosim.metrics` -- instances/phase, phase times,
  overhead;
* :mod:`repro.protosim.recovery` -- the Figure 7 undetectable-fault
  recovery experiment.
"""

from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig
from repro.protosim.intolerant import IntolerantTreeBarrierSim
from repro.protosim.faultenv import DetectableFaultEnv
from repro.protosim.metrics import PhaseMetrics, overhead_vs_baseline
from repro.protosim.recovery import RecoveryExperiment, RecoveryResult

__all__ = [
    "FTTreeBarrierSim",
    "SimConfig",
    "IntolerantTreeBarrierSim",
    "DetectableFaultEnv",
    "PhaseMetrics",
    "overhead_vs_baseline",
    "RecoveryExperiment",
    "RecoveryResult",
]
