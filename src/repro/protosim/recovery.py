"""The Figure 7 experiment: recovery from undetectable faults.

The program is perturbed to an *arbitrary* state -- every node gets a
random control position and phase, nodes caught in ``execute`` have a
random amount of phase work outstanding -- and we measure the virtual
time until the protocol reaches a start state (all processes ready, one
phase), from where every subsequent computation satisfies the
specification (Lemma 4.1.3).

Stage 1 of the paper's recovery analysis (correcting the sequence
numbers) costs at most ``h*c``; we charge that in full before the root
re-acquires the token.  Stage 2 (correcting ``cp``/``ph``) is simulated
exactly: the root's circulations pull every node through the RB rules,
stalling where perturbed processes must first finish the phase work they
were caught executing.  The analytical envelope is ``5hc`` plus work in
progress; under the paper's operating assumption the recovery stays
within ~1.25 time units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

import numpy as np

from repro.barrier.control import CP
from repro.obs.tracer import ensure_tracer
from repro.protosim.treebarrier import FTTreeBarrierSim, SimConfig
from repro.topology.graphs import kary_tree

_PERTURB_STATES = (CP.READY, CP.EXECUTE, CP.SUCCESS, CP.ERROR, CP.REPEAT)


@dataclass
class RecoveryResult:
    """Recovery times (virtual time units) over the trials."""

    h: int
    c: float
    times: list[float] = field(default_factory=list)

    @property
    def mean_time(self) -> float:
        return mean(self.times) if self.times else float("nan")

    @property
    def max_time(self) -> float:
        return max(self.times) if self.times else float("nan")


class RecoveryExperiment:
    """Repeated perturb-and-recover trials on a binary tree of height h."""

    def __init__(
        self,
        h: int,
        c: float,
        work_time: float = 1.0,
        phase_values: int = 8,
        early_abort: bool = False,
        stage1: str = "uniform",
        seed: int = 0,
        tracer=None,
    ) -> None:
        if h < 1:
            raise ValueError("tree height must be >= 1")
        if stage1 not in ("worst", "uniform", "none"):
            raise ValueError(f"stage1 must be worst/uniform/none, got {stage1!r}")
        # early_abort defaults off here: the paper's RB executes phases
        # atomically, so recovery pays for work in progress.
        self.stage1 = stage1
        self.h = h
        self.c = c
        self.work_time = work_time
        self.phase_values = phase_values
        self.early_abort = early_abort
        self.seed = seed
        # Virtual time restarts at 0 each trial, so recovery events carry
        # an explicit latency (the summarizer prefers it over pairing).
        self.tracer = ensure_tracer(tracer)
        # The paper's process-count mapping: 32 processes <-> h = 5.
        self.nprocs = 2**h
        self.topology = kary_tree(self.nprocs, 2)
        assert self.topology.height == h, "binary tree height mismatch"

    # ------------------------------------------------------------------
    def run_one(self, trial_seed: int) -> float:
        """One perturb-and-recover trial; returns the recovery time."""
        config = SimConfig(
            latency=self.c,
            work_time=self.work_time,
            fault_frequency=0.0,
            early_abort=self.early_abort,
            seed=trial_seed,
        )
        sim = FTTreeBarrierSim(
            topology=self.topology, config=config, tracer=self.tracer
        )
        rng = np.random.default_rng(trial_seed)

        # The undetectable fault: arbitrary state at every process.
        for node in sim.nodes:
            node.state = _PERTURB_STATES[int(rng.integers(0, len(_PERTURB_STATES)))]
            node.phase = int(rng.integers(0, self.phase_values))
            if node.state is CP.EXECUTE:
                node.work_end = rng.uniform(0.0, self.work_time)
            else:
                node.work_end = -1.0
        if self.tracer.enabled:
            # The whole-system perturbation (pid None: no single victim).
            self.tracer.fault(
                0.0, None, detectable=False, trial_seed=trial_seed
            )

        # The start state is observed by the root inside its
        # wave-completion callback (it immediately begins the next
        # instance in the same event), so detection goes through the
        # simulator's hook rather than an inter-event predicate.
        recovered_at: list[float] = []
        sim.start_state_hook = lambda t: recovered_at.append(t)

        def all_ready() -> bool:
            first = sim.nodes[0]
            return all(
                n.state is CP.READY and n.phase == first.phase
                for n in sim.nodes
            )

        # Stage 1: sequence-number stabilization, after which the root
        # holds the unique token and stage 2 begins.  The analysis bounds
        # it by one circulation (h*c); from a random sequence-number
        # state the token reaches the root after a uniform fraction of
        # that ("uniform", the default).
        if self.stage1 == "worst":
            stage1 = self.h * self.c
        elif self.stage1 == "uniform":
            stage1 = float(rng.uniform(0.0, self.h * self.c))
        else:
            stage1 = 0.0
        if all_ready():
            return self._record_recovery(stage1, trial_seed)
        sim.sim.at(stage1, sim._root_step)
        sim.sim.run(stop=lambda: bool(recovered_at), max_events=2_000_000)
        if not recovered_at:  # pragma: no cover - protocol failure guard
            raise AssertionError(
                f"no recovery: h={self.h} c={self.c} seed={trial_seed}"
            )
        return self._record_recovery(recovered_at[0], trial_seed)

    def _record_recovery(self, at: float, trial_seed: int) -> float:
        if self.tracer.enabled:
            self.tracer.recovery(at, 0, latency=at, trial_seed=trial_seed)
        return at

    def run(self, trials: int = 50) -> RecoveryResult:
        result = RecoveryResult(self.h, self.c)
        base = np.random.SeedSequence(self.seed)
        for i, child in enumerate(base.spawn(trials)):
            trial_seed = int(child.generate_state(1)[0])
            result.times.append(self.run_one(trial_seed))
        return result
