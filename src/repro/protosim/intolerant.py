"""Timed simulation of the fault-intolerant two-wave tree barrier.

Phase work starts at each node when the phase-start (down) wave reaches
it; completion aggregates up the tree; the root releases the next phase.
Steady-state period: ``1 + 2hc`` (work overlaps the down wave; the up
wave is gated by the deepest leaf's completion), matching the paper's
baseline accounting.

The baseline has no tolerance: if ``fault_frequency > 0`` a struck node
simply never reports completion for its current phase and the barrier
*hangs* -- ``run`` then returns with fewer completed phases and
``hung=True``.  (This deliberately demonstrates why the baseline cannot
be used under faults; overhead comparisons run it fault-free, as the
paper does.)
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf

from repro.des.core import Simulation
from repro.protosim.faultenv import DetectableFaultEnv
from repro.protosim.metrics import InstanceStat, PhaseMetrics
from repro.topology.graphs import Topology, kary_tree


@dataclass
class _INode:
    pid: int
    phase: int = 0
    done: bool = False  # own work complete for current phase
    subtree_done: int = 0  # children that reported completion
    crashed: bool = False


class IntolerantTreeBarrierSim:
    """Timed two-wave tree barrier (no fault tolerance)."""

    def __init__(
        self,
        topology: Topology | None = None,
        nprocs: int | None = None,
        arity: int = 2,
        latency: float = 0.01,
        work_time: float = 1.0,
        fault_frequency: float = 0.0,
        seed: int | None = 0,
    ) -> None:
        if topology is None:
            if nprocs is None:
                raise ValueError("give nprocs or topology")
            topology = kary_tree(nprocs, arity)
        self.topology = topology
        self.latency = latency
        self.work_time = work_time
        self.sim = Simulation(seed=seed)
        self.nodes = [_INode(p) for p in range(topology.nprocs)]
        self.children = topology.children
        self.parent = topology.parent
        self.stats = PhaseMetrics()
        self.hung = False
        self._phase_start = 0.0
        self._fault_env = DetectableFaultEnv(fault_frequency, topology.nprocs)
        self.faults_injected = 0

    # ------------------------------------------------------------------
    def run(self, phases: int = 100, max_time: float = 10_000.0) -> PhaseMetrics:
        self._target = phases
        self._schedule_next_fault()
        self._begin_phase(0)
        self.sim.run(
            until=max_time,
            stop=lambda: self.stats.successful_phases >= phases,
        )
        self.stats.total_time = self.sim.now
        if self.stats.successful_phases < phases:
            self.hung = True
        return self.stats

    # ------------------------------------------------------------------
    def _schedule_next_fault(self) -> None:
        t = self._fault_env.next_arrival(self.sim.rng("faults"), self.sim.now)
        if t == inf:
            return
        self.sim.at(t, self._inject_fault)

    def _inject_fault(self) -> None:
        victim = self._fault_env.victim(self.sim.rng("faults"))
        # The baseline has no recovery: the struck node loses its phase
        # work and never completes the current phase.
        self.nodes[victim].crashed = True
        self.faults_injected += 1
        self._schedule_next_fault()

    # ------------------------------------------------------------------
    def _begin_phase(self, phase: int) -> None:
        self._phase_start = self.sim.now
        self._arm(0, phase, self.sim.now)

    def _arm(self, pid: int, phase: int, t: float) -> None:
        """Phase-start wave reaches ``pid`` at ``t``."""

        def start() -> None:
            node = self.nodes[pid]
            node.phase = phase
            node.done = False
            node.subtree_done = 0
            for child in self.children[pid]:
                self._arm(child, phase, self.sim.now + self.latency)
            if not node.crashed:
                self.sim.after(self.work_time, lambda: self._work_done(pid))

        if t <= self.sim.now:
            start()
        else:
            self.sim.at(t, start)

    def _work_done(self, pid: int) -> None:
        node = self.nodes[pid]
        if node.crashed:
            return
        node.done = True
        self._maybe_report(pid)

    def _maybe_report(self, pid: int) -> None:
        node = self.nodes[pid]
        if not node.done or node.subtree_done < len(self.children[pid]):
            return
        if pid == 0:
            self._barrier_complete()
        else:
            parent = self.parent[pid]
            self.sim.after(self.latency, lambda: self._child_reported(parent))

    def _child_reported(self, pid: int) -> None:
        self.nodes[pid].subtree_done += 1
        self._maybe_report(pid)

    def _barrier_complete(self) -> None:
        now = self.sim.now
        phase = self.nodes[0].phase
        self.stats.record(
            InstanceStat(phase=phase, start=self._phase_start, end=now, success=True)
        )
        if self.stats.successful_phases < self._target:
            self._begin_phase(phase + 1)
