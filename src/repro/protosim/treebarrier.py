"""Event-driven simulation of the fault-tolerant tree barrier.

This is the timed counterpart of program RB on the Figure 2(c) tree: the
root (process 0) drives *circulations* (waves) down the tree; every node
applies the RB follower rules when the wave reaches it; the wave's
completion time at the root is the maximum over the finals' forwarding
times, so one circulation costs ``h*c`` exactly as in the Section 6
analysis.  A successful phase needs three circulations (ready->execute,
execute->success, success->ready) around one unit of phase work.

Timing models
-------------
``work_model="serialized"`` (default, the paper's accounting): phase work
occupies the window *after* the execute circulation completes, so a
fault-free instance costs ``1 + 3hc`` -- the quantity the Section 6.1
analysis uses.  ``work_model="overlap"`` starts each node's work the
moment it enters execute; the success wave then stalls only for residual
work and a fault-free instance costs ``1 + 2hc`` -- the ablation showing
the paper's overhead figure is partly an artifact of its conservative
accounting.

Early abort
-----------
With ``early_abort=True`` (default), a node that learns the instance is
doomed (its wave input is ``repeat``) abandons its phase work, and the
root abandons its own work when a returning wave already carries
``repeat``; failed instances therefore finish in as little as ``3hc``.
This is exactly the effect the paper cites for the simulated overhead
(Figure 6) undercutting the analytical bound (Figure 4).  With
``early_abort=False`` every instance is charged its full duration and
the simulation reproduces the analytical worst case.

Faults
------
Detectable faults arrive as a Poisson process (rate ``-ln(1-f)``),
striking a uniformly random node: the node's state resets to ``error``
and its in-progress work is lost.  Waves passing an ``error`` node turn
it (and everything downstream) to ``repeat``; the root then re-executes
the current phase, so every barrier still completes correctly -- the
simulation *measures* the cost of that masking, it never violates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Any, Literal

from repro.barrier.control import CP
from repro.des.core import Simulation
from repro.obs.tracer import ensure_tracer
from repro.protosim.faultenv import DetectableFaultEnv
from repro.protosim.metrics import InstanceStat, PhaseMetrics
from repro.topology.graphs import Topology, kary_tree


@dataclass
class SimConfig:
    """Parameters of one timed barrier simulation."""

    latency: float = 0.01  # the paper's c, per tree hop
    work_time: float = 1.0  # the unit phase-execution time
    fault_frequency: float = 0.0  # the paper's f (detectable faults)
    undetectable_frequency: float = 0.0  # arbitrary-state scrambles
    nphases: int = 1_000_000  # phase counter wrap (large: virtual phases)
    work_model: Literal["serialized", "overlap"] = "serialized"
    early_abort: bool = True
    #: How the root learns a circulation completed: "instant" (the
    #: idealized Fig 2c leaf-root links, as in the paper's h*c
    #: accounting), "star" (real leaf-root links: one hop back plus the
    #: root serially processing one message per final), or "tree" (the
    #: Fig 2d double tree: acknowledgements aggregate up a tree, each
    #: node paying per_message_cost per child -- bounded fan-in).
    readback: Literal["instant", "star", "tree"] = "instant"
    per_message_cost: float = 0.0
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.work_time <= 0:
            raise ValueError("latency must be >= 0 and work_time > 0")
        if not 0.0 <= self.fault_frequency < 1.0:
            raise ValueError("fault frequency must be in [0, 1)")
        if not 0.0 <= self.undetectable_frequency < 1.0:
            raise ValueError("undetectable frequency must be in [0, 1)")
        if self.readback not in ("instant", "star", "tree"):
            raise ValueError(f"unknown readback model {self.readback!r}")
        if self.per_message_cost < 0:
            raise ValueError("per_message_cost must be >= 0")


@dataclass
class _Node:
    """Per-process protocol state."""

    pid: int
    depth: int
    state: CP = CP.READY
    phase: int = 0
    work_end: float = -1.0  # completion time of in-flight phase work

    def working(self, now: float) -> bool:
        return self.state is CP.EXECUTE and self.work_end > now


class FTTreeBarrierSim:
    """Timed simulation of the fault-tolerant barrier on a tree."""

    def __init__(
        self,
        topology: Topology | None = None,
        nprocs: int | None = None,
        arity: int = 2,
        config: SimConfig | None = None,
        tracer: Any = None,
    ) -> None:
        if topology is None:
            if nprocs is None:
                raise ValueError("give nprocs or topology")
            topology = kary_tree(nprocs, arity)
        self.topology = topology
        self.config = config or SimConfig()
        self.tracer = ensure_tracer(tracer)
        self.sim = Simulation(seed=self.config.seed, tracer=self.tracer)
        depth = topology.depth
        self.nodes = [_Node(pid, depth[pid]) for pid in range(topology.nprocs)]
        self.children = topology.children
        self.finals = set(topology.finals)
        self.height = topology.height

        # Wave bookkeeping.
        self._wave_id = 0
        self._wave_start = 0.0
        self._pending_finals: set[int] = set()
        self._final_done_max = 0.0
        self._root_busy = False  # a deferred root transition is scheduled
        # Tree-readback bookkeeping: per-node count of outstanding child
        # acknowledgements and ack-processing busy horizon, per wave.
        self._ack_waiting: list[int] = [0] * topology.nprocs
        self._ack_busy_until: list[float] = [0.0] * topology.nprocs

        # Instance bookkeeping.  Participation tracks which nodes
        # actually entered execute during the current instance, so a
        # completion forced through by an undetectable scramble can be
        # recognized as incorrect (the Lemma 4.1.4 damage measure).
        self._instance_start: float | None = None
        self._instance_phase = 0
        self._participants: set[int] = set()
        self.stats = PhaseMetrics()
        self.incorrect_completions = 0

        # Fault environments.
        self._fault_env = DetectableFaultEnv(
            self.config.fault_frequency, topology.nprocs, tracer=self.tracer
        )
        self._scramble_env = DetectableFaultEnv(
            self.config.undetectable_frequency, topology.nprocs, tracer=self.tracer
        )
        self.faults_injected = 0
        self.scrambles_injected = 0
        # Earliest unrecovered fault time (for recovery-latency events).
        self._fault_since: float | None = None

        #: Optional hook fired (with the virtual time) whenever the root
        #: observes a start state -- every process ready in one phase --
        #: just before it begins the next instance.  Used by the
        #: recovery experiment, where the start state only exists inside
        #: the root's wave-completion callback.
        self.start_state_hook = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, phases: int = 100, max_time: float = inf) -> PhaseMetrics:
        """Simulate until ``phases`` barriers complete successfully (or
        ``max_time`` virtual time elapses) and return the metrics."""
        self._schedule_next_fault()
        self._schedule_next_scramble()
        self._root_step()
        self.sim.run(
            until=max_time if max_time != inf else None,
            stop=lambda: self.stats.successful_phases >= phases,
        )
        self.stats.total_time = self.sim.now
        return self.stats

    # ------------------------------------------------------------------
    # Fault environment
    # ------------------------------------------------------------------
    def schedule_fault(self, time: float, pid: int) -> None:
        """Deterministically strike ``pid`` with a detectable fault at
        virtual ``time`` (adversarial fault-timing for the chaos
        campaigns; composes with the random environments)."""
        self._check_target(pid)
        self.sim.at(time, lambda: self._apply_fault(pid))

    def schedule_scramble(self, time: float, pid: int) -> None:
        """Deterministically scramble ``pid`` (an undetectable fault) at
        virtual ``time``; the arbitrary state still draws from the
        simulation's seeded "scrambles" stream."""
        self._check_target(pid)
        self.sim.at(time, lambda: self._apply_scramble(pid))

    def _check_target(self, pid: int) -> None:
        if not 0 <= pid < len(self.nodes):
            raise ValueError(f"bad fault target pid {pid}")

    def _schedule_next_fault(self) -> None:
        t = self._fault_env.next_arrival(self.sim.rng("faults"), self.sim.now)
        if t == inf:
            return
        self.sim.at(t, self._inject_fault)

    def _inject_fault(self) -> None:
        victim = self._fault_env.victim(self.sim.rng("faults"))
        self._apply_fault(victim)
        self._schedule_next_fault()

    def _apply_fault(self, victim: int) -> None:
        node = self.nodes[victim]
        node.state = CP.ERROR
        node.work_end = -1.0  # in-progress work is lost
        self.faults_injected += 1
        if self.tracer.enabled:
            self.tracer.fault(self.sim.now, victim)
            if self._fault_since is None:
                self._fault_since = self.sim.now

    def _schedule_next_scramble(self) -> None:
        t = self._scramble_env.next_arrival(
            self.sim.rng("scrambles"), self.sim.now
        )
        if t == inf:
            return
        self.sim.at(t, self._inject_scramble)

    _SCRAMBLE_STATES = (CP.READY, CP.EXECUTE, CP.SUCCESS, CP.ERROR, CP.REPEAT)

    def _inject_scramble(self) -> None:
        victim = self._scramble_env.victim(self.sim.rng("scrambles"))
        self._apply_scramble(victim)
        self._schedule_next_scramble()

    def _apply_scramble(self, victim: int) -> None:
        """An undetectable fault: arbitrary state at one node."""
        rng = self.sim.rng("scrambles")
        node = self.nodes[victim]
        node.state = self._SCRAMBLE_STATES[int(rng.integers(0, 5))]
        node.phase = int(rng.integers(0, min(self.config.nphases, 64)))
        node.work_end = (
            self.sim.now + rng.uniform(0.0, self.config.work_time)
            if node.state is CP.EXECUTE
            else -1.0
        )
        self.scrambles_injected += 1
        if self.tracer.enabled:
            self.tracer.fault(self.sim.now, victim, detectable=False)
            if self._fault_since is None:
                self._fault_since = self.sim.now
        if victim == 0:
            # A scrambled root may have dropped its driving obligation
            # (e.g. it was waiting for its own work); the token layer
            # regenerates the token within one circulation -- model that
            # by re-entering the root's decision after h*c.
            self._abort_instance(self.sim.now)
            self.sim.after(
                self.height * self.config.latency, self._root_step
            )

    # ------------------------------------------------------------------
    # Waves
    # ------------------------------------------------------------------
    def _start_wave(self) -> None:
        """Root launches a circulation carrying its state and phase."""
        root = self.nodes[0]
        self._wave_id += 1
        self._wave_start = self.sim.now
        if self.tracer.enabled:
            # One circulation = one release of the token by the root.
            self.tracer.token_pass(self.sim.now, 0, wave=self._wave_id)
        self._pending_finals = set(self.finals) - {0}
        self._final_done_max = self.sim.now
        if self.config.readback == "tree":
            self._ack_waiting = [len(c) for c in self.children]
            self._ack_busy_until = [self.sim.now] * len(self.nodes)
        wave = self._wave_id
        if not self._pending_finals:
            # Degenerate: the root is the only final (cannot happen for
            # valid topologies, but keep the driver alive).
            self.sim.after(0.0, lambda: self._wave_complete(wave))
            return
        for child in self.children[0]:
            self._send(child, root.state, root.phase, wave)

    def _send(self, pid: int, p_state: CP, p_phase: int, wave: int) -> None:
        self.sim.after(
            self.config.latency,
            lambda: self._on_wave(pid, p_state, p_phase, wave),
        )

    def _on_wave(self, pid: int, p_state: CP, p_phase: int, wave: int) -> None:
        """Apply the RB follower rules at ``pid``; forward downstream."""
        if wave != self._wave_id:
            return  # stale wave (root moved on after a fault recovery)
        node = self.nodes[pid]
        now = self.sim.now
        st = node.state

        if st is CP.EXECUTE and p_state is CP.SUCCESS and node.working(now):
            # The token waits here until the phase's work completes (the
            # success circulation cannot overtake unfinished work).
            self.sim.at(
                node.work_end,
                lambda: self._on_wave(pid, p_state, p_phase, wave),
            )
            return

        node.phase = p_phase
        if st is CP.READY and p_state is CP.EXECUTE:
            node.state = CP.EXECUTE
            node.work_end = self._work_start(now) + self.config.work_time
            self._participants.add(pid)
        elif st is CP.EXECUTE and p_state is CP.SUCCESS:
            node.state = CP.SUCCESS
        elif st is not CP.EXECUTE and p_state is CP.READY:
            node.state = CP.READY
        elif st is CP.ERROR or p_state is not st:
            node.state = CP.REPEAT
            node.work_end = -1.0  # abandon doomed work
        # else: states agree -- forward unchanged.

        if pid in self.finals:
            self._final_forwarded(pid, wave)
        else:
            for child in self.children[pid]:
                self._send(child, node.state, node.phase, wave)

    def _work_start(self, entered_at: float) -> float:
        if self.config.work_model == "overlap":
            return entered_at
        # serialized: work occupies the window after the execute
        # circulation completes (the paper's 1 + 3hc accounting).
        return self._wave_start + self.height * self.config.latency

    def _final_forwarded(self, pid: int, wave: int) -> None:
        if self.config.readback == "tree":
            self._subtree_complete(pid, wave)
            return
        self._final_done_max = max(self._final_done_max, self.sim.now)
        self._pending_finals.discard(pid)
        if not self._pending_finals:
            if self.config.readback == "star":
                # One hop back to the root, which serially processes one
                # message per final (the leaf-root star's fan-in cost).
                done_at = (
                    self._final_done_max
                    + self.config.latency
                    + len(self.finals) * self.config.per_message_cost
                )
                self.sim.at(done_at, lambda: self._wave_complete(wave))
            else:
                self._wave_complete(wave)

    # -- tree readback (the Fig 2d double tree) -------------------------
    def _subtree_complete(self, pid: int, wave: int) -> None:
        """``pid``'s whole subtree has processed the wave; ack upward."""
        if wave != self._wave_id:
            return
        if pid == 0:
            self._wave_complete(wave)
            return
        parent = self.topology.parent[pid]
        self.sim.after(
            self.config.latency,
            lambda: self._ack_from_child(parent, wave),
        )

    def _ack_from_child(self, pid: int, wave: int) -> None:
        if wave != self._wave_id:
            return
        # Serial per-message processing: bounded fan-in is exactly what
        # the double tree buys over the star.
        done = (
            max(self.sim.now, self._ack_busy_until[pid])
            + self.config.per_message_cost
        )
        self._ack_busy_until[pid] = done
        self._ack_waiting[pid] -= 1
        if self._ack_waiting[pid] <= 0:
            self.sim.at(done, lambda: self._subtree_complete(pid, wave))

    def _wave_complete(self, wave: int) -> None:
        if wave != self._wave_id:
            return
        self._root_step()

    # ------------------------------------------------------------------
    # Root state machine (RB's T1 update, timed)
    # ------------------------------------------------------------------
    def _root_step(self) -> None:
        root = self.nodes[0]
        now = self.sim.now
        finals = [self.nodes[f] for f in self.finals]

        if root.state is CP.ERROR or root.state is CP.REPEAT:
            # Recover: adopt a final's phase, pull everyone to ready.
            if self.tracer.enabled:
                self.tracer.detect(now, 0, where="root")
            self._abort_instance(now)
            root.phase = finals[0].phase
            root.state = CP.READY
            root.work_end = -1.0
            self._start_wave()
            return

        if root.state is CP.READY:
            if all(
                f.state is CP.READY and f.phase == root.phase for f in finals
            ):
                if self.start_state_hook is not None and all(
                    n.state is CP.READY and n.phase == root.phase
                    for n in self.nodes
                ):
                    self.start_state_hook(now)
                # Begin a new instance of the current phase.
                if self.tracer.enabled:
                    if self._fault_since is not None:
                        # Back in a start state after faults: masking
                        # completed, measure the latency (Figure 7's
                        # quantity for the detectable classes).
                        self.tracer.recovery(
                            now, 0, latency=now - self._fault_since
                        )
                        self._fault_since = None
                    self.tracer.phase_start(now, root.phase)
                self._instance_start = now
                self._instance_phase = root.phase
                self._participants = {0}
                root.state = CP.EXECUTE
                root.work_end = self._work_start_root(now) + self.config.work_time
                self._start_wave()
            else:
                # Keep pulling stragglers (error/repeat) to ready.
                self._start_wave()
            return

        if root.state is CP.EXECUTE:
            doomed = any(
                f.state is not CP.EXECUTE or f.phase != root.phase
                for f in finals
            )
            if doomed and self.config.early_abort:
                if self.tracer.enabled:
                    self.tracer.detect(now, 0, where="execute-wave")
                # The returning execute wave already carries repeat: the
                # instance is doomed, so skip the phase work entirely and
                # launch the repair circulation now.  Its READY carrier
                # flips every still-executing node to repeat (and cancels
                # the node's work) as it passes -- this is what makes
                # failed instances cost ~3hc instead of 1 + 3hc and
                # drives Figure 6 below Figure 4.
                root.work_end = -1.0
                self._abort_instance(now)
                root.state = CP.READY
                self._start_wave()
            elif root.work_end > now:
                self.sim.at(root.work_end, self._root_work_done)
            else:
                root.state = CP.SUCCESS
                self._start_wave()
            return

        if root.state is CP.SUCCESS:
            if all(
                f.state is CP.SUCCESS and f.phase == root.phase for f in finals
            ):
                self._complete_instance(now, success=True)
                root.phase = (root.phase + 1) % self.config.nphases
            else:
                if self.tracer.enabled:
                    self.tracer.detect(now, 0, where="success-wave")
                self._complete_instance(now, success=False)
                # RB: ph.0 := ph.N; under detectable faults the finals'
                # phase equals the root's, so keeping root.phase is the
                # same assignment.
            root.state = CP.READY
            self._start_wave()
            return

    def _work_start_root(self, entered_at: float) -> float:
        if self.config.work_model == "overlap":
            return entered_at
        return entered_at + self.height * self.config.latency

    def _root_work_done(self) -> None:
        root = self.nodes[0]
        if root.state is CP.EXECUTE:
            root.state = CP.SUCCESS
            self._start_wave()
        elif root.state in (CP.ERROR, CP.REPEAT):
            # A fault struck the root while it held the token waiting for
            # its work; recover immediately (the token is here).
            self._root_step()
        # Otherwise a newer wave/decision already superseded this event.

    # ------------------------------------------------------------------
    # Instance accounting
    # ------------------------------------------------------------------
    def _complete_instance(self, now: float, success: bool) -> None:
        if self._instance_start is None:
            return
        if success and len(self._participants) < len(self.nodes):
            # The root declared the barrier complete although some node
            # never entered execute in this instance -- only possible
            # when an undetectable fault forged protocol state (the
            # damage Lemma 4.1.4 bounds).
            self.incorrect_completions += 1
        if self.tracer.enabled:
            # The duration payload is the histogram observation point for
            # the metrics layer (instance-duration distribution, Fig 5/6).
            self.tracer.phase_end(
                now,
                self._instance_phase,
                success,
                duration=now - self._instance_start,
            )
        self.stats.record(
            InstanceStat(
                phase=self._instance_phase,
                start=self._instance_start,
                end=now,
                success=success,
            )
        )
        self._instance_start = None

    def _abort_instance(self, now: float) -> None:
        self._complete_instance(now, success=False)
