"""Perf-regression harness for the computation layers.

Three workload families, mirroring the three optimization layers:

* **kernel** -- daemon stepping throughput on RB (ring of 8) and MB
  (ring of 8), each daemon run three times: full guard evaluation
  (``incremental=False``), incremental, and the compiled backend
  (``backend="compiled"``).  All runs must visit the *identical* trace
  (checked via a digest of the final state); the within-run throughput
  ratio incremental/full is the speedup the dirty-set machinery buys,
  and compiled/incremental is the further speedup of the memoized
  array-mirror engine.
* **explorer** -- exhaustive reachability over CB's full state product,
  with tuple keys vs ``compact_keys``; both must agree on the state and
  edge counts.
* **sweep** -- a small Figure 5 grid through
  :class:`~repro.experiments.sweep.SweepExecutor`: serial, parallel
  (``jobs=4``) and warm-cache runs must merge to bit-identical rows,
  and the warm-cache rerun must beat the cold run by the gated factor.

Gating philosophy (same as :mod:`repro.obs.regress`): wall-clock
numbers are *recorded* but never compared against the committed
baseline -- machines differ.  What is gated:

* every deterministic quantity (step/fired counts, state digests,
  state-space sizes, merged-row digests) must match the baseline
  exactly -- the optimizations must not change semantics;
* within-run ratios, which are machine-independent because both sides
  ran in this process:

  - the best incremental daemon on the RB n=8 kernel is >=
    :data:`RB8_HEADLINE_SPEEDUP` x full evaluation;
  - the best compiled daemon on the MB n=8 kernel is >=
    :data:`MB8_COMPILED_HEADLINE_SPEEDUP` x its incremental run, and
    compiled runs are never below :data:`COMPILED_MIN_RATIO` x
    incremental on any kernel workload;
  - eager incremental daemons (randomfair, maxpar) are never slower
    than full evaluation (ratio >= :data:`EAGER_MIN_RATIO`);
  - the adaptive round-robin daemon costs at most a bounded counting
    overhead on scan-friendly programs (ratio >=
    :data:`ADAPTIVE_MIN_RATIO`) and must win on MB where it engages;
  - the warm sweep cache is >= :data:`WARM_CACHE_SPEEDUP` x faster
    than the cold run, and serial/parallel/cached merges are
    bit-identical.

CLI: ``python -m repro.perf.bench [--quick] [--update-baseline]
[--backend MODE]``.  ``--quick`` only reduces timing repeats --
deterministic quantities are computed from fixed step counts, so quick
and full reports gate against the same baseline.  ``--backend`` limits
the kernel bench to one execution mode for exploratory timing; such
partial reports are informational and never gated or written as a
baseline.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.obs.regress import (
    GateCheck,
    GateResult,
    load_json,
    write_report,
)

BENCH_PATH = Path("BENCH_perf.json")
BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BASELINE_perf.json"
)

#: Within-run ratio gates (see module docstring).
RB8_HEADLINE_SPEEDUP = 1.5
EAGER_MIN_RATIO = 1.0
ADAPTIVE_MIN_RATIO = 0.7
MB8_ROUNDROBIN_MIN_RATIO = 1.2
WARM_CACHE_SPEEDUP = 2.0
MB8_COMPILED_HEADLINE_SPEEDUP = 3.0
COMPILED_MIN_RATIO = 0.7

#: Kernel steps per measured run (identical in --quick mode: the
#: deterministic quantities must not depend on the mode).  Long enough
#: that the compiled backend's one-time learning phase (every distinct
#: round of the steady-state cycle memoized once) is amortized the way
#: it is in real sweeps, which run millions of steps per process count.
KERNEL_STEPS = 24_000


# ---------------------------------------------------------------------------
# Workload definitions
# ---------------------------------------------------------------------------

def _make_rb8():
    from repro.barrier.rb import make_rb

    return make_rb(8, nphases=4)


def _make_mb8():
    from repro.barrier.mb import make_mb

    return make_mb(8)


KERNEL_PROGRAMS: dict[str, Callable[[], Any]] = {
    "rb8": _make_rb8,
    "mb8": _make_mb8,
}


def _make_daemon(name: str, mode: str):
    from repro.gc.scheduler import (
        MaximalParallelDaemon,
        RandomFairDaemon,
        RoundRobinDaemon,
    )

    if mode == "compiled":
        kwargs: dict[str, Any] = {"backend": "compiled"}
    else:
        kwargs = {"incremental": mode == "incremental"}
    if name == "roundrobin":
        return RoundRobinDaemon(**kwargs)
    if name == "randomfair":
        return RandomFairDaemon(seed=11, **kwargs)
    if name == "maxpar":
        return MaximalParallelDaemon(seed=11, random_choice=True, **kwargs)
    raise ValueError(name)


KERNEL_DAEMONS = ("roundrobin", "randomfair", "maxpar")

#: Kernel execution modes, in measurement order.
KERNEL_MODES = ("full", "incremental", "compiled")


def _state_digest(state: Any) -> str:
    """Stable cross-process digest of a state (``hash()`` is not)."""
    return hashlib.sha256(repr(state.key()).encode()).hexdigest()[:16]


def _run_kernel_once(
    prog_name: str, daemon_name: str, mode: str
) -> tuple[float, dict[str, Any]]:
    program = KERNEL_PROGRAMS[prog_name]()
    state = program.initial_state()
    daemon = _make_daemon(daemon_name, mode)
    fired = 0
    start = time.perf_counter()
    for _ in range(KERNEL_STEPS):
        fired += len(daemon.step(program, state))
    elapsed = time.perf_counter() - start
    facts = {
        "steps": KERNEL_STEPS,
        "fired": fired,
        "state_digest": _state_digest(state),
    }
    return elapsed, facts


def bench_kernel(
    repeats: int, modes: tuple[str, ...] = KERNEL_MODES
) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for prog_name in KERNEL_PROGRAMS:
        for daemon_name in KERNEL_DAEMONS:
            times: dict[str, float] = {}
            facts: dict[str, dict[str, Any]] = {}
            for mode in modes:
                best = float("inf")
                for _ in range(repeats):
                    elapsed, f = _run_kernel_once(
                        prog_name, daemon_name, mode
                    )
                    best = min(best, elapsed)
                    facts[mode] = f
                times[mode] = best
            ref = modes[-1] if len(modes) == 1 else "incremental"
            entry: dict[str, Any] = {
                "deterministic": dict(facts[ref]),
                "wall": {
                    f"{mode}_s": times[mode] for mode in modes
                },
            }
            entry["wall"][f"steps_per_s_{ref}"] = KERNEL_STEPS / times[ref]
            if "full" in times and "incremental" in times:
                entry["deterministic"]["trace_identical"] = (
                    facts["full"] == facts["incremental"]
                )
                entry["ratio"] = (
                    times["full"] / times["incremental"]
                    if times["incremental"]
                    else 0.0
                )
            if "compiled" in times and "incremental" in times:
                entry["deterministic"]["compiled_identical"] = (
                    facts["compiled"] == facts["incremental"]
                )
                entry["compiled_ratio"] = (
                    times["incremental"] / times["compiled"]
                    if times["compiled"]
                    else 0.0
                )
            out[f"{prog_name}/{daemon_name}"] = entry
    return out


def bench_explorer(repeats: int) -> dict[str, Any]:
    from repro.barrier.cb import make_cb
    from repro.gc.explore import Explorer

    program = make_cb(4)
    results: dict[str, Any] = {}
    walls: dict[str, float] = {}
    counts: dict[str, tuple[int, int]] = {}
    configs = {
        "tuple": dict(compact_keys=False),
        "compact": dict(compact_keys=True),
        "compiled": dict(compact_keys=True, backend="compiled"),
    }
    for label, kwargs in configs.items():
        best = float("inf")
        for _ in range(repeats):
            explorer = Explorer(program, **kwargs)
            roots = explorer.full_state_space()
            start = time.perf_counter()
            result = explorer.reachable(roots)
            best = min(best, time.perf_counter() - start)
            counts[label] = (
                len(result.states),
                sum(len(s) for s in result.transitions.values()),
            )
        walls[label] = best
    results["cb4-full-space"] = {
        "deterministic": {
            "states": counts["compact"][0],
            "edges": counts["compact"][1],
            "representation_identical": counts["tuple"] == counts["compact"],
            "compiled_identical": counts["compiled"] == counts["compact"],
        },
        "wall": {
            "tuple_s": walls["tuple"],
            "compact_s": walls["compact"],
            "compiled_s": walls["compiled"],
        },
        "ratio": walls["tuple"] / walls["compact"] if walls["compact"] else 0.0,
        "compiled_ratio": (
            walls["compact"] / walls["compiled"] if walls["compiled"] else 0.0
        ),
    }
    return results


#: The fig5 grid used by the sweep benchmark (small but not trivial).
SWEEP_KWARGS = dict(
    h=3,
    f_values=(0.0, 0.01, 0.05),
    c_values=(0.0, 0.01),
    phases=60,
    seed=0,
)


def bench_sweep() -> dict[str, Any]:
    from repro.experiments import fig5
    from repro.experiments.sweep import SweepExecutor

    def rows_of(executor):
        result = fig5.run(executor=executor, **SWEEP_KWARGS)
        return result.rows

    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        serial_rows = rows_of(SweepExecutor(jobs=1, cache_dir=cache_dir))
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        parallel_rows = rows_of(SweepExecutor(jobs=4))
        parallel_s = time.perf_counter() - start

        warm_executor = SweepExecutor(jobs=4, cache_dir=cache_dir)
        start = time.perf_counter()
        warm_rows = rows_of(warm_executor)
        warm_s = time.perf_counter() - start
        hits = warm_executor.last_stats["hits"]

    digest = hashlib.sha256(
        json.dumps(serial_rows, sort_keys=True).encode()
    ).hexdigest()[:16]
    return {
        "fig5-small": {
            "deterministic": {
                "rows_digest": digest,
                "identical_serial_parallel": serial_rows == parallel_rows,
                "identical_serial_cached": serial_rows == warm_rows,
                "cache_hits": hits,
            },
            "wall": {
                "cold_serial_s": cold_s,
                "cold_jobs4_s": parallel_s,
                "warm_jobs4_s": warm_s,
            },
            "warm_speedup": cold_s / warm_s if warm_s else 0.0,
        }
    }


def measure(repeats: int = 3, quick: bool = False) -> dict[str, Any]:
    """Run every workload; build the BENCH_perf report dict."""
    if quick:
        repeats = max(1, min(repeats, 2))
    return {
        "version": 2,
        "repeats": repeats,
        "kernel": bench_kernel(repeats),
        "explorer": bench_explorer(repeats),
        "sweep": bench_sweep(),
    }


# ---------------------------------------------------------------------------
# Gating
# ---------------------------------------------------------------------------

def _ratio_checks(report: dict[str, Any]) -> list[GateCheck]:
    checks: list[GateCheck] = []
    kernel = report.get("kernel", {})

    rb8_best = max(
        (kernel.get(f"rb8/{d}", {}).get("ratio", 0.0) for d in KERNEL_DAEMONS),
        default=0.0,
    )
    checks.append(
        GateCheck(
            "kernel.rb8.headline_speedup",
            rb8_best >= RB8_HEADLINE_SPEEDUP,
            f"best incremental/full ratio {rb8_best:.2f} "
            f"(gate >= {RB8_HEADLINE_SPEEDUP})",
        )
    )
    mb8_compiled_best = max(
        (
            kernel.get(f"mb8/{d}", {}).get("compiled_ratio", 0.0)
            for d in KERNEL_DAEMONS
        ),
        default=0.0,
    )
    checks.append(
        GateCheck(
            "kernel.mb8.compiled_headline_speedup",
            mb8_compiled_best >= MB8_COMPILED_HEADLINE_SPEEDUP,
            f"best compiled/incremental ratio {mb8_compiled_best:.2f} "
            f"(gate >= {MB8_COMPILED_HEADLINE_SPEEDUP})",
        )
    )
    for name, entry in kernel.items():
        ratio = entry.get("ratio", 0.0)
        daemon = name.split("/", 1)[1]
        if daemon == "roundrobin":
            floor = (
                MB8_ROUNDROBIN_MIN_RATIO
                if name.startswith("mb8")
                else ADAPTIVE_MIN_RATIO
            )
        else:
            floor = EAGER_MIN_RATIO
        checks.append(
            GateCheck(
                f"kernel.{name}.ratio",
                ratio >= floor,
                f"incremental/full {ratio:.2f} (gate >= {floor})",
            )
        )
        checks.append(
            GateCheck(
                f"kernel.{name}.trace_identical",
                bool(entry.get("deterministic", {}).get("trace_identical")),
                "full and incremental runs produced identical traces",
            )
        )
        compiled_ratio = entry.get("compiled_ratio", 0.0)
        checks.append(
            GateCheck(
                f"kernel.{name}.compiled_ratio",
                compiled_ratio >= COMPILED_MIN_RATIO,
                f"compiled/incremental {compiled_ratio:.2f} "
                f"(gate >= {COMPILED_MIN_RATIO})",
            )
        )
        checks.append(
            GateCheck(
                f"kernel.{name}.compiled_identical",
                bool(entry.get("deterministic", {}).get("compiled_identical")),
                "compiled and incremental runs produced identical traces",
            )
        )
    for name, entry in report.get("explorer", {}).items():
        det = entry.get("deterministic", {})
        checks.append(
            GateCheck(
                f"explorer.{name}.representation_identical",
                bool(det.get("representation_identical")),
                "tuple and compact explorations agree on states/edges",
            )
        )
        checks.append(
            GateCheck(
                f"explorer.{name}.compiled_identical",
                bool(det.get("compiled_identical")),
                "compiled exploration agrees on states/edges",
            )
        )
    for name, entry in report.get("sweep", {}).items():
        det = entry.get("deterministic", {})
        checks.append(
            GateCheck(
                f"sweep.{name}.bit_identical",
                bool(det.get("identical_serial_parallel"))
                and bool(det.get("identical_serial_cached")),
                "serial == jobs=4 == warm-cache merged rows",
            )
        )
        speedup = entry.get("warm_speedup", 0.0)
        checks.append(
            GateCheck(
                f"sweep.{name}.warm_cache_speedup",
                speedup >= WARM_CACHE_SPEEDUP,
                f"warm/cold speedup {speedup:.1f}x "
                f"(gate >= {WARM_CACHE_SPEEDUP}x)",
            )
        )
    return checks


def _baseline_checks(
    current: dict[str, Any], baseline: dict[str, Any]
) -> list[GateCheck]:
    checks: list[GateCheck] = []
    for family in ("kernel", "explorer", "sweep"):
        for name, base_entry in baseline.get(family, {}).items():
            cur_entry = current.get(family, {}).get(name)
            if cur_entry is None:
                checks.append(
                    GateCheck(f"{family}.{name}", False, "workload missing")
                )
                continue
            for key, base_value in base_entry.get("deterministic", {}).items():
                cur_value = cur_entry.get("deterministic", {}).get(key)
                checks.append(
                    GateCheck(
                        f"{family}.{name}.{key}",
                        cur_value == base_value,
                        f"current={cur_value!r} baseline={base_value!r} "
                        "(exact)",
                    )
                )
    return checks


def compare_reports(
    current: dict[str, Any], baseline: dict[str, Any] | None = None
) -> GateResult:
    """Gate a report: within-run ratios always, baseline facts if given."""
    checks = _ratio_checks(current)
    if baseline is not None:
        checks.extend(_baseline_checks(current, baseline))
    return GateResult(checks)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="computation-layer perf-regression harness",
    )
    parser.add_argument("--out", default=str(BENCH_PATH), help="report path")
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), help="committed baseline"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true", help="fewer timing repeats (CI smoke)"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the baseline from this run instead of gating",
    )
    parser.add_argument(
        "--backend",
        choices=("all",) + KERNEL_MODES,
        default="all",
        help="limit the kernel bench to one execution mode "
        "(informational: partial reports are neither gated nor "
        "baseline-eligible)",
    )
    args = parser.parse_args(argv)

    if args.backend != "all":
        if args.update_baseline:
            parser.error("--update-baseline requires --backend all")
        repeats = max(1, min(args.repeats, 2)) if args.quick else args.repeats
        kernel = bench_kernel(repeats, modes=(args.backend,))
        print(json.dumps(kernel, indent=2, sort_keys=True))
        return 0

    report = measure(repeats=args.repeats, quick=args.quick)
    out = write_report(report, args.out)
    print(f"wrote {out}")
    if args.update_baseline:
        base = write_report(report, args.baseline)
        print(f"baseline updated: {base}")
        gate = compare_reports(report)
    else:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; run --update-baseline first")
            return 1
        gate = compare_reports(report, load_json(baseline_path))
    print(gate.render())
    return 0 if gate.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
