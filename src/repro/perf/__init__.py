"""Performance benchmarks and the perf-regression gate.

This package measures the three optimization layers this repo ships --
incremental guard evaluation in the daemons, the explorer fast path,
and the cached/parallel experiment sweeps -- and gates them against the
committed baseline (``benchmarks/BASELINE_perf.json``).

See :mod:`repro.perf.bench` for the workloads and the gating rules;
``python -m repro.perf.bench`` (or ``python benchmarks/bench_perf.py``)
runs everything and writes ``BENCH_perf.json``.
"""

from repro.perf.bench import (  # noqa: F401
    BASELINE_PATH,
    BENCH_PATH,
    compare_reports,
    measure,
)
