"""Minimal-reproducer shrinking for failing fault schedules.

When a campaign run violates a guarantee, the schedule that provoked it
is usually bigger than it needs to be.  :func:`shrink_plan` runs the
classic delta-debugging minimization (ddmin, Zeller & Hildebrandt) over
the plan's event list: try removing chunks at decreasing granularity,
keep any subset that still violates, stop at a 1-minimal schedule --
removing *any single remaining event* makes the failure disappear.

Every candidate is evaluated by re-running the target engine, which is
deterministic given ``(plan, config)``; the shrink is therefore itself
deterministic, and the result serializes to a :class:`Reproducer` file
that ``repro-experiments chaos replay <file>`` re-runs bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.chaos.monitors import GuaranteeViolation
from repro.chaos.plan import PLAN_VERSION, CampaignConfig, FaultPlan


@dataclass
class ShrinkResult:
    """The minimization outcome: what survived and how hard we tried."""

    plan: FaultPlan
    violation: GuaranteeViolation
    original_count: int
    tests: int  # engine runs spent shrinking

    @property
    def shrunk_count(self) -> int:
        return self.plan.count

    @property
    def reduction(self) -> float:
        """Fraction of fault events removed (0.0 when nothing shrank)."""
        if self.original_count == 0:
            return 0.0
        return 1.0 - self.shrunk_count / self.original_count


def _matches(violation: GuaranteeViolation, reference: GuaranteeViolation) -> bool:
    """Same guarantee broken: the shrink preserves *which* property
    fails, not the exact event times (those legitimately move as the
    schedule thins)."""
    return violation.guarantee == reference.guarantee


def shrink_plan(
    plan: FaultPlan,
    oracle: Callable[[FaultPlan], list[GuaranteeViolation]],
    reference: GuaranteeViolation,
    max_tests: int = 200,
) -> ShrinkResult:
    """ddmin over ``plan.events``; ``oracle`` re-runs the engine.

    ``reference`` is the violation observed on the full plan; a candidate
    subset counts as failing iff it still breaks the same guarantee.
    ``max_tests`` bounds the engine runs (the partially shrunk plan is
    returned if the budget runs out -- still a valid reproducer).
    """
    events = list(plan.events)
    best_violation = reference
    tests = 0

    def failing(candidate: list) -> GuaranteeViolation | None:
        nonlocal tests
        tests += 1
        for v in oracle(plan.with_events(candidate)):
            if _matches(v, reference):
                return v
        return None

    n = 2
    while len(events) >= 2 and tests < max_tests:
        chunk = max(1, len(events) // n)
        reduced = False
        # Try each complement (drop one chunk, keep the rest) in order:
        # deterministic iteration = deterministic minimization.
        for start in range(0, len(events), chunk):
            if tests >= max_tests:
                break
            candidate = events[:start] + events[start + chunk :]
            if not candidate:
                continue
            violation = failing(candidate)
            if violation is not None:
                events = candidate
                best_violation = violation
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(events):
                break
            n = min(len(events), 2 * n)

    # Final pass: can the empty schedule already fail?  (The intolerant
    # baseline never does -- it only breaks when struck -- but a buggy
    # protocol might, and then the minimal reproducer is "no faults".)
    if events and tests < max_tests:
        violation = failing([])
        if violation is not None:
            events = []
            best_violation = violation

    return ShrinkResult(
        plan=plan.with_events(events),
        violation=best_violation,
        original_count=plan.count,
        tests=tests,
    )


@dataclass
class Reproducer:
    """A self-contained, replayable failure: target + config + minimal
    plan + the violation it provokes."""

    target: str
    config: CampaignConfig
    plan: FaultPlan
    violation: GuaranteeViolation
    original_count: int = 0
    shrink_tests: int = 0
    note: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "version": PLAN_VERSION,
            "kind": "chaos-reproducer",
            "target": self.target,
            "config": self.config.to_json(),
            "plan": self.plan.to_json(),
            "violation": self.violation.to_json(),
            "original_count": self.original_count,
            "shrink_tests": self.shrink_tests,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "Reproducer":
        if record.get("kind") != "chaos-reproducer":
            raise ValueError("not a chaos reproducer file")
        version = record.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(f"unsupported reproducer version {version!r}")
        return cls(
            target=record["target"],
            config=CampaignConfig.from_json(record["config"]),
            plan=FaultPlan.from_json(record["plan"]),
            violation=GuaranteeViolation.from_json(record["violation"]),
            original_count=int(record.get("original_count", 0)),
            shrink_tests=int(record.get("shrink_tests", 0)),
            note=str(record.get("note", "")),
        )

    # -- file form ------------------------------------------------------
    def dumps(self) -> str:
        """Canonical serialization: sorted keys, fixed indentation --
        the same reproducer always produces byte-identical files."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Reproducer":
        return cls.from_json(json.loads(Path(path).read_text()))

    def replay(self):
        """Re-run the minimal plan against its target; returns the
        :class:`~repro.chaos.adapters.RunOutcome` (deterministic: the
        saved violation reappears)."""
        from repro.chaos.adapters import get_adapter

        return get_adapter(self.target).run(self.plan, self.config)
