"""Seeded adversarial campaigns across every engine.

A campaign is ``runs`` independent engine executions: run *i* targets
``config.targets[i % len(targets)]`` with a fault plan derived
deterministically from ``(config.seed, i)`` -- same config, same
campaign, bit for bit.  Each run executes under the online guarantee
monitors; any violation is shrunk (delta debugging, per target, first
failure wins) to a minimal reproducer that serializes next to the
report and replays via ``repro-experiments chaos replay <file>``.

Execution fans out through :class:`repro.experiments.sweep.SweepExecutor`
-- points are plain ``(function, JSON kwargs)`` pairs -- so campaigns
inherit the pool's caching, parallelism, and hardening (per-point
timeouts, retries, crash quarantine).  A run the pool gives up on is an
*infrastructure* failure and is reported separately from guarantee
violations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.chaos.adapters import ADAPTERS, RunOutcome, get_adapter
from repro.chaos.monitors import GuaranteeViolation
from repro.chaos.plan import CampaignConfig, FaultPlan
from repro.chaos.shrink import Reproducer, ShrinkResult, shrink_plan
from repro.experiments.sweep import SweepExecutor, SweepPoint


def derive_seed(seed: int, index: int) -> int:
    """Portable per-run seed: a SHA-256 slice of ``"{seed}:{index}"``
    (stable across platforms and Python hash randomization)."""
    digest = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def plan_for_run(config: CampaignConfig, index: int) -> tuple[str, FaultPlan]:
    """The (target, plan) of campaign run ``index`` -- pure function of
    the config, so campaigns are replayable from their config alone."""
    target = config.targets[index % len(config.targets)]
    adapter = get_adapter(target)
    detectable, undetectable = config.detectable, config.undetectable
    byzantine, permanent = config.byzantine, config.permanent
    # Downgrade fault classes the engine cannot express to the closest
    # expressible one -- keep the pressure rather than silently drop it.
    if byzantine and not adapter.supports_byzantine:
        # A Byzantine process's arbitrary assignments degrade to the
        # undetectable whole-state scramble.
        undetectable += byzantine
        byzantine = 0
    if permanent and not adapter.supports_permanent:
        # A permanent fail-stop degrades to a restartable reset.
        detectable += permanent
        permanent = 0
    if undetectable and not adapter.supports_undetectable:
        # The engine cannot express a scramble; keep the pressure as
        # extra detectable strikes rather than silently dropping it.
        detectable += undetectable
        undetectable = 0
    start, stop = adapter.window if adapter.steps is False else config.window
    plan = FaultPlan.generate(
        derive_seed(config.seed, index),
        config.nprocs,
        detectable=detectable,
        undetectable=undetectable,
        byzantine=byzantine,
        permanent=permanent,
        start=start,
        stop=stop,
        steps=adapter.steps,
        link=config.link if adapter.supports_link else None,
    )
    return target, plan


def campaign_point(target: str, plan: dict, config: dict) -> dict:
    """One campaign run as a sweep-pool point (module-level, picklable,
    JSON in / JSON out)."""
    adapter = get_adapter(target)
    outcome = adapter.run(
        FaultPlan.from_json(plan), CampaignConfig.from_json(config)
    )
    return outcome.to_json()


#: The sweep-point function reference for campaign runs.
POINT_FN = "repro.chaos.campaign:campaign_point"


@dataclass
class CampaignReport:
    """Everything one campaign established."""

    config: CampaignConfig
    #: Per-run outcome JSON (:meth:`RunOutcome.to_json`), input order;
    #: None where the pool gave the run up (crash/timeout after retries).
    outcomes: list[dict | None] = field(default_factory=list)
    reproducers: list[Reproducer] = field(default_factory=list)
    #: Run indices the executor could not complete.
    infrastructure_failures: list[int] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> list[dict]:
        out = []
        for outcome in self.outcomes:
            if outcome:
                out.extend(outcome["violations"])
        return out

    @property
    def ok(self) -> bool:
        return not self.violations and not self.infrastructure_failures

    def by_target(self) -> dict[str, dict[str, int]]:
        """Per-target tallies: runs, violations, faults fired."""
        tally: dict[str, dict[str, int]] = {}
        for i, outcome in enumerate(self.outcomes):
            target = self.config.targets[i % len(self.config.targets)]
            row = tally.setdefault(
                target, {"runs": 0, "violations": 0, "faults": 0, "lost": 0}
            )
            row["runs"] += 1
            if outcome is None:
                row["lost"] += 1
            else:
                row["violations"] += len(outcome["violations"])
                row["faults"] += outcome["faults_fired"]
        return tally

    def to_json(self) -> dict[str, Any]:
        return {
            "config": self.config.to_json(),
            "outcomes": self.outcomes,
            "reproducers": [r.to_json() for r in self.reproducers],
            "infrastructure_failures": list(self.infrastructure_failures),
        }

    def render(self) -> str:
        lines = [
            f"chaos campaign: {self.runs} runs over "
            f"{len(self.config.targets)} targets (seed {self.config.seed})"
        ]
        for target, row in sorted(self.by_target().items()):
            status = "ok" if not (row["violations"] or row["lost"]) else "FAIL"
            lines.append(
                f"  {target:<16} runs={row['runs']:<4} "
                f"faults={row['faults']:<5} violations={row['violations']:<3} "
                f"lost={row['lost']:<2} {status}"
            )
        violations = self.violations
        if violations:
            lines.append(f"violations: {len(violations)}")
            for v in violations[:5]:
                lines.append(
                    f"  [{v['guarantee']}/{v['kind']}] {v['message']}"
                )
            if len(violations) > 5:
                lines.append(f"  ... and {len(violations) - 5} more")
        for r in self.reproducers:
            lines.append(
                f"reproducer: {r.target} {r.plan.count}/{r.original_count} "
                f"events [{r.violation.guarantee}/{r.violation.kind}]"
            )
        if self.infrastructure_failures:
            lines.append(
                f"runs lost to the pool: {self.infrastructure_failures}"
            )
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)

    def save(self, out_dir: str | Path) -> list[Path]:
        """Write ``report.json`` plus one replay file per reproducer;
        returns the written paths (reproducers first)."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for n, repro in enumerate(self.reproducers):
            name = f"repro-{repro.target.replace(':', '-')}-{n}.json"
            paths.append(repro.save(out / name))
        report = out / "report.json"
        report.write_text(
            json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"
        )
        paths.append(report)
        return paths


def run_campaign(
    config: CampaignConfig,
    executor: SweepExecutor | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Execute a full campaign and shrink whatever fails.

    With no ``executor`` the runs execute serially in-process; passing a
    hardened :class:`SweepExecutor` adds parallelism, caching, and
    crash/hang containment without changing any result (runs are pure
    functions of their point kwargs).
    """
    unknown = [t for t in config.targets if t not in ADAPTERS]
    if unknown:
        raise KeyError(f"unknown chaos targets {unknown}; known: {sorted(ADAPTERS)}")
    say = progress or (lambda _msg: None)
    config_json = config.to_json()
    assignments = [plan_for_run(config, i) for i in range(config.runs)]
    points = [
        SweepPoint.make(
            POINT_FN, target=target, plan=plan.to_json(), config=config_json
        )
        for target, plan in assignments
    ]
    say(f"dispatching {len(points)} runs over {len(config.targets)} targets")
    ex = executor if executor is not None else SweepExecutor()
    outcomes = ex.run(points)

    report = CampaignReport(config=config, outcomes=list(outcomes))
    report.infrastructure_failures = [
        i for i, outcome in enumerate(outcomes) if outcome is None
    ]

    if config.shrink:
        shrunk_targets: set[str] = set()
        for i, outcome in enumerate(outcomes):
            if not outcome or not outcome["violations"]:
                continue
            target, plan = assignments[i]
            if target in shrunk_targets:
                continue  # one minimal reproducer per failing target
            shrunk_targets.add(target)
            say(
                f"run {i} ({target}) violated a guarantee; "
                f"shrinking {plan.count} events"
            )
            report.reproducers.append(
                shrink_run(target, plan, config, outcome["violations"][0])
            )
    return report


def shrink_run(
    target: str,
    plan: FaultPlan,
    config: CampaignConfig,
    violation: Mapping[str, Any] | GuaranteeViolation,
    max_tests: int = 200,
) -> Reproducer:
    """Minimize one failing run into a saved-file-ready reproducer."""
    if not isinstance(violation, GuaranteeViolation):
        violation = GuaranteeViolation.from_json(dict(violation))
    adapter = get_adapter(target)

    def oracle(candidate: FaultPlan) -> list[GuaranteeViolation]:
        return adapter.run(candidate, config).violations

    result: ShrinkResult = shrink_plan(plan, oracle, violation, max_tests=max_tests)
    return Reproducer(
        target=target,
        config=config,
        plan=result.plan,
        violation=result.violation,
        original_count=result.original_count,
        shrink_tests=result.tests,
    )


def replay_file(path: str | Path) -> tuple[Reproducer, RunOutcome]:
    """Load a reproducer file and re-run it (the ``chaos replay`` verb)."""
    reproducer = Reproducer.load(path)
    return reproducer, reproducer.replay()
