"""Online guarantee monitors over the structured trace stream.

The paper proves two tolerances and the monitors check them *while a
run executes*, engine-agnostically, by subscribing to the PR-1 tracer:

* **masking** for detectable faults -- every barrier instance is
  (re-)executed correctly: instances never overlap, successful phases
  advance one at a time (none lost, none duplicated), instances never
  fail without a fault to blame, and the run always completes;
* **stabilization** for undetectable faults -- after the last
  perturbation the protocol converges back to correct behaviour
  (closure: once clean, it stays clean until the next fault), with the
  convergence span measured;
* **at-most-m damage** -- perturbing *m* phases makes at most *m*
  phases incorrect (Lemma 4.1.4's bound, read as: never more incorrect
  instances than injected faults).

A failed check raises nothing mid-run by default -- engines are not
exception-safe at arbitrary emission points -- it records a structured
:class:`GuaranteeViolation` carrying the trace prefix up to and
including the offending event; :meth:`MonitorSet.check` raises the
first one after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import FAULT, PHASE_END, PHASE_START, ObsEvent


@dataclass
class GuaranteeViolation(Exception):
    """A guarantee the paper proves was observed to fail.

    ``trace_prefix`` is the flat-JSON event list up to and including the
    violating event -- enough to rebuild the failing history -- and
    ``data`` carries monitor-specific context (expected/observed phase,
    fault counts, spans).
    """

    guarantee: str  # "masking" | "stabilization" | "at-most-m"
    kind: str  # e.g. "overlap", "lost-phase", "no-convergence"
    message: str
    time: float = 0.0
    trace_prefix: tuple[dict[str, Any], ...] = ()
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # Exception's repr-ish default is useless here
        return (
            f"[{self.guarantee}/{self.kind}] t={self.time:g}: {self.message}"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "guarantee": self.guarantee,
            "kind": self.kind,
            "message": self.message,
            "time": self.time,
            "trace_prefix": list(self.trace_prefix),
            "data": dict(self.data),
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "GuaranteeViolation":
        return cls(
            guarantee=record["guarantee"],
            kind=record["kind"],
            message=record["message"],
            time=float(record.get("time", 0.0)),
            trace_prefix=tuple(record.get("trace_prefix", ())),
            data=dict(record.get("data", {})),
        )


class Monitor:
    """Base: feed events via :meth:`on_event`; violations accumulate."""

    guarantee = "generic"

    def __init__(self) -> None:
        self.violations: list[GuaranteeViolation] = []
        #: Shared event buffer (set by MonitorSet) for prefix capture.
        self._buffer: list[ObsEvent] | None = None

    def on_event(self, event: ObsEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self, reached: bool, time: float) -> None:
        """Called once when the run ends (``reached``: hit its phase
        target).  End-of-run obligations report here."""

    # ------------------------------------------------------------------
    def _violate(
        self, kind: str, message: str, time: float, **data: Any
    ) -> None:
        prefix: tuple[dict[str, Any], ...] = ()
        if self._buffer is not None:
            prefix = tuple(e.to_dict() for e in self._buffer)
        self.violations.append(
            GuaranteeViolation(
                guarantee=self.guarantee,
                kind=kind,
                message=message,
                time=time,
                trace_prefix=prefix,
                data=data,
            )
        )


class MaskingMonitor(Monitor):
    """No lost, duplicated, or overlapping barrier instances.

    ``nphases`` enables modular phase arithmetic (the gc barrier
    programs wrap their counters); None means phases advance by exactly
    one (the timed engines' unbounded counters).  The sequence check
    starts at the first successful phase seen, so engines may begin at
    any phase number.

    Masking allows a *repeat*: a fault may force re-execution of a
    phase that had already completed, and under the guarded-command
    engines the re-executed instance's label can even be the victim's
    corrupted phase value.  The re-execution can also lag the fault by
    an instance (the instance in flight when the fault strikes finishes
    normally first).  The monitor therefore carries a grace *budget*:
    each fault buys forgiveness for exactly one out-of-sequence
    successful instance -- the at-most-m bound applied to sequencing --
    consumed only when a mismatch is actually observed.  In-sequence
    advancement never spends grace, and once the budget is exhausted
    strict one-at-a-time advancement is enforced, which is exactly the
    window where the paper says behaviour must be indistinguishable
    from fault-free runs.
    """

    guarantee = "masking"

    def __init__(self, nphases: int | None = None) -> None:
        super().__init__()
        self.nphases = nphases
        self._open: int | None = None
        self._last_success: int | None = None
        self._faults_seen = 0
        self._grace = 0  # unspent relabeling forgiveness, one per fault

    def _next_phase(self, phase: int) -> int:
        if self.nphases is None:
            return phase + 1
        return (phase + 1) % self.nphases

    def on_event(self, event: ObsEvent) -> None:
        kind = event.kind
        if kind == FAULT:
            self._faults_seen += 1
            self._grace += 1
        elif kind == PHASE_START:
            phase = event.data.get("phase")
            if self._open is not None:
                self._violate(
                    "overlap",
                    f"instance of phase {phase} started while the instance "
                    f"of phase {self._open} is still open",
                    event.time,
                    open_phase=self._open,
                    new_phase=phase,
                )
            self._open = phase
        elif kind == PHASE_END:
            phase = event.data.get("phase")
            if self._open is None:
                self._violate(
                    "unpaired-end",
                    f"instance of phase {phase} ended but none was open",
                    event.time,
                    phase=phase,
                )
            self._open = None
            if not event.data.get("success"):
                if self._faults_seen == 0:
                    self._violate(
                        "spurious-failure",
                        f"instance of phase {phase} failed with no fault "
                        "injected yet",
                        event.time,
                        phase=phase,
                    )
                return
            if self._last_success is not None:
                expected = self._next_phase(self._last_success)
                if phase != expected:
                    if self._grace > 0:
                        self._grace -= 1
                    else:
                        what = (
                            "duplicate-phase"
                            if phase == self._last_success
                            else "lost-phase"
                        )
                        self._violate(
                            what,
                            f"successful phases must advance one at a time: "
                            f"after {self._last_success} expected "
                            f"{expected}, got {phase}",
                            event.time,
                            previous=self._last_success,
                            expected=expected,
                            observed=phase,
                        )
            self._last_success = phase

    def finish(self, reached: bool, time: float) -> None:
        if not reached:
            self._violate(
                "stalled",
                "run ended before reaching its successful-phase target "
                "(masking means the protocol always completes)",
                time,
                faults_seen=self._faults_seen,
            )


class StabilizationMonitor(Monitor):
    """Convergence + closure after (undetectable) perturbation.

    Converged means ``clean_phases`` consecutive successful instances
    after the last fault; the span from the last fault to the first of
    those successes is recorded in :attr:`spans` (the Figure 7
    quantity, measured online).  Violations:

    * ``no-convergence`` -- the run ended (or ``budget`` virtual time /
      steps elapsed) without converging after its last fault;
    * ``closure-violation`` -- a failed instance after convergence with
      no intervening fault (legitimate states must be closed under
      fault-free execution).
    """

    guarantee = "stabilization"

    def __init__(self, clean_phases: int = 2, budget: float | None = None) -> None:
        super().__init__()
        if clean_phases < 1:
            raise ValueError("clean_phases must be >= 1")
        self.clean_phases = clean_phases
        self.budget = budget
        self.spans: list[float] = []
        self._last_fault: float | None = None
        self._clean_run = 0
        self._first_clean_at: float | None = None
        self._converged = True  # no faults yet = trivially legitimate

    def on_event(self, event: ObsEvent) -> None:
        if event.kind == FAULT:
            self._last_fault = event.time
            self._clean_run = 0
            self._first_clean_at = None
            self._converged = False
        elif event.kind == PHASE_END:
            if event.data.get("success"):
                if not self._converged:
                    if self._clean_run == 0:
                        self._first_clean_at = event.time
                    self._clean_run += 1
                    if self._clean_run >= self.clean_phases:
                        span = (
                            (self._first_clean_at or event.time)
                            - (self._last_fault or 0.0)
                        )
                        self.spans.append(span)
                        self._converged = True
                        if self.budget is not None and span > self.budget:
                            self._violate(
                                "slow-convergence",
                                f"convergence took {span:g} "
                                f"(> budget {self.budget:g})",
                                event.time,
                                span=span,
                                budget=self.budget,
                            )
            else:
                if self._converged and self._last_fault is not None:
                    self._violate(
                        "closure-violation",
                        "instance failed after convergence with no new "
                        "fault (legitimate states are not closed)",
                        event.time,
                        last_fault=self._last_fault,
                    )
                self._clean_run = 0
                self._first_clean_at = None

    def finish(self, reached: bool, time: float) -> None:
        if not self._converged:
            self._violate(
                "no-convergence",
                f"run ended at t={time:g} without converging "
                f"({self._clean_run}/{self.clean_phases} clean phases "
                f"after the last fault at t={self._last_fault:g})",
                time,
                clean_run=self._clean_run,
                last_fault=self._last_fault,
            )


class AtMostMMonitor(Monitor):
    """Perturbing *m* phases makes at most *m* phases incorrect.

    Read operationally over the trace: the number of incorrect (failed)
    instances never exceeds the number of faults injected so far -- each
    fault dooms at most one barrier instance.  The monitor also tracks
    which instance windows were perturbed (``perturbed_windows``) for
    reporting.
    """

    guarantee = "at-most-m"

    def __init__(self) -> None:
        super().__init__()
        self.faults = 0
        self.incorrect = 0
        self.perturbed_windows: set[int] = set()
        self._window = 0  # index of the current/next instance

    def on_event(self, event: ObsEvent) -> None:
        kind = event.kind
        if kind == FAULT:
            self.faults += 1
            self.perturbed_windows.add(self._window)
        elif kind == PHASE_END:
            self._window += 1
            if not event.data.get("success"):
                self.incorrect += 1
                if self.incorrect > self.faults:
                    self._violate(
                        "excess-incorrect",
                        f"{self.incorrect} incorrect instances after only "
                        f"{self.faults} faults (at-most-m exceeded)",
                        event.time,
                        incorrect=self.incorrect,
                        faults=self.faults,
                        perturbed_windows=len(self.perturbed_windows),
                    )


class FailSafeMonitor(Monitor):
    """Section 7's fail-safe tolerance, checked online: under
    *uncorrectable* faults (permanent crash, Byzantine) the run may
    stop short, but it must never wrongly report a completion.

    The uncorrectable onset is the first ``fault`` event carrying
    ``mode`` in ``("crash", "byzantine")`` (net runtime) or ``name`` in
    ``("fault:crash", "fault:byzantine")`` (gc simulator).  Two rules:

    * ``completed-despite-uncorrectable`` -- the run claims it reached
      its target even though an uncorrectable fault fired (always
      checked: reaching the target requires the faulty party, so the
      claim is necessarily wrongful);
    * ``wrongful-completion`` -- a *successful* instance narrated after
      the onset, beyond a grace of one (the instance in flight when the
      fault strikes may legitimately complete -- extensions/failsafe's
      "at most the in-flight phase").  Only enforced with
      ``strict=True``, i.e. where trace time orders the onset exactly
      against successes: the gc engines (deterministic steps) and the
      round-quantized tree (a round-entry fault is causally after every
      earlier ``phase_end``).  MB's concurrent completions make the
      Lamport comparison unreliable, so MB runs check the end-of-run
      rule only.
    """

    guarantee = "fail-safe"

    #: ``fault`` payload values marking an uncorrectable fault.
    UNCORRECTABLE_MODES = ("crash", "byzantine")
    UNCORRECTABLE_NAMES = ("fault:crash", "fault:byzantine")

    def __init__(self, strict: bool = True, grace: int = 1) -> None:
        super().__init__()
        self.strict = strict
        self.grace = grace
        self.onset: float | None = None
        self._successes_after = 0

    def _uncorrectable(self, event: ObsEvent) -> bool:
        data = event.data
        return (
            data.get("mode") in self.UNCORRECTABLE_MODES
            or data.get("name") in self.UNCORRECTABLE_NAMES
        )

    def on_event(self, event: ObsEvent) -> None:
        if event.kind == FAULT:
            if self.onset is None and self._uncorrectable(event):
                self.onset = event.time
        elif event.kind == PHASE_END:
            if (
                self.onset is not None
                and event.data.get("success")
                and event.time > self.onset
            ):
                self._successes_after += 1
                if self.strict and self._successes_after > self.grace:
                    self._violate(
                        "wrongful-completion",
                        f"successful instance of phase "
                        f"{event.data.get('phase')} narrated after the "
                        f"uncorrectable fault at t={self.onset:g} "
                        f"({self._successes_after} > grace {self.grace})",
                        event.time,
                        phase=event.data.get("phase"),
                        onset=self.onset,
                        successes_after=self._successes_after,
                        grace=self.grace,
                    )

    def finish(self, reached: bool, time: float) -> None:
        if reached and self.onset is not None:
            self._violate(
                "completed-despite-uncorrectable",
                f"run reported completion despite an uncorrectable fault "
                f"at t={self.onset:g} (fail-safe means it must stop "
                "instead of wrongly completing)",
                time,
                onset=self.onset,
                successes_after=self._successes_after,
            )


class MonitorSet:
    """Wire monitors into one tracer; collect everything they find.

    One subscription feeds a shared event buffer (so every violation's
    trace prefix is captured once) and fans out to each monitor.
    """

    def __init__(self, tracer: Any | None, monitors: list[Monitor]) -> None:
        self.tracer = tracer
        self.monitors = list(monitors)
        self._events: list[ObsEvent] = []
        for m in self.monitors:
            m._buffer = self._events
        if tracer is not None:
            tracer.subscribe(self._on_event)

    def _on_event(self, event: ObsEvent) -> None:
        self._events.append(event)
        for m in self.monitors:
            m.on_event(event)

    def feed(self, event: ObsEvent) -> None:
        """Push one event directly (streaming use, ``tracer=None``) --
        identical semantics to the subscription path."""
        self._on_event(event)

    def finish(self, reached: bool, time: float = 0.0) -> None:
        """End-of-run: let monitors report unfinished obligations and
        detach from the tracer."""
        for m in self.monitors:
            m.finish(reached, time)
        if self.tracer is not None:
            self.tracer.unsubscribe(self._on_event)

    @property
    def violations(self) -> list[GuaranteeViolation]:
        out: list[GuaranteeViolation] = []
        for m in self.monitors:
            out.extend(m.violations)
        out.sort(key=lambda v: v.time)
        return out

    def check(self) -> None:
        """Raise the first (earliest) violation, if any."""
        violations = self.violations
        if violations:
            raise violations[0]
